"""Q1 — structural vs functional definitions (paper §2).

Regenerates the decidability table: structural definitions (grammar,
AI vocabulary, BCM ontonomy) classify every artifact; Gruber's functional
definition answers 'undecidable' across the board, and its verdict flips
with the declared use.  Benchmarks classification throughput.
"""

from repro.core import (
    ALL_DEFINITIONS,
    GRUBER_DEFINITION,
    Verdict,
    decidability_table,
    use_dependence_demonstration,
)
from repro.grammar import Grammar, Production
from repro.logic import Vocabulary

ARTIFACTS = {
    "aⁿ grammar": Grammar({"S"}, {"a"}, "S", [Production(("S",), ("a", "S")), Production(("S",), ())]),
    "raw 4-tuple": ({"S"}, {"a"}, "S", [(("S",), ("a",))]),
    "AI vocabulary": Vocabulary(constants=frozenset({"a"}), predicates={"above": 2}),
    "grocery list (a string)": "milk, bread, olive oil",
    "an integer": 42,
}


def test_q1_decidability_table(benchmark):
    rows = benchmark(decidability_table, ARTIFACTS)
    print("\nQ1: decidability of membership, per definition:")
    for row in rows:
        print(f"  {row['artifact']:<24}", {k: v for k, v in row.items() if k != 'artifact'})
    # every structural column is decided for every artifact
    for row in rows:
        for definition in ALL_DEFINITIONS:
            if definition.kind == "structural":
                assert row[definition.name] in ("member", "non-member")
            else:
                assert row[definition.name] == "undecidable"


def test_q1_gruber_verdict_flips_with_use(benchmark):
    artifact = ARTIFACTS["aⁿ grammar"]
    verdicts = benchmark(
        use_dependence_demonstration,
        GRUBER_DEFINITION,
        artifact,
        ["formalizing a conceptualization", "remembering what to buy"],
    )
    assert verdicts == [Verdict.MEMBER, Verdict.NON_MEMBER]
    print(
        "\nQ1: one artifact, two declared uses, two opposite verdicts — "
        "the definition is teleological"
    )
