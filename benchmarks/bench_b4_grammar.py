"""B4 — substrate: grammar recognition scaling.

CYK on aⁿbⁿ as n grows (the O(n³) curve), CNF conversion cost, and the
regular-language crossover: the DFA pipeline against CYK on (ab)*.
"""

import pytest

from repro.grammar import (
    Grammar,
    Production,
    compile_regular,
    cyk_recognizes,
    to_cnf,
)


def anbn() -> Grammar:
    return Grammar(
        {"S"},
        {"a", "b"},
        "S",
        [Production(("S",), ("a", "S", "b")), Production(("S",), ())],
    )


def ab_star() -> Grammar:
    return Grammar(
        {"S", "B"},
        {"a", "b"},
        "S",
        [
            Production(("S",), ("a", "B")),
            Production(("B",), ("b", "S")),
            Production(("S",), ()),
        ],
    )


@pytest.mark.parametrize("n", [8, 24, 48])
def test_b4_cyk_scaling(benchmark, n):
    cnf = to_cnf(anbn())
    word = ["a"] * n + ["b"] * n
    assert benchmark(cyk_recognizes, cnf, word)


def test_b4_cnf_conversion(benchmark):
    cnf = benchmark(to_cnf, anbn())
    assert cyk_recognizes(cnf, ["a", "b"])


@pytest.mark.parametrize("engine", ["dfa", "cyk"])
def test_b4_regular_language_crossover(benchmark, engine):
    grammar = ab_star()
    word = ["a", "b"] * 30
    if engine == "dfa":
        dfa = compile_regular(grammar)
        assert benchmark(dfa.accepts, word)
    else:
        cnf = to_cnf(grammar)
        assert benchmark(cyk_recognizes, cnf, word)


def test_b4_dfa_compilation(benchmark):
    dfa = benchmark(compile_regular, ab_star())
    assert dfa.accepts(["a", "b"])


@pytest.mark.parametrize("n", [8, 24, 48])
def test_b4_earley_scaling(benchmark, n):
    from repro.grammar import earley_recognizes

    grammar = anbn()
    word = ["a"] * n + ["b"] * n
    assert benchmark(earley_recognizes, grammar, word)


@pytest.mark.parametrize("engine", ["earley", "cyk"])
def test_b4_earley_vs_cyk_no_cnf(benchmark, engine):
    """Earley needs no normal form; CYK pays the CNF conversion too."""
    from repro.grammar import earley_recognizes

    grammar = anbn()
    word = ["a"] * 16 + ["b"] * 16
    if engine == "earley":
        assert benchmark(earley_recognizes, grammar, word)
    else:
        def convert_and_run():
            return cyk_recognizes(to_cnf(grammar), word)

        assert benchmark(convert_and_run)
