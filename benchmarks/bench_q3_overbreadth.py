"""Q3 — over-breadth: 'any set of tautologies is an ontology' (paper §2).

Regenerates the exhibit table (tautologies, grocery list, tax form,
C program all qualify; only the contradiction is rejected) and sweeps the
qualification rate of random axiom sets.  Benchmarks the finite-model
search that decides qualification.
"""

import pytest

from repro.intensional import (
    contradiction,
    grocery_list,
    paper_exhibits,
    qualification_rate,
    qualifies,
    tautology_set,
)


def test_q3_exhibit_table(benchmark):
    def verdicts():
        return {c.title: qualifies(c) for c in paper_exhibits()}

    table = benchmark(verdicts)
    assert table == {
        "3 tautologies": True,
        "grocery list": True,
        "tax return form": True,
        "C program": True,
        "contradiction": False,
    }
    print("\nQ3: what passes Guarino's membership test:")
    for title, verdict in table.items():
        print(f"  {title:<18} {'ontonomy' if verdict else 'rejected'}")


def test_q3_tautologies_scale(benchmark):
    candidate = tautology_set(6)
    assert benchmark(qualifies, candidate)


def test_q3_grocery_list_model_search(benchmark):
    assert benchmark(qualifies, grocery_list())


def test_q3_contradiction_is_rejected(benchmark):
    assert not benchmark(qualifies, contradiction())


@pytest.mark.parametrize("n_literals", [2, 6, 12])
def test_q3_random_qualification_sweep(benchmark, n_literals):
    """The sweep the paper implies: the test excludes almost nothing.

    Qualification falls only as random literal sets grow dense enough to
    contradict themselves.
    """
    rate = benchmark(
        qualification_rate, seed=42, samples=40, n_literals=n_literals
    )
    assert 0.0 <= rate <= 1.0
    if n_literals <= 2:
        assert rate > 0.75  # only self-contradicting draws are excluded
    print(f"\nQ3: {n_literals} random literals → {rate:.0%} qualify as ontonomies")
