"""F3 — structures (5)-(7): definition-graph extraction and anonymization.

Regenerates the abstract renaming of structure (5) and the anonymous
diagram (7), verifying that renaming is structure-preserving; benchmarks
extraction and the WL certificate used as the diagram's shape signature.
"""

from repro.corpora.vehicles import abstract_tbox, vehicle_tbox
from repro.dl import anonymized_meaning, definition_graph, meaning_isomorphic, structural_meaning
from repro.graphs import wl_certificate


def test_f3_structure_5_is_a_pure_renaming(benchmark):
    concrete = definition_graph(vehicle_tbox())
    abstract = benchmark(definition_graph, abstract_tbox())
    result = meaning_isomorphic(concrete, abstract)
    assert result is not None
    node_map, role_map = result
    assert node_map["car"] == "D" and node_map["gasoline"] == "A"
    assert role_map == {"uses": "rho1", "has": "rho2", "size": "rho3"}
    print("\nF3: structure (5) = structure (4) under renaming", node_map)


def test_f3_structure_7_the_anonymous_diagram(benchmark):
    diagram = benchmark(anonymized_meaning, vehicle_tbox(), "car")
    assert all(diagram.node_label(n) is None for n in diagram.nodes())
    assert len(diagram) == 6 and diagram.edge_count() == 5
    print(
        f"\nF3: structure (7): {len(diagram)} dots, {diagram.edge_count()} arrows "
        "(the paper's diagram of the meaning of 'car')"
    )


def test_f3_wl_certificate_as_shape_signature(benchmark):
    g = structural_meaning(vehicle_tbox(), "car").anonymized()
    certificate = benchmark(wl_certificate, g)
    # invariant under concept renaming (roles kept fixed): the meanings of
    # car and pickup differ only in the anonymous leaf small/big
    h = structural_meaning(vehicle_tbox(), "pickup").anonymized()
    assert wl_certificate(h) == certificate
