"""Q2 — the circularity of Guarino's construction (paper §2).

Regenerates the definitional-dependency analysis: Guarino's arrangement
contains the SCC {intensional_relation, possible_world,
extensional_relation}; Kripke's control arrangement is acyclic.
Benchmarks the SCC analysis, including on scaled synthetic dependency
graphs.
"""

import pytest

from repro.graphs import DiGraph, strongly_connected_components
from repro.intensional import (
    Dependency,
    analyze,
    guarino_circularity,
    kripke_circularity,
)


def test_q2_guarino_cycle_found(benchmark):
    report = benchmark(guarino_circularity)
    assert report.is_circular
    (component,) = report.components
    assert component == frozenset(
        {"intensional_relation", "possible_world", "extensional_relation"}
    )
    print("\nQ2:")
    print(report.explain())


def test_q2_kripke_control_acyclic(benchmark):
    report = benchmark(kripke_circularity)
    assert not report.is_circular
    print("\nQ2 control: Kripke's arrangement —", report.explain())


@pytest.mark.parametrize("n_notions", [10, 100, 1000])
def test_q2_scc_scales(benchmark, n_notions):
    """SCC on a ring of n notions plus chords (worst-case one big cycle)."""
    dependencies = [
        Dependency(f"n{i}", f"n{(i + 1) % n_notions}", "ring")
        for i in range(n_notions)
    ]
    dependencies += [
        Dependency(f"n{i}", f"n{(i + 7) % n_notions}", "chord")
        for i in range(0, n_notions, 3)
    ]
    report = benchmark(analyze, dependencies)
    assert report.is_circular
    assert len(report.components[0]) == n_notions
