"""B5 — substrate: order-sorted rewriting to normal form.

Peano addition over an order-sorted signature: normalization cost as the
term grows, plus matching throughput — the workload under every BCM data
domain with a non-trivial equational theory.
"""

import pytest

from repro.order import Poset
from repro.osa import (
    Equation,
    EquationalTheory,
    OpDecl,
    OrderSortedSignature,
    OSApp,
    OSVar,
    RewriteSystem,
    constant,
    match,
)


def peano() -> RewriteSystem:
    sig = OrderSortedSignature(
        Poset(["Nat"], []),
        [
            OpDecl("zero", (), "Nat"),
            OpDecl("s", ("Nat",), "Nat"),
            OpDecl("plus", ("Nat", "Nat"), "Nat"),
        ],
    )
    x, y = OSVar("x", "Nat"), OSVar("y", "Nat")
    theory = EquationalTheory(
        sig,
        [
            Equation(OSApp("plus", (constant("zero"), y)), y),
            Equation(
                OSApp("plus", (OSApp("s", (x,)), y)),
                OSApp("s", (OSApp("plus", (x, y)),)),
            ),
        ],
    )
    return RewriteSystem(theory, max_steps=100_000)


def numeral(n: int) -> OSApp:
    term = constant("zero")
    for _ in range(n):
        term = OSApp("s", (term,))
    return term


@pytest.mark.parametrize("n", [4, 16, 48])
def test_b5_addition_normalization(benchmark, n):
    system = peano()
    term = OSApp("plus", (numeral(n), numeral(n)))
    result = benchmark(system.normalize, term)
    assert result == numeral(2 * n)


def test_b5_matching_throughput(benchmark):
    system = peano()
    sig = system.signature
    x = OSVar("x", "Nat")
    pattern = OSApp("s", (x,))
    targets = [numeral(i) for i in range(1, 40)]

    def run():
        return sum(1 for t in targets if match(pattern, t, sig) is not None)

    assert benchmark(run) == len(targets)


def test_b5_ground_equality_decision(benchmark):
    system = peano()
    lhs = OSApp("plus", (numeral(6), numeral(7)))
    rhs = OSApp("plus", (numeral(7), numeral(6)))
    assert benchmark(system.equal, lhs, rhs)
