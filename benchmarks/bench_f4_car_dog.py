"""F4 — the central reductio: structures (4) ≅ (8), hence CAR = DOG.

Regenerates the paper's identification exactly (the node and role maps)
and benchmarks the meaning-isomorphism search that produces it.
"""

from repro.corpora.animals import (
    VEHICLE_TO_ANIMAL_NAMES,
    VEHICLE_TO_ANIMAL_ROLES,
    animal_tbox,
)
from repro.corpora.vehicles import vehicle_tbox
from repro.dl import definition_graph, meaning_isomorphic, meanings_identical


def test_f4_car_equals_dog(benchmark):
    vehicles = definition_graph(vehicle_tbox())
    animals = definition_graph(animal_tbox())

    result = benchmark(meaning_isomorphic, vehicles, animals)
    assert result is not None
    node_map, role_map = result
    assert node_map == VEHICLE_TO_ANIMAL_NAMES
    assert role_map == VEHICLE_TO_ANIMAL_ROLES
    print("\nF4: structures (4) and (8) are isomorphic:")
    for source, target in sorted(node_map.items()):
        print(f"  {source:<14} = {target}")


def test_f4_term_level_identity(benchmark):
    identical = benchmark(
        meanings_identical, vehicle_tbox(), "car", animal_tbox(), "dog"
    )
    assert identical
    assert meanings_identical(vehicle_tbox(), "pickup", animal_tbox(), "horse")
