"""Q5 — 'trespassers will be prosecuted': situated meaning (paper §3).

Regenerates the scenario table (speech act per situation × reader), the
situated gap over the text-only reading, and the re-coding drift.
Benchmarks the interpretation fixpoint.
"""

from repro.corpora.trespass import (
    ON_BUILDING_DOOR,
    TRESPASS_TEXT,
    WESTERN_ADULT,
    all_scenarios,
    trespass_interpreter,
)
from repro.hermeneutics import ALGORITHMIC_READER, formalization, interpretation_drift


def test_q5_scenario_table(benchmark):
    interpreter = trespass_interpreter()

    def read_all():
        return {
            (situation.name, reader.name): interpreter.interpret(
                TRESPASS_TEXT, situation, reader
            )
            for situation, reader in all_scenarios()
        }

    readings = benchmark(read_all)
    acts = {key: r.speech_act for key, r in readings.items()}
    assert acts[("on a building door", "western adult")] == "threat"
    assert acts[("on a shelf in a sign shop", "western adult")] == "display of goods"
    assert acts[("printed as a newspaper headline", "western adult")] == "report"
    assert acts[("on a building door", "reader without the property discourse")] is None
    print("\nQ5: one text, many meanings:")
    for (situation, reader), act in sorted(acts.items()):
        print(f"  {situation:<36} × {reader:<40} → {act or '(none)'}")


def test_q5_situated_gap(benchmark):
    interpreter = trespass_interpreter()
    gap = benchmark(
        interpreter.situated_gap, TRESPASS_TEXT, ON_BUILDING_DOOR, WESTERN_ADULT
    )
    bare = interpreter.interpret(TRESPASS_TEXT, None, ALGORITHMIC_READER)
    assert len(bare.propositions) == 0
    assert len(gap) >= 4
    print(
        f"\nQ5: text-only reading: 0 propositions; situation+reader add {len(gap)} "
        "— 'none of these elements, necessary for understanding, is in the text'"
    )


def test_q5_recoding_drift(benchmark):
    interpreter = trespass_interpreter()
    recode = formalization("forall x. trespasses(x) -> prosecuted(x)", kept=["speech"])
    recoded = recode(TRESPASS_TEXT)
    report = benchmark(
        interpretation_drift, interpreter, TRESPASS_TEXT, recoded, all_scenarios()
    )
    assert not report.meaning_preserved
    print(
        f"\nQ5: ontological re-coding changes the reading in "
        f"{report.drift:.0%} of scenarios — 'changing the code will change the meaning'"
    )
