"""F2 — structure (4): the vehicle ontonomy, parsed and reasoned over.

Regenerates the paper's display, checks coherence, and benchmarks the
full parse→classify pipeline plus individual subsumption queries.
"""

from repro.corpora.vehicles import VEHICLE_TEXT, vehicle_tbox
from repro.dl import Atomic, Reasoner, classify, parse_concept, parse_tbox


def test_f2_structure_4_reproduced(benchmark):
    tbox = benchmark(parse_tbox, VEHICLE_TEXT)
    print("\nF2: structure (4) as parsed:")
    print(tbox.pretty())
    assert len(tbox) == 4
    assert tbox.is_definitorial()


def test_f2_coherence_and_told_subsumptions(benchmark):
    tbox = vehicle_tbox()

    def check():
        reasoner = Reasoner(tbox)
        assert reasoner.is_coherent()
        return reasoner

    reasoner = benchmark(check)
    assert reasoner.subsumes(Atomic("motorvehicle"), Atomic("car"))
    assert reasoner.subsumes(parse_concept("some uses.gasoline"), Atomic("car"))
    assert reasoner.subsumes(parse_concept(">= 4 has.wheel"), Atomic("pickup"))
    assert not reasoner.subsumes(Atomic("car"), Atomic("pickup"))


def test_f2_classification(benchmark):
    hierarchy = benchmark(classify, vehicle_tbox())
    assert hierarchy.parents("car") == frozenset({"motorvehicle", "roadvehicle"})
    assert not hierarchy.poset.subposet(
        set(hierarchy.poset.elements) - {"⊥"}
    ).is_tree()
    print("\nF2: inferred hierarchy:")
    print(hierarchy.pretty())
