"""Capstone — the full critique engine, end to end.

Times `critique()` with every analysis enabled on the paper's own
corpus: the vehicle ontonomy against the animal contrast, the age
lexicalizations, the regress on *car*, and the campus rigidity profile.
This is the workload a downstream user runs per ontology under review.
"""

from repro.core import Section, Severity, critique
from repro.corpora import (
    age_lexicalizations,
    animal_tbox,
    campus_rigidity,
    vehicle_tbox,
)
from repro.dl import parse_axiom


def test_capstone_full_critique(benchmark):
    tbox = vehicle_tbox()
    contrast = [("animals", animal_tbox())]
    lexs = age_lexicalizations()
    repairs = [[parse_axiom("car [= some emits.vroom")]]

    def run():
        return critique(
            tbox,
            label="vehicles",
            contrast_tboxes=contrast,
            lexicalizations=lexs,
            regress_term="car",
            regress_repairs=repairs,
            rigidity=campus_rigidity(),
        )

    report = benchmark(run)
    # every section populated, every headline finding present
    assert report.section(Section.SYNTACTIC)
    assert report.section(Section.SEMANTIC)
    assert report.section(Section.PRAGMATIC)
    codes = {f.code for f in report.findings}
    assert "meaning-collision-cross" in codes
    assert "confusable-sibling" in codes
    assert "differentiation-regress" in codes
    assert "guarino-circularity" in codes
    assert "guarino-overbreadth" in codes
    assert "imposition-loss" in codes
    assert report.worst is Severity.DEFECT


def test_capstone_renderings(benchmark):
    report = critique(
        vehicle_tbox(),
        label="vehicles",
        contrast_tboxes=[("animals", animal_tbox())],
    )

    def render_both():
        return report.render(), report.render_markdown()

    text, markdown = benchmark(render_both)
    assert "Critique of vehicles" in text
    assert markdown.startswith("# Critique of vehicles")
    assert "❌" in markdown
