"""T1 — the doorknob/pomello schema (paper §3).

Regenerates the overlap schema from the field data and measures the
translation loss it forces; benchmarks the overlap-matrix and
translation-report computations.
"""

from repro.corpora.lexical import english_door, italian_door
from repro.semiotics import (
    overlap_matrix,
    partial_overlaps,
    translation_report,
)


def test_t1_overlap_schema_reproduced(benchmark):
    english, italian = english_door(), italian_door()
    matrix = benchmark(overlap_matrix, english, italian)
    # the drawing: pomelli ⊆ doorknobs; some doorknobs are maniglie
    assert matrix[("doorknob", "pomello")] == 1
    assert matrix[("doorknob", "maniglia")] == 1
    assert matrix[("door handle", "pomello")] == 0
    assert matrix[("door handle", "maniglia")] == 2
    print("\nT1: overlap matrix (rows English, columns Italian):")
    for (te, ti), count in sorted(matrix.items()):
        print(f"  {te:<12} ∩ {ti:<9} = {count}")


def test_t1_partial_overlap_refutes_atomism(benchmark):
    overlaps = benchmark(partial_overlaps, english_door(), italian_door())
    pairs = {(a, b) for a, b, _ in overlaps}
    assert ("doorknob", "maniglia") in pairs
    print(f"\nT1: proper overlaps: {sorted(pairs)}")


def test_t1_translation_is_lossy_both_ways(benchmark):
    def both_ways():
        return (
            translation_report(english_door(), italian_door()),
            translation_report(italian_door(), english_door()),
        )

    to_italian, to_english = benchmark(both_ways)
    assert not to_italian.lossless
    assert not to_english.lossless
    print(
        f"\nT1: mean distortion EN→IT {to_italian.mean_distortion:.2f}, "
        f"IT→EN {to_english.mean_distortion:.2f}"
    )
