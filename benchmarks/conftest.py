"""Shared configuration for the experiment benches.

Every bench module regenerates one item of EXPERIMENTS.md: the F*/T*/Q*
benches assert the paper's qualitative result (who is isomorphic to whom,
what qualifies, what drifts) and time the computation that produces it;
the B* benches measure substrate scaling and ablations.

Run:  pytest benchmarks/ --benchmark-only
Add ``-s`` to see the regenerated tables/figures printed by each bench.
"""
