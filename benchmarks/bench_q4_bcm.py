"""Q4 — the BCM formalism: rigorous, decidable, and confined (paper §2).

Regenerates both halves of the paper's verdict on Definition 1:
(a) membership is decidable from structure alone — is_ontology_signature
answers on arbitrary inputs; (b) the formalism is 'strongly oriented
towards monocriterial taxonomies' — the expressiveness profile shows a
single primitive inter-class relation (≤) with everything else demoted to
attributes.  Benchmarks signature validation as the class count grows.
"""

import pytest

from repro.order import Poset
from repro.osa import (
    DataDomain,
    EquationalTheory,
    FiniteAlgebra,
    OntologySignature,
    OpDecl,
    OrderSortedSignature,
    is_ontology_signature,
)


def size_domain() -> DataDomain:
    sig = OrderSortedSignature(
        Poset(["Size"], []),
        [OpDecl("small", (), "Size"), OpDecl("big", (), "Size")],
    )
    return DataDomain(
        EquationalTheory(sig, []),
        FiniteAlgebra(
            sig,
            {"Size": ["small", "big"]},
            {"small": {(): "small"}, "big": {(): "big"}},
        ),
    )


def layered_hierarchy(n_classes: int) -> tuple[Poset, dict]:
    """A layered class DAG with full attribute inheritance."""
    names = [f"c{i}" for i in range(n_classes)]
    pairs = [(names[i], names[i // 2]) for i in range(1, n_classes)]
    hierarchy = Poset(names, pairs)
    attributes = {}
    # one attribute declared at the root, inherited by all (family condition)
    for name in names:
        attributes[(name, "Size")] = {"size"}
    return hierarchy, attributes


def test_q4_membership_is_decidable(benchmark):
    domain = size_domain()
    hierarchy, attributes = layered_hierarchy(8)

    def decide_all():
        return (
            is_ontology_signature(domain, hierarchy, attributes),
            is_ontology_signature("junk", hierarchy, attributes),
            # family-condition violation: attribute not inherited
            is_ontology_signature(
                domain, hierarchy, {("c0", "Size"): {"size"}}
            ),
        )

    good, junk, violation = benchmark(decide_all)
    assert good is True
    assert junk is False
    assert violation is False
    print("\nQ4: membership decided structurally on all three candidates")


def test_q4_expressiveness_profile(benchmark):
    domain = size_domain()
    hierarchy, attributes = layered_hierarchy(8)
    signature = OntologySignature(domain, hierarchy, attributes)
    profile = benchmark(signature.expressiveness_profile)
    # the only primitive inter-class relation is ≤; all else is attributes
    assert profile["subclass_links"] > 0
    assert profile["class_valued_attributes"] == 0
    print(f"\nQ4: expressiveness profile: {profile}")
    print(
        "  every non-taxonomic relation must be encoded as a typed "
        "attribute — the 'monocriterial taxonomy' confinement"
    )


@pytest.mark.parametrize("n_classes", [8, 32, 64])
def test_q4_validation_scales(benchmark, n_classes):
    domain = size_domain()
    hierarchy, attributes = layered_hierarchy(n_classes)
    result = benchmark(
        is_ontology_signature, domain, hierarchy, attributes
    )
    assert result
