"""F5 — structures (9)-(11) and the differentiation regress.

Regenerates the repair (``quadruped ⊑ animal`` breaks the isomorphism
with the vehicles) and the paper's "when can we stop?" answer: at every
round, a confusable rival ontonomy exists.  Benchmarks one regress round
and the sibling construction as the TBox grows.
"""

import pytest

from repro.core import confusable_sibling, differentiation_regress
from repro.corpora.animals import animal_tbox, repaired_animal_tbox
from repro.corpora.generators import random_tbox
from repro.corpora.vehicles import vehicle_tbox
from repro.dl import definition_graph, meaning_isomorphic, meanings_identical, parse_axiom

REPAIRS = [
    [parse_axiom("quadruped [= animal")],
    [parse_axiom("dog [= some emits.bark")],
    [parse_axiom("horse [= some emits.neigh")],
    [parse_axiom("dog [= some chases.cat")],
]


def test_f5_repair_breaks_the_vehicle_isomorphism(benchmark):
    vehicles = definition_graph(vehicle_tbox())
    repaired = definition_graph(repaired_animal_tbox())
    result = benchmark(meaning_isomorphic, vehicles, repaired)
    assert result is None
    assert not meanings_identical(vehicle_tbox(), "car", repaired_animal_tbox(), "dog")
    print("\nF5: after quadruped ⊑ animal, (4) ≇ repaired (8): CAR ≠ DOG again")


def test_f5_the_regress_never_escapes(benchmark):
    steps = benchmark(differentiation_regress, animal_tbox(), "dog", REPAIRS)
    assert len(steps) == len(REPAIRS) + 1
    assert all(step.rival_identical for step in steps)
    sizes = [step.definition_size for step in steps]
    assert sizes == sorted(sizes) and sizes[-1] > sizes[0]
    print("\nF5: the regress —")
    for step in steps:
        print(f"  {step}")
    print("  answer to 'when can we stop?': never")


@pytest.mark.parametrize("n_defined", [4, 8, 12])
def test_f5_sibling_construction_scales(benchmark, n_defined):
    tbox = random_tbox(1234, n_defined=n_defined, n_primitive=4, n_roles=3)

    def build_and_check():
        sibling, name_map, _ = confusable_sibling(tbox)
        probe = sorted(tbox.defined_names())[0]
        return meanings_identical(tbox, probe, sibling, name_map[probe])

    assert benchmark(build_and_check)
