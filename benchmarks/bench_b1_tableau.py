"""B1 — substrate: tableau reasoner scaling and the absorption ablation.

Satisfiability and subsumption time as the TBox grows (chain depth,
branching-tree size), plus the DESIGN.md ablation: axioms absorbed into
lazy unfolding versus the same axioms forced through global-GCI
propagation.
"""

import pytest

from repro.corpora.generators import branching_tbox, chain_tbox
from repro.dl import Atomic, Not, Reasoner, Subsumption, TBox, Tableau
from repro.dl.nnf import negate


@pytest.mark.parametrize("depth", [8, 32, 128])
def test_b1_chain_subsumption(benchmark, depth):
    tbox = chain_tbox(depth)

    def check():
        reasoner = Reasoner(tbox)
        return reasoner.subsumes(Atomic(f"C{depth}"), Atomic("C0"))

    assert benchmark(check)


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_b1_branching_tree_satisfiability(benchmark, depth):
    tbox = branching_tbox(depth)
    leaf = "N" + "0" * depth

    def check():
        reasoner = Reasoner(tbox)
        return reasoner.is_satisfiable(Atomic(leaf))

    assert benchmark(check)


@pytest.mark.parametrize("mode", ["absorbed", "internalized"])
def test_b1_absorption_ablation(benchmark, mode):
    """Ablation: A ⊑ C axioms lazy-unfolded vs forced global.

    Internalization is simulated by rewriting every axiom A ⊑ C into the
    non-absorbable form (A ⊓ ⊤) ⊑ C... which the absorber cannot take,
    so it lands in the global-GCI path applied to every node.
    """
    depth = 24
    base = chain_tbox(depth)
    if mode == "absorbed":
        tbox = base
    else:
        # ¬¬A is not an Atomic lhs, so the absorber rejects it and every
        # axiom becomes a global GCI added to every node
        tbox = TBox(
            [Subsumption(Not(Not(gci.lhs)), gci.rhs) for gci in base.gcis()]
        )

    from repro.dl import And

    def check():
        tableau = Tableau(tbox, max_nodes=5000)
        # C0 ⊓ ¬C_depth must be unsatisfiable in both encodings
        return not tableau.is_satisfiable(
            And.of([Atomic("C0"), negate(Atomic(f"C{depth}"))])
        )

    assert benchmark(check)
