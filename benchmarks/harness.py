"""JSON bench harness entry point (wraps :mod:`repro.bench.harness`).

The pytest benches in this directory measure *time* with
pytest-benchmark; this harness snapshots *work* — the ``repro.obs``
counters (tableau expansions, cache hits, index lookups, ...) — into one
``BENCH_<id>.json`` per substrate bench, the trajectory later perf PRs
are compared against.

Run either of::

    python -m repro bench --out .
    python benchmarks/harness.py --out .

Schema and workloads live in :mod:`repro.bench.harness`; tests in
``tests/bench/test_harness.py`` validate the schema and assert the
counters are deterministic for the seeded inputs.
"""

from __future__ import annotations

import argparse

from repro.bench import (  # noqa: F401 - re-exported for bench consumers
    BENCHES,
    SCHEMA_VERSION,
    run_bench,
    run_suite,
    validate_record,
    write_record,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="harness",
        description="run the instrumented B1-B5 benches and write BENCH_*.json",
    )
    parser.add_argument("--out", default=".", help="output directory (default: .)")
    parser.add_argument(
        "--only",
        action="append",
        metavar="ID",
        choices=sorted(BENCHES),
        help="run only this bench (repeatable)",
    )
    args = parser.parse_args(argv)
    for path in run_suite(args.out, only=args.only):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
