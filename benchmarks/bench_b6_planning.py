"""B6 — substrate: the two planning ablations added in the extension pass.

(a) TBox classification with told-subsumer seeding vs full n² tableau
    calls; (b) join-order selection by index-backed selectivity estimates
    vs most-bound-first vs static order on a skewed dataset.
"""

import pytest

from repro.corpora.generators import chain_tbox, random_tbox
from repro.dl import classify
from repro.store import Pattern, Query, TripleStore, Var


@pytest.mark.parametrize(
    "use_told", [True, False], ids=["told-seeded", "full-tableau"]
)
def test_b6_classification_ablation_chain(benchmark, use_told):
    """Taxonomic TBox: every positive subsumption is told — seeding shines.

    Pinned to the enhanced traversal: the auto default now answers this
    Horn/EL corpus by saturation, where told seeding never enters.
    """
    tbox = chain_tbox(16)
    hierarchy = benchmark(
        classify, tbox, algorithm="enhanced", use_told_subsumers=use_told
    )
    assert (hierarchy.told_hits > 0) == use_told


@pytest.mark.parametrize(
    "use_told", [True, False], ids=["told-seeded", "full-tableau"]
)
def test_b6_classification_ablation_random(benchmark, use_told):
    """Relational TBox: most pairs are non-subsumptions the tableau must
    refute either way — seeding saves only the told fraction."""
    tbox = random_tbox(11, n_defined=8, n_primitive=4, n_roles=3)
    hierarchy = benchmark(
        classify, tbox, algorithm="enhanced", use_told_subsumers=use_told
    )
    assert (hierarchy.told_hits > 0) == use_told


def skewed_store() -> TripleStore:
    store = TripleStore()
    for i in range(2000):
        store.add(f"s{i}", "common", f"o{i % 20}")
    for i in range(5):
        store.add(f"s{i}", "rare", "target")
    return store


@pytest.mark.parametrize("order", ["selectivity", "most-bound", "static"])
def test_b6_join_order_ablation(benchmark, order):
    store = skewed_store()
    x, y = Var("x"), Var("y")
    # written worst-order-first: the huge pattern leads the static plan
    query = Query(
        [Pattern(x, "common", y), Pattern(x, "rare", "target")],
        select=[x],
        order=order,
    )
    rows = benchmark(query.run, store)
    assert len(rows) == 5
