"""B3 — substrate: triple store throughput and the index ablation.

Pattern-query throughput with the SPO/POS/OSP indexes on versus full
scans (the DESIGN.md ablation), join evaluation, bulk loading, and the
cost of DL-backed materialization.
"""

import pytest

from repro.corpora.generators import random_triples
from repro.corpora.vehicles import vehicle_tbox
from repro.store import Pattern, Query, TripleStore, Var, materialize

ROWS = random_triples(7, count=5000, n_subjects=400, n_predicates=12, n_objects=200)


def loaded_store(use_indexes: bool) -> TripleStore:
    store = TripleStore(use_indexes=use_indexes)
    store.update(ROWS)
    return store


@pytest.mark.parametrize("use_indexes", [True, False], ids=["indexed", "scan"])
def test_b3_point_lookups(benchmark, use_indexes):
    store = loaded_store(use_indexes)
    subjects = [f"s{i}" for i in range(0, 400, 7)]

    def run():
        return sum(store.count(subject=s) for s in subjects)

    total = benchmark(run)
    assert total > 0


@pytest.mark.parametrize("use_indexes", [True, False], ids=["indexed", "scan"])
def test_b3_join_queries(benchmark, use_indexes):
    store = loaded_store(use_indexes)
    x, y = Var("x"), Var("y")
    query = Query([Pattern(x, "p1", y), Pattern(y, "p2", "o3")], select=[x])

    rows = benchmark(query.run, store)
    assert isinstance(rows, list)


def test_b3_bulk_load(benchmark):
    def load():
        store = TripleStore()
        store.update(ROWS)
        return store

    store = benchmark(load)
    assert len(store) == len({tuple(r) for r in ROWS})


def test_b3_materialization_cost(benchmark):
    store = TripleStore()
    for i in range(12):
        store.add(f"car{i}", "type", "car")
        store.add(f"truck{i}", "type", "pickup")

    result = benchmark(materialize, store, vehicle_tbox())
    assert ("car0", "type", "motorvehicle") in result
    assert len(result) > len(store)
