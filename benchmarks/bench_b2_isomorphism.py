"""B2 — substrate: graph isomorphism and the WL-prefilter ablation.

Exact VF2 with and without the Weisfeiler–Leman prefilter on
non-isomorphic definition-graph pairs (where the prefilter pays) and on
isomorphic pairs (where it is pure overhead) — the DESIGN.md ablation.
"""

import pytest

from repro.core import confusable_sibling
from repro.corpora.generators import random_tbox
from repro.dl import definition_graph
from repro.graphs import find_isomorphism, wl_distinguishes


def graph_pair(seed: int, isomorphic: bool):
    tbox = random_tbox(seed, n_defined=6, n_primitive=4, n_roles=2)
    g1 = definition_graph(tbox).anonymized()
    if isomorphic:
        sibling, _, role_map = confusable_sibling(tbox)
        g2 = definition_graph(sibling).anonymized()
        # rename the sibling's roles back so edge labels match exactly
        from repro.dl import rename_roles

        g2 = rename_roles(g2, {v: k for k, v in role_map.items()})
    else:
        g2 = definition_graph(
            random_tbox(seed + 1, n_defined=6, n_primitive=4, n_roles=2)
        ).anonymized()
    return g1, g2


@pytest.mark.parametrize("use_wl", [True, False], ids=["wl-prefilter", "no-prefilter"])
def test_b2_nonisomorphic_pairs(benchmark, use_wl):
    pairs = [graph_pair(seed, isomorphic=False) for seed in range(5)]

    def run():
        return [
            find_isomorphism(
                g1, g2, respect_node_labels=False, use_wl_prefilter=use_wl
            )
            for g1, g2 in pairs
        ]

    results = benchmark(run)
    assert all(r is None or r is not None for r in results)  # completed


@pytest.mark.parametrize("use_wl", [True, False], ids=["wl-prefilter", "no-prefilter"])
def test_b2_isomorphic_pairs(benchmark, use_wl):
    pairs = [graph_pair(seed, isomorphic=True) for seed in range(5)]

    def run():
        return [
            find_isomorphism(
                g1, g2, respect_node_labels=False, use_wl_prefilter=use_wl
            )
            for g1, g2 in pairs
        ]

    results = benchmark(run)
    assert all(r is not None for r in results)


def test_b2_wl_refutation_alone(benchmark):
    """The prefilter's own cost on non-isomorphic pairs."""
    pairs = [graph_pair(seed, isomorphic=False) for seed in range(5)]
    verdicts = benchmark(lambda: [wl_distinguishes(g1, g2) for g1, g2 in pairs])
    assert len(verdicts) == 5
