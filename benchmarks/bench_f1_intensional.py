"""F1 — eqs. (1)-(3): extensional vs intensional ``[above]`` (paper §2).

Regenerates the block-world example: the extensional relation of eq. (1),
the intensional function of eq. (2) over all legal configurations, and
the per-world evaluation of eq. (3).  Benchmarks world-space construction
and intension lifting.
"""

from repro.intensional import (
    IntensionalRelation,
    blocks_world_space,
    paper_world,
)

PAPER_EXTENSION = frozenset({("a", "b"), ("a", "d"), ("b", "d")})


def build_space_and_lift(n_blocks: int):
    blocks = [chr(ord("a") + i) for i in range(n_blocks)]
    space = blocks_world_space(blocks)
    relation = IntensionalRelation.from_predicate("above", 2, space)
    return space, relation


def test_f1_paper_configuration_reproduced(benchmark):
    """Eq. (1): the paper's exact extension, found among the legal worlds."""
    space, relation = benchmark(build_space_and_lift, 3)
    print(f"\nF1: |W| = {len(space)} legal configurations of 3 blocks")
    # eq. (3)-style lookups: each world yields its own extensional relation
    extents = {frozenset(relation.at(w).tuples) for w in space}
    assert len(extents) == len(space)  # distinct configurations, distinct extents

    world = paper_world()
    assert world.relation("above") == PAPER_EXTENSION
    print(f"F1: eq.(1) [above] = {sorted(PAPER_EXTENSION)} reproduced")


def test_f1_intension_is_total_and_non_rigid(benchmark):
    """Eq. (2): r : W → 2^{D²} is a total function, and genuinely modal."""
    space, relation = build_space_and_lift(3)

    def evaluate_everywhere():
        return [relation.at(w).tuples for w in space]

    extents = benchmark(evaluate_everywhere)
    assert len(extents) == len(space)
    assert not relation.is_rigid()


def test_f1_four_block_space_scales(benchmark):
    """The paper's four blocks: 219 strict partial orders."""
    space, _ = benchmark(build_space_and_lift, 4)
    assert len(space) == 219
    print(f"\nF1: |W| = {len(space)} for blocks a, b, c, d")
