"""T2 — the Italian/Spanish/French old-age adjective table (paper §3).

Regenerates the correspondence table from the field data (the paper's
exact cells) and measures the cross-language imposition losses;
benchmarks table construction and the pairwise loss matrix.
"""

from repro.core import imposition_report
from repro.corpora.lexical import age_lexicalizations
from repro.semiotics import correspondence_table, render_table, translation_report


def test_t2_table_reproduced(benchmark):
    lexs = age_lexicalizations()
    rows = benchmark(correspondence_table, lexs)
    by_point = {row["point"]: row for row in rows}
    # the paper's table, cell by cell (primary terms)
    assert by_point["old_thing"]["Italian"][0] == "vecchio"
    assert by_point["old_thing"]["Spanish"][0] == "viejo"
    assert by_point["old_thing"]["French"][0] == "vieux"
    assert by_point["aged_beverage"]["Spanish"][0] == "añejo"
    assert by_point["respected_elder"]["Spanish"][0] == "mayor"
    assert by_point["senior_in_function"]["Italian"][0] == "anziano"
    assert by_point["senior_in_function"]["Spanish"][0] == "antiguo"
    assert by_point["senior_in_function"]["French"][0] == "ancien"
    assert by_point["antique_artifact"]["Italian"][0] == "antico"
    assert by_point["antique_artifact"]["French"][0] == "antique"
    print("\nT2: the table, recomputed:")
    print(render_table(rows, [lex.language for lex in lexs]))


def test_t2_anziano_has_no_exact_counterpart(benchmark):
    lexs = age_lexicalizations()
    italian, spanish, _ = lexs
    report = benchmark(translation_report, italian, spanish)
    distortion = dict(report.distortion)
    assert distortion["anziano"] > 0
    assert distortion["vecchio"] > 0  # viejo misses the beverage use
    assert distortion["antico"] > 0   # antiguo also covers seniority


def test_t2_imposition_losses(benchmark):
    lexs = age_lexicalizations()
    report = benchmark(imposition_report, lexs)
    assert all(loss >= 0 for _, _, loss in report.losses)
    imposed, community, worst = report.worst()
    assert worst > 0
    print(f"\nT2: worst imposition: {imposed} on {community}: {worst:.0%} lost")
