"""Legacy shim so `setup.py develop` works in offline environments without wheel."""
from setuptools import setup

setup()
