PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench-smoke bench-json

check: test bench-smoke

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable -q

bench-json:
	$(PYTHON) -m repro bench --out .
