"""Rigidity analysis of intensional properties (OntoClean-style).

Once intensional relations exist (paper §2), modal metaproperties become
computable.  A unary property P over a world space is

* **rigid** — every instance is an instance in every world
  (∃w d∈P(w) implies ∀w d∈P(w));
* **anti-rigid** — every instance fails to be an instance in some world;
* **semi-rigid** — some instances are essential, others are not.

Guarino's own later methodology (OntoClean) uses exactly these notions to
constrain taxonomies: an anti-rigid property cannot subsume a rigid one
(every Person is permanently a Person, so Person ⊑ Student is a modelling
error).  Implementing the checker here serves the reproduction two ways:
it shows the intensional machinery *can* do real work once worlds are
given extensionally — and that all of that work happens exactly on the
extensional side the paper shows the framework cannot define into
existence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from .relations import IntensionalRelation
from .worlds import WorldError


class Rigidity(enum.Enum):
    RIGID = "rigid"           # +R: all instances essential
    ANTI_RIGID = "anti-rigid" # ~R: no instance essential
    SEMI_RIGID = "semi-rigid" # -R: mixed
    EMPTY = "empty"           # no instance in any world


def instances_somewhere(relation: IntensionalRelation) -> frozenset:
    """Elements that are instances in at least one world."""
    _require_unary(relation)
    out: set = set()
    for world in relation.space:
        out |= {row[0] for row in relation.at(world).tuples}
    return frozenset(out)


def essential_instances(relation: IntensionalRelation) -> frozenset:
    """Elements that are instances in *every* world."""
    _require_unary(relation)
    worlds = list(relation.space)
    common = {row[0] for row in relation.at(worlds[0]).tuples}
    for world in worlds[1:]:
        common &= {row[0] for row in relation.at(world).tuples}
    return frozenset(common)


def classify_rigidity(relation: IntensionalRelation) -> Rigidity:
    """The OntoClean rigidity metaproperty of a unary intension."""
    some = instances_somewhere(relation)
    if not some:
        return Rigidity.EMPTY
    always = essential_instances(relation)
    if always == some:
        return Rigidity.RIGID
    if not always:
        return Rigidity.ANTI_RIGID
    return Rigidity.SEMI_RIGID


def _require_unary(relation: IntensionalRelation) -> None:
    if relation.arity != 1:
        raise WorldError(
            f"rigidity is defined for unary properties; {relation.name!r} "
            f"has arity {relation.arity}"
        )


def rigidity_profile(
    relations: Iterable[IntensionalRelation],
) -> dict[str, Rigidity]:
    """Classify a family of unary intensions by name."""
    return {r.name: classify_rigidity(r) for r in relations}


@dataclass(frozen=True)
class RigidityViolation:
    """An OntoClean constraint violation in a proposed taxonomy."""

    sub: str
    sup: str
    sub_rigidity: Rigidity
    sup_rigidity: Rigidity

    def __str__(self) -> str:
        return (
            f"{self.sub} ({self.sub_rigidity.value}) ⊑ "
            f"{self.sup} ({self.sup_rigidity.value}): an anti-rigid property "
            "cannot subsume a rigid one"
        )


def check_taxonomy(
    profile: Mapping[str, Rigidity],
    subsumptions: Iterable[tuple[str, str]],
) -> list[RigidityViolation]:
    """The OntoClean backbone check: +R under ~R is an error.

    ``subsumptions`` are (sub, sup) pairs of property names; any pair
    where the sub is rigid and the sup anti-rigid is reported.
    """
    violations = []
    for sub, sup in subsumptions:
        if sub not in profile:
            raise WorldError(f"no rigidity known for {sub!r}")
        if sup not in profile:
            raise WorldError(f"no rigidity known for {sup!r}")
        if (
            profile[sub] is Rigidity.RIGID
            and profile[sup] is Rigidity.ANTI_RIGID
        ):
            violations.append(
                RigidityViolation(sub, sup, profile[sub], profile[sup])
            )
    return violations
