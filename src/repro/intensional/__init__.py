"""Guarino's intensional framework, implemented so it can be critiqued.

Worlds, extensional/intensional relations, ontological commitments and
intended models (paper §2), together with the two mechanized critiques:
definitional circularity (``circularity``) and over-breadth
(``overbreadth``).
"""

from .circularity import (
    GUARINO_DEPENDENCIES,
    KRIPKE_DEPENDENCIES,
    CircularityReport,
    Dependency,
    analyze,
    dependency_graph,
    guarino_circularity,
    kripke_circularity,
)
from .commitment import (
    ApproximationReport,
    CommitmentError,
    OntologicalCommitment,
    approximation_report,
    is_ontonomy_per_guarino,
)
from .overbreadth import (
    CandidateOntonomy,
    c_program,
    contradiction,
    grocery_list,
    paper_exhibits,
    qualification_rate,
    qualifies,
    random_literal_set,
    tautology_set,
    tax_return_form,
    witness_model,
)
from .relations import ExtensionalRelation, IntensionalRelation
from .rigidity import (
    Rigidity,
    RigidityViolation,
    check_taxonomy,
    classify_rigidity,
    essential_instances,
    instances_somewhere,
    rigidity_profile,
)
from .worlds import World, WorldError, WorldSpace, blocks_world_space, paper_world

__all__ = [
    "World", "WorldSpace", "WorldError", "blocks_world_space", "paper_world",
    "ExtensionalRelation", "IntensionalRelation",
    "OntologicalCommitment", "CommitmentError", "ApproximationReport",
    "approximation_report", "is_ontonomy_per_guarino",
    "Dependency", "CircularityReport", "analyze", "dependency_graph",
    "guarino_circularity", "kripke_circularity",
    "GUARINO_DEPENDENCIES", "KRIPKE_DEPENDENCIES",
    "Rigidity", "RigidityViolation", "classify_rigidity",
    "rigidity_profile", "check_taxonomy", "instances_somewhere",
    "essential_instances",
    "CandidateOntonomy", "qualifies", "witness_model", "tautology_set",
    "grocery_list", "tax_return_form", "c_program", "contradiction",
    "paper_exhibits", "random_literal_set", "qualification_rate",
]
