"""Extensional and intensional relations (paper §2, eqs. (1)–(3)).

An *extensional* n-ary relation on D is a subset of Dⁿ — eq. (1)'s
``[above] = {(a,b), (a,d), (b,d)}``.  An *intensional* relation is a
function ``r : W → 2^{Dⁿ}`` assigning an extensional relation to every
possible world — eq. (2) — so that ``[above](w) = {(a,b)}`` in a world
where only a sits on b — eq. (3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from .worlds import World, WorldError, WorldSpace


@dataclass(frozen=True)
class ExtensionalRelation:
    """A named subset of Dⁿ: the paper's eq. (1)."""

    name: str
    arity: int
    tuples: frozenset[tuple]

    def __post_init__(self) -> None:
        for row in self.tuples:
            if len(row) != self.arity:
                raise WorldError(
                    f"tuple {row!r} has length {len(row)}, expected arity {self.arity}"
                )

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self.tuples

    def __len__(self) -> int:
        return len(self.tuples)

    def __str__(self) -> str:
        rows = ", ".join(str(t) for t in sorted(self.tuples))
        return f"[{self.name}] = {{{rows}}}"


class IntensionalRelation:
    """A function ``r : W → 2^{Dⁿ}``: the paper's eq. (2).

    Stored as an explicit per-world table, so the function-hood of the
    definition is literal: every world of the space must be mapped.
    """

    def __init__(
        self,
        name: str,
        arity: int,
        space: WorldSpace,
        mapping: Mapping[str, Iterable[tuple]],
    ) -> None:
        self.name = name
        self.arity = arity
        self.space = space
        self._table: dict[str, frozenset[tuple]] = {}
        for world in space:
            if world.name not in mapping:
                raise WorldError(
                    f"intensional relation {name!r} is not total: "
                    f"world {world.name!r} unmapped"
                )
            rows = frozenset(tuple(r) for r in mapping[world.name])
            for row in rows:
                if len(row) != arity:
                    raise WorldError(f"tuple {row!r} does not match arity {arity}")
                if any(x not in space.domain for x in row):
                    raise WorldError(f"tuple {row!r} uses elements outside D")
            self._table[world.name] = rows
        extra = set(mapping) - set(self._table)
        if extra:
            raise WorldError(f"mapping mentions unknown worlds: {sorted(extra)}")

    @classmethod
    def from_predicate(
        cls,
        name: str,
        arity: int,
        space: WorldSpace,
        predicate: str | None = None,
    ) -> "IntensionalRelation":
        """Lift a predicate's per-world extension into an intensional relation.

        This is the only way Guarino's framework can actually *obtain* an
        intensional relation: read the extensional relation off each world.
        The circularity analysis (``repro.intensional.circularity``) makes
        the resulting dependency explicit.
        """
        predicate = predicate or name
        return cls(
            name,
            arity,
            space,
            {w.name: w.relation(predicate) for w in space},
        )

    @classmethod
    def from_rule(
        cls,
        name: str,
        arity: int,
        space: WorldSpace,
        rule: Callable[[World], Iterable[tuple]],
    ) -> "IntensionalRelation":
        """Build an intensional relation from an arbitrary world-indexed rule."""
        return cls(name, arity, space, {w.name: frozenset(rule(w)) for w in space})

    def at(self, world: World | str) -> ExtensionalRelation:
        """The extensional relation this intension assigns to ``world`` (eq. 3)."""
        name = world.name if isinstance(world, World) else world
        if name not in self._table:
            raise WorldError(f"no world named {name!r} in this relation's space")
        return ExtensionalRelation(self.name, self.arity, self._table[name])

    def is_rigid(self) -> bool:
        """True iff the extension is the same in every world.

        Rigid intensions are exactly the ones that carry no modal
        information — an extensional relation in disguise.
        """
        extents = {self._table[w.name] for w in self.space}
        return len(extents) == 1

    def worlds_where(self, row: tuple) -> frozenset[str]:
        """The names of the worlds in which ``row`` holds."""
        row = tuple(row)
        return frozenset(
            name for name, rows in self._table.items() if row in rows
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntensionalRelation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._table == other._table
        )

    def __hash__(self) -> int:
        return hash((self.name, self.arity, tuple(sorted(self._table.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntensionalRelation({self.name!r}, arity={self.arity}, worlds={len(self.space)})"
