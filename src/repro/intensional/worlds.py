"""Possible worlds and world spaces.

Guarino's construction (paper §2) begins with "a set W of worlds, that
is, grosso modo, a set of legal configurations of the elements of D".
Here a world is named and carries a finite first-order structure over a
shared domain — the extensional state of affairs in that configuration.
``blocks_world_space`` builds the paper's running example: blocks a, b,
c, d and the ``above`` relation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

from ..logic import Structure


class WorldError(Exception):
    """Raised on inconsistent world spaces."""


@dataclass(frozen=True)
class World:
    """A named possible world: one legal configuration of the domain."""

    name: str
    structure: Structure

    def relation(self, predicate: str) -> frozenset[tuple]:
        """The extension of ``predicate`` in this world."""
        return self.structure.relations.get(predicate, frozenset())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"World({self.name!r})"


class WorldSpace:
    """A finite set of worlds over one shared domain.

    All structures must agree on the domain and on constant
    interpretations (the elements of D are rigid designators across
    worlds; what varies between worlds is which relations hold).
    """

    def __init__(self, worlds: Iterable[World]) -> None:
        self.worlds: list[World] = list(worlds)
        if not self.worlds:
            raise WorldError("a world space needs at least one world")
        names = [w.name for w in self.worlds]
        if len(set(names)) != len(names):
            raise WorldError("world names must be unique")
        first = self.worlds[0].structure
        for world in self.worlds[1:]:
            if world.structure.domain != first.domain:
                raise WorldError(
                    f"world {world.name!r} has a different domain; "
                    "all worlds must share D"
                )
            if world.structure.constants != first.constants:
                raise WorldError(
                    f"world {world.name!r} reinterprets constants; "
                    "designators must be rigid across worlds"
                )
        self._by_name = {w.name: w for w in self.worlds}

    @property
    def domain(self) -> frozenset:
        return self.worlds[0].structure.domain

    def __len__(self) -> int:
        return len(self.worlds)

    def __iter__(self) -> Iterator[World]:
        return iter(self.worlds)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def world(self, name: str) -> World:
        if name not in self._by_name:
            raise WorldError(f"no world named {name!r}")
        return self._by_name[name]

    def names(self) -> list[str]:
        return [w.name for w in self.worlds]


def blocks_world_space(
    blocks: Sequence[Hashable] = ("a", "b", "c", "d"),
    *,
    max_worlds: int | None = None,
) -> WorldSpace:
    """The paper's block world: every acyclic configuration of ``above``.

    "Legal configurations" are taken to be the strict partial orders on
    the blocks (no block is above itself, directly or transitively) —
    gravity-compatible stackings.  With 4 blocks that is 219 worlds, so
    ``max_worlds`` allows truncation for benchmarks.
    """
    blocks = list(blocks)
    pairs = [(x, y) for x in blocks for y in blocks if x != y]
    worlds: list[World] = []
    counter = 0
    for bits in itertools.product([False, True], repeat=len(pairs)):
        chosen = frozenset(p for p, bit in zip(pairs, bits) if bit)
        if not _is_strict_partial_order(chosen, blocks):
            continue
        structure = Structure(
            blocks,
            constants={str(b): b for b in blocks},
            relations={"above": chosen},
        )
        worlds.append(World(f"w{counter}", structure))
        counter += 1
        if max_worlds is not None and counter >= max_worlds:
            break
    return WorldSpace(worlds)


def _is_strict_partial_order(pairs: frozenset[tuple], elements: list) -> bool:
    """Irreflexive + transitive (hence acyclic) check for ``above``."""
    if any(x == y for x, y in pairs):
        return False
    by_source: dict = {}
    for x, y in pairs:
        by_source.setdefault(x, set()).add(y)
    for x, y in pairs:
        for z in by_source.get(y, ()):
            if (x, z) not in pairs:
                return False
    return True


def paper_world(blocks: Sequence[str] = ("a", "b", "c", "d")) -> World:
    """The specific configuration of the paper's eq. (1):
    a above b, a above d, b above d."""
    structure = Structure(
        list(blocks),
        constants={b: b for b in blocks},
        relations={"above": [("a", "b"), ("a", "d"), ("b", "d")]},
    )
    return World("paper", structure)
