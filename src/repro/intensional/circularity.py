"""The circularity analysis of Guarino's framework (paper §2, critique 1).

"…the worlds, that one needs in order to define the intensional relation,
can only have structure by virtue of the extensional relations that the
intensional ones are supposed to define.  We are stuck in the middle of a
circular argument."

This module represents definitional dependency as a labeled digraph —
an edge ``X → Y`` meaning "the definition of X presupposes Y" — and finds
circular definitions as non-trivial strongly connected components.  The
dependency structure of Guarino's own construction is shipped as data
(:data:`GUARINO_DEPENDENCIES`) so the paper's diagnosis is reproduced by
running the analyzer, not by asserting the conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..graphs import DiGraph, find_cycle, strongly_connected_components


@dataclass(frozen=True)
class Dependency:
    """One definitional dependency: ``definiendum`` presupposes ``definiens``."""

    definiendum: str
    definiens: str
    justification: str

    def __str__(self) -> str:
        return f"{self.definiendum} → {self.definiens}: {self.justification}"


#: The paper's reconstruction of Guarino's definitions as dependencies.
GUARINO_DEPENDENCIES: tuple[Dependency, ...] = (
    Dependency(
        "intensional_relation",
        "possible_world",
        "an intensional relation is a function r : W → 2^{Dⁿ}; "
        "it cannot be stated without the set W of worlds",
    ),
    Dependency(
        "possible_world",
        "extensional_relation",
        "a world is a *legal configuration* of the elements of D; "
        "configurations are individuated by which extensional relations "
        "hold in them — a structureless world is no configuration at all",
    ),
    Dependency(
        "extensional_relation",
        "intensional_relation",
        "in the framework the extensional relation at w is r(w): to know "
        "whether (a, b) ∈ [above] one checks (a, b) ∈ [above](w)",
    ),
    Dependency(
        "ontological_commitment",
        "intensional_relation",
        "a commitment is an intensional interpretation of the vocabulary",
    ),
    Dependency(
        "intended_model",
        "ontological_commitment",
        "the intended models of L are those the commitment induces per world",
    ),
    Dependency(
        "ontonomy",
        "intended_model",
        "an ontonomy is an axiom set whose models approximate the intended models",
    ),
)

#: The same notions as Kripke arranges them — worlds carry primitive
#: extensional structure, and intensions are *derived*: no cycle.
KRIPKE_DEPENDENCIES: tuple[Dependency, ...] = (
    Dependency(
        "possible_world",
        "extensional_relation",
        "a Kripke world IS a model: extensional relations are its primitive structure",
    ),
    Dependency(
        "intensional_relation",
        "possible_world",
        "an intension is read off the family of models, world by world",
    ),
    Dependency(
        "modal_truth",
        "intensional_relation",
        "truth of a modal predicate at w is evaluated through accessible worlds",
    ),
)


@dataclass(frozen=True)
class CircularityReport:
    """The output of the analysis: cyclic groups of notions plus a witness."""

    components: tuple[frozenset, ...]
    witness_cycle: tuple[str, ...] | None
    dependencies: tuple[Dependency, ...]

    @property
    def is_circular(self) -> bool:
        return self.witness_cycle is not None

    def explain(self) -> str:
        """A human-readable account, following the paper's prose."""
        if not self.is_circular:
            return "No definitional circularity: the dependency graph is a DAG."
        steps = []
        cycle = list(self.witness_cycle)
        for definiendum, definiens in zip(cycle, cycle[1:]):
            dep = next(
                d
                for d in self.dependencies
                if d.definiendum == definiendum and d.definiens == definiens
            )
            steps.append(f"  {definiendum} needs {definiens}\n    ({dep.justification})")
        return (
            "Definitional circularity detected:\n"
            + "\n".join(steps)
            + "\nEach notion in the cycle is defined in terms of the next; "
            "none can be logically prior."
        )


def dependency_graph(dependencies: Iterable[Dependency]) -> DiGraph:
    """The definitional-dependency digraph of a set of dependencies."""
    graph = DiGraph()
    for dep in dependencies:
        graph.add_edge(dep.definiendum, dep.definiens, label=dep.justification)
    return graph


def analyze(dependencies: Sequence[Dependency]) -> CircularityReport:
    """Find circular definitions among ``dependencies``.

    Returns every non-trivial strongly connected component (a mutual-
    presupposition group) and a concrete witness cycle, or a clean bill
    of health when the graph is a DAG.
    """
    graph = dependency_graph(dependencies)
    cyclic = tuple(
        component
        for component in strongly_connected_components(graph)
        if len(component) > 1
        or any(graph.has_edge(n, n) for n in component)
    )
    cycle = find_cycle(graph)
    return CircularityReport(
        components=cyclic,
        witness_cycle=tuple(cycle) if cycle else None,
        dependencies=tuple(dependencies),
    )


def guarino_circularity() -> CircularityReport:
    """Run the analysis on Guarino's own definitional structure (Q2)."""
    return analyze(GUARINO_DEPENDENCIES)


def kripke_circularity() -> CircularityReport:
    """The control: Kripke's arrangement of the same notions is acyclic."""
    return analyze(KRIPKE_DEPENDENCIES)
