"""The over-breadth experiment (paper §2, critique of "approximates").

"If we abstract from the language, then any set of statements that
admits at least a model is an ontonomy.  In particular, any set of
tautologies is an ontology. … many things, from a C program to a very
well structured grocery list, to a tax return form would qualify."

This module encodes exactly those artifacts — tautology sets, a grocery
list, a tax-return form, a small C program — as axiom sets over explicit
vocabularies, and provides the decision procedure ``qualifies`` (does the
set admit a finite model?).  Benchmark Q3 runs them all and reports that
every single one passes Guarino's membership test, plus a sweep measuring
what fraction of *random* axiom sets qualifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..logic import (
    Atom,
    FAnd,
    FNot,
    FolFormula,
    FOr,
    Structure,
    TConst,
    Vocabulary,
    has_finite_model,
)


@dataclass(frozen=True)
class CandidateOntonomy:
    """An artifact submitted to Guarino's membership test."""

    title: str
    description: str
    vocabulary: Vocabulary
    axioms: tuple[FolFormula, ...]


def qualifies(candidate: CandidateOntonomy, *, max_domain_size: int = 2) -> bool:
    """Guarino's test, abstracted from the language: admits a model?"""
    return (
        has_finite_model(candidate.axioms, candidate.vocabulary, max_domain_size)
        is not None
    )


def witness_model(candidate: CandidateOntonomy, *, max_domain_size: int = 2) -> Structure | None:
    """A concrete model witnessing qualification, if any."""
    return has_finite_model(candidate.axioms, candidate.vocabulary, max_domain_size)


# ---------------------------------------------------------------------- #
# the paper's exhibits
# ---------------------------------------------------------------------- #


def tautology_set(n: int = 3) -> CandidateOntonomy:
    """``n`` excluded-middle tautologies: the paper's "any set of tautologies"."""
    predicates = {f"P{i}": 1 for i in range(n)}
    vocabulary = Vocabulary(constants=frozenset({"it"}), predicates=predicates)
    it = TConst("it")
    axioms = tuple(
        FOr(Atom(f"P{i}", (it,)), FNot(Atom(f"P{i}", (it,)))) for i in range(n)
    )
    return CandidateOntonomy(
        title=f"{n} tautologies",
        description="excluded-middle instances; true in every structure",
        vocabulary=vocabulary,
        axioms=axioms,
    )


GROCERY_ITEMS = ("milk", "bread", "olive_oil", "wine", "parmigiano")


def grocery_list(items: Sequence[str] = GROCERY_ITEMS) -> CandidateOntonomy:
    """A very well structured grocery list, as an axiom set."""
    vocabulary = Vocabulary(
        constants=frozenset(items),
        predicates={"on_list": 1, "dairy": 1},
    )
    axioms: list[FolFormula] = [Atom("on_list", (TConst(i),)) for i in items]
    axioms.append(Atom("dairy", (TConst("milk"),)))
    if "parmigiano" in items:
        axioms.append(Atom("dairy", (TConst("parmigiano"),)))
    return CandidateOntonomy(
        title="grocery list",
        description="each item asserted on the list; dairy items flagged",
        vocabulary=vocabulary,
        axioms=tuple(axioms),
    )


def tax_return_form() -> CandidateOntonomy:
    """A tax return form: declared fields, filled fields, one deduction."""
    vocabulary = Vocabulary(
        constants=frozenset({"line_income", "line_deduction", "line_total"}),
        predicates={"field": 1, "filled": 1, "deduction": 1},
    )
    fields = ("line_income", "line_deduction", "line_total")
    axioms: list[FolFormula] = [Atom("field", (TConst(f),)) for f in fields]
    axioms += [Atom("filled", (TConst(f),)) for f in ("line_income", "line_total")]
    axioms.append(Atom("deduction", (TConst("line_deduction"),)))
    return CandidateOntonomy(
        title="tax return form",
        description="form lines as constants, their statuses as predicates",
        vocabulary=vocabulary,
        axioms=tuple(axioms),
    )


def c_program() -> CandidateOntonomy:
    """A tiny C program, re-coded as facts about its statements.

    ``int x = 0; x = x + 1; return x;`` — assignment and control-flow
    facts, exactly the kind of re-coding that makes anything an "ontonomy".
    """
    vocabulary = Vocabulary(
        constants=frozenset({"s1", "s2", "s3", "x"}),
        predicates={"statement": 1, "assigns": 2, "follows": 2, "returns": 2},
    )
    s1, s2, s3, x = (TConst(n) for n in ("s1", "s2", "s3", "x"))
    axioms: tuple[FolFormula, ...] = (
        Atom("statement", (s1,)),
        Atom("statement", (s2,)),
        Atom("statement", (s3,)),
        Atom("assigns", (s1, x)),
        Atom("assigns", (s2, x)),
        Atom("returns", (s3, x)),
        Atom("follows", (s2, s1)),
        Atom("follows", (s3, s2)),
    )
    return CandidateOntonomy(
        title="C program",
        description="a three-statement program as assignment/flow facts",
        vocabulary=vocabulary,
        axioms=axioms,
    )


def contradiction() -> CandidateOntonomy:
    """The control case: the only thing the test actually excludes."""
    vocabulary = Vocabulary(constants=frozenset({"a"}), predicates={"P": 1})
    a = TConst("a")
    return CandidateOntonomy(
        title="contradiction",
        description="P(a) ∧ ¬P(a): no model, hence not an ontonomy",
        vocabulary=vocabulary,
        axioms=(FAnd(Atom("P", (a,)), FNot(Atom("P", (a,)))),),
    )


def paper_exhibits() -> list[CandidateOntonomy]:
    """All the paper's exhibits, plus the contradiction control."""
    return [
        tautology_set(),
        grocery_list(),
        tax_return_form(),
        c_program(),
        contradiction(),
    ]


# ---------------------------------------------------------------------- #
# the random sweep
# ---------------------------------------------------------------------- #


def random_literal_set(
    rng: random.Random,
    *,
    n_constants: int = 2,
    n_predicates: int = 2,
    n_literals: int = 4,
) -> CandidateOntonomy:
    """A random conjunction of ground literals over a small vocabulary."""
    constants = [f"c{i}" for i in range(n_constants)]
    predicates = {f"P{i}": 1 for i in range(n_predicates)}
    vocabulary = Vocabulary(constants=frozenset(constants), predicates=predicates)
    axioms: list[FolFormula] = []
    for _ in range(n_literals):
        predicate = f"P{rng.randrange(n_predicates)}"
        constant = TConst(constants[rng.randrange(n_constants)])
        atom = Atom(predicate, (constant,))
        axioms.append(FNot(atom) if rng.random() < 0.5 else atom)
    return CandidateOntonomy(
        title="random literal set",
        description="random ground literals",
        vocabulary=vocabulary,
        axioms=tuple(axioms),
    )


def qualification_rate(
    *,
    seed: int = 0,
    samples: int = 100,
    n_literals: int = 4,
    n_constants: int = 2,
    n_predicates: int = 2,
) -> float:
    """The fraction of random axiom sets that Guarino's test admits.

    The paper predicts this is large (the only excluded sets are the
    contradictory ones); the benchmark for Q3 reports the sweep over
    ``n_literals``.
    """
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        candidate = random_literal_set(
            rng,
            n_constants=n_constants,
            n_predicates=n_predicates,
            n_literals=n_literals,
        )
        if qualifies(candidate):
            hits += 1
    return hits / samples
