"""Ontological commitments and Guarino's definition of an ontonomy.

Paper §2: "Given a logical language L(V) built on a vocabulary V, an
extensional model for L(V) is a pair (D, R) ... Guarino defines an
intensional model for a language by replacing R with a set of intensional
relations.  An intensional model ... can be seen then as a function that
maps any possible world w to an extensional model relative to that world.
This intensional interpretation of a language is also called an
ontological commitment."

And the definition under critique: "Given a language L, with ontological
commitment K, an [ontonomy] for L is a set of axioms designed in a way
such that the set of its models approximates as best as possible the set
of intended models of L according to K."

This module implements the commitment, the induced intended models, and
— crucially — the word "approximates" as an explicit, tunable metric, so
the over-breadth critique (Q3) can be run as an experiment instead of
stated as an opinion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..logic import FolFormula, Structure, Vocabulary, all_structures
from .relations import IntensionalRelation
from .worlds import World, WorldError, WorldSpace


class CommitmentError(Exception):
    """Raised on ill-formed ontological commitments."""


class OntologicalCommitment:
    """An intensional interpretation ``K`` of a vocabulary.

    Maps every predicate of ``vocabulary`` to an intensional relation
    over a world space.  Constants are interpreted rigidly by the world
    space itself.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        space: WorldSpace,
        interpretation: Mapping[str, IntensionalRelation],
    ) -> None:
        if vocabulary.functions:
            raise CommitmentError("commitments over function symbols are not supported")
        self.vocabulary = vocabulary
        self.space = space
        self.interpretation = dict(interpretation)
        for predicate, arity in vocabulary.predicates.items():
            relation = self.interpretation.get(predicate)
            if relation is None:
                raise CommitmentError(f"predicate {predicate!r} has no intension")
            if relation.arity != arity:
                raise CommitmentError(
                    f"predicate {predicate!r} has arity {arity}, "
                    f"but its intension has arity {relation.arity}"
                )
            if relation.space is not space:
                raise CommitmentError(
                    f"intension of {predicate!r} is defined over a different world space"
                )
        for name in vocabulary.constants:
            if name not in self.space.worlds[0].structure.constants:
                raise CommitmentError(f"constant {name!r} not interpreted by the worlds")

    def extensional_model(self, world: World | str) -> Structure:
        """The extensional model ``(D, R)`` this commitment induces at ``world``."""
        world_obj = world if isinstance(world, World) else self.space.world(world)
        relations = {
            predicate: relation.at(world_obj).tuples
            for predicate, relation in self.interpretation.items()
        }
        return Structure(
            self.space.domain,
            constants={
                name: world_obj.structure.constants[name]
                for name in self.vocabulary.constants
            },
            relations=relations,
        )

    def intended_models(self) -> list[Structure]:
        """The set of intended models of L according to K: one per world."""
        return [self.extensional_model(w) for w in self.space]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OntologicalCommitment(predicates={sorted(self.interpretation)}, "
            f"worlds={len(self.space)})"
        )


@dataclass(frozen=True)
class ApproximationReport:
    """How well an axiom set's models approximate the intended models.

    * ``intended``: number of intended models (worlds);
    * ``captured``: intended models that satisfy the axioms (recall numerator);
    * ``admitted``: axiom models over the same domain that are NOT intended
      (the slack the word "approximates" leaves open);
    * ``precision`` / ``recall`` / ``jaccard``: the usual set metrics over
      the model sets.
    """

    intended: int
    captured: int
    admitted: int

    @property
    def recall(self) -> float:
        return self.captured / self.intended if self.intended else 0.0

    @property
    def precision(self) -> float:
        total = self.captured + self.admitted
        return self.captured / total if total else 0.0

    @property
    def jaccard(self) -> float:
        union = self.intended + self.admitted
        return self.captured / union if union else 0.0


def _structure_key(structure: Structure) -> tuple:
    """A hashable identity for finite structures (domain + constants + relations)."""
    return (
        frozenset(structure.domain),
        tuple(sorted(structure.constants.items(), key=repr)),
        tuple(
            sorted(
                (name, tuple(sorted(rows)))
                for name, rows in structure.relations.items()
            )
        ),
    )


def approximation_report(
    axioms: Sequence[FolFormula],
    commitment: OntologicalCommitment,
) -> ApproximationReport:
    """Measure how the models of ``axioms`` approximate the intended models.

    Model enumeration is over the commitment's own domain with the
    commitment's (rigid) constants — the space in which "intended" is
    even comparable with "admitted".
    """
    for axiom in axioms:
        commitment.vocabulary.validate(axiom)
    intended = {_structure_key(m): m for m in commitment.intended_models()}
    domain = sorted(commitment.space.domain, key=repr)
    constants = commitment.space.worlds[0].structure.constants
    fixed_constants = {
        name: constants[name] for name in commitment.vocabulary.constants
    }

    captured = 0
    admitted = 0
    seen_intended: set[tuple] = set()
    import itertools

    pred_items = sorted(commitment.vocabulary.predicates.items())
    rel_spaces = []
    for name, arity in pred_items:
        rows = list(itertools.product(domain, repeat=arity))
        rel_spaces.append([frozenset(s) for s in _powerset(rows)])
    for rel_choice in itertools.product(*rel_spaces):
        relations = {name: rows for (name, _), rows in zip(pred_items, rel_choice)}
        candidate = Structure(domain, constants=fixed_constants, relations=relations)
        if not all(candidate.satisfies(a) for a in axioms):
            continue
        key = _structure_key(candidate)
        if key in intended:
            if key not in seen_intended:
                captured += 1
                seen_intended.add(key)
        else:
            admitted += 1
    return ApproximationReport(
        intended=len(intended), captured=captured, admitted=admitted
    )


def _powerset(items):
    import itertools

    for r in range(len(items) + 1):
        yield from itertools.combinations(items, r)


def is_ontonomy_per_guarino(
    axioms: Sequence[FolFormula],
    commitment: OntologicalCommitment,
    *,
    min_jaccard: float = 0.0,
) -> bool:
    """Guarino's definition, with "approximates" made explicit.

    The paper's reading: "With this addendum, any system of statements
    that admits at least one model that is also a model for a language L
    is an ontonomy for L."  That is the ``min_jaccard = 0.0`` case —
    captured ≥ 1 suffices.  Raising the threshold shows how much
    normative force the definition gains only by *adding* something the
    definition does not contain.
    """
    report = approximation_report(axioms, commitment)
    if report.captured == 0:
        return False
    return report.jaccard >= min_jaccard
