"""Order theory substrate: finite posets, lattice queries, monotone maps."""

from .poset import (
    OrderError,
    Poset,
    chain,
    discrete,
    from_cover_graph,
    is_monotone,
)

__all__ = [
    "Poset",
    "OrderError",
    "is_monotone",
    "discrete",
    "chain",
    "from_cover_graph",
]
