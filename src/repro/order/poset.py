"""Finite partially ordered sets.

The Bench-Capon & Malcolm definition the paper singles out as "the most
promising attempt" (§2, Definition 1) is built on partial orders twice
over: the subsort order of a Goguen–Meseguer order-sorted algebra, and
the class hierarchy ``C = (C, ≤)``.  The paper also notes the key
expressive point: a partial order is a directed acyclic graph, strictly
more general than a tree, yet still a *monocriterial* taxonomy.  This
module provides the poset machinery both uses: order queries, Hasse
diagrams, bounds, meets/joins, monotone maps, and structural checks.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Optional

from ..graphs import DiGraph, GraphError, is_acyclic, topological_sort


class OrderError(Exception):
    """Raised when order axioms are violated or elements are unknown."""


class Poset:
    """A finite poset given by elements and generating order pairs.

    The order is the reflexive–transitive closure of the supplied pairs;
    antisymmetry is validated at construction (a cycle among distinct
    elements is rejected).

    >>> p = Poset(["car", "motorvehicle", "vehicle"],
    ...           [("car", "motorvehicle"), ("motorvehicle", "vehicle")])
    >>> p.leq("car", "vehicle")
    True
    >>> p.leq("vehicle", "car")
    False
    """

    def __init__(
        self,
        elements: Iterable[Hashable],
        pairs: Iterable[tuple[Hashable, Hashable]] = (),
    ) -> None:
        self._elements = list(dict.fromkeys(elements))  # preserve order, dedupe
        element_set = set(self._elements)
        graph = DiGraph()
        for e in self._elements:
            graph.add_node(e)
        for low, high in pairs:
            if low not in element_set or high not in element_set:
                raise OrderError(f"order pair ({low!r}, {high!r}) uses unknown elements")
            if low != high:
                graph.add_edge(low, high)
        if not is_acyclic(graph):
            raise OrderError("order pairs contain a cycle; antisymmetry violated")
        self._graph = graph
        # transitive closure: up[e] = {x : e <= x}
        self._up: dict[Hashable, frozenset] = {}
        for e in reversed(topological_sort(graph)):
            above: set = {e}
            for succ in graph.successors(e):
                above |= self._up[succ]
            self._up[e] = frozenset(above)
        self._down: dict[Hashable, set] = {e: set() for e in self._elements}
        for e in self._elements:
            for x in self._up[e]:
                self._down[x].add(e)
        self._covers: Optional[list[tuple[Hashable, Hashable]]] = None

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def elements(self) -> list[Hashable]:
        return list(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._up

    def _check(self, element: Hashable) -> None:
        if element not in self._up:
            raise OrderError(f"unknown element {element!r}")

    def leq(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a ≤ b``."""
        self._check(a)
        self._check(b)
        return b in self._up[a]

    def lt(self, a: Hashable, b: Hashable) -> bool:
        return a != b and self.leq(a, b)

    def comparable(self, a: Hashable, b: Hashable) -> bool:
        return self.leq(a, b) or self.leq(b, a)

    def up_set(self, element: Hashable) -> frozenset:
        """``{x : element ≤ x}`` (the principal filter)."""
        self._check(element)
        return self._up[element]

    def down_set(self, element: Hashable) -> frozenset:
        """``{x : x ≤ element}`` (the principal ideal)."""
        self._check(element)
        return frozenset(self._down[element])

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def covers(self) -> list[tuple[Hashable, Hashable]]:
        """The covering pairs ``(a, b)``: a < b with nothing strictly between.

        The poset is immutable, so the transitive reduction is computed
        once and cached; callers receive a copy they may mutate freely.
        """
        if self._covers is None:
            out = []
            for a in self._elements:
                strictly_above = self._up[a] - {a}
                for b in strictly_above:
                    if not any(self.lt(a, m) and self.lt(m, b) for m in strictly_above - {b}):
                        out.append((a, b))
            self._covers = out
        return list(self._covers)

    def hasse_diagram(self) -> DiGraph:
        """The Hasse diagram as a :class:`DiGraph` (edges point upward)."""
        g = DiGraph()
        for e in self._elements:
            g.add_node(e)
        for a, b in self.covers():
            g.add_edge(a, b)
        return g

    def minimal_elements(self) -> frozenset:
        return frozenset(e for e in self._elements if self._down[e] == {e})

    def maximal_elements(self) -> frozenset:
        return frozenset(e for e in self._elements if self._up[e] == frozenset({e}))

    def bottom(self) -> Optional[Hashable]:
        """The least element, if one exists."""
        mins = self.minimal_elements()
        if len(mins) == 1:
            (m,) = mins
            if self._up[m] == frozenset(self._elements):
                return m
        return None

    def top(self) -> Optional[Hashable]:
        """The greatest element, if one exists."""
        maxs = self.maximal_elements()
        if len(maxs) == 1:
            (m,) = maxs
            if frozenset(self._down[m]) == frozenset(self._elements):
                return m
        return None

    def upper_bounds(self, items: Iterable[Hashable]) -> frozenset:
        items = list(items)
        if not items:
            return frozenset(self._elements)
        bounds = self._up[items[0]]
        for e in items[1:]:
            self._check(e)
            bounds &= self._up[e]
        return frozenset(bounds)

    def lower_bounds(self, items: Iterable[Hashable]) -> frozenset:
        items = list(items)
        if not items:
            return frozenset(self._elements)
        bounds = frozenset(self._down[items[0]])
        for e in items[1:]:
            self._check(e)
            bounds &= frozenset(self._down[e])
        return bounds

    def join(self, a: Hashable, b: Hashable) -> Optional[Hashable]:
        """The least upper bound of ``a`` and ``b``, or ``None``."""
        ubs = self.upper_bounds([a, b])
        least = [u for u in ubs if all(self.leq(u, v) for v in ubs)]
        return least[0] if len(least) == 1 else None

    def meet(self, a: Hashable, b: Hashable) -> Optional[Hashable]:
        """The greatest lower bound of ``a`` and ``b``, or ``None``."""
        lbs = self.lower_bounds([a, b])
        greatest = [u for u in lbs if all(self.leq(v, u) for v in lbs)]
        return greatest[0] if len(greatest) == 1 else None

    def is_lattice(self) -> bool:
        """True iff every pair has both a meet and a join."""
        return all(
            self.join(a, b) is not None and self.meet(a, b) is not None
            for i, a in enumerate(self._elements)
            for b in self._elements[i:]
        )

    def is_chain(self) -> bool:
        """True iff the order is total."""
        return all(
            self.comparable(a, b)
            for i, a in enumerate(self._elements)
            for b in self._elements[i + 1:]
        )

    def is_tree(self) -> bool:
        """True iff the Hasse diagram is a forest ordered toward roots.

        Precisely: every element has at most one cover.  This is the
        *tree taxonomy* case the paper contrasts with the general DAG
        allowed by a partial order.
        """
        covers_of: dict[Hashable, int] = {e: 0 for e in self._elements}
        for a, _ in self.covers():
            covers_of[a] += 1
        return all(n <= 1 for n in covers_of.values())

    def height(self) -> int:
        """The length (edge count) of a longest chain."""
        order = topological_sort(self.hasse_diagram())
        depth = {e: 0 for e in self._elements}
        hasse = self.hasse_diagram()
        for e in order:
            for succ in hasse.successors(e):
                depth[succ] = max(depth[succ], depth[e] + 1)
        return max(depth.values(), default=0)

    def width(self) -> int:
        """The size of a largest antichain (Mirsky-style greedy bound is not
        used; exact via brute force on small posets, Dilworth via matching
        is overkill here)."""
        best = 0
        elements = self._elements
        # iterative antichain search with pruning
        def extend(start: int, chosen: list) -> None:
            nonlocal best
            best = max(best, len(chosen))
            for i in range(start, len(elements)):
                candidate = elements[i]
                if all(not self.comparable(candidate, c) for c in chosen):
                    extend(i + 1, chosen + [candidate])

        extend(0, [])
        return best

    def linear_extension(self) -> list[Hashable]:
        """Some total order compatible with the partial order."""
        return topological_sort(self.hasse_diagram())

    # ------------------------------------------------------------------ #
    # constructions
    # ------------------------------------------------------------------ #

    def subposet(self, items: Iterable[Hashable]) -> "Poset":
        keep = [e for e in self._elements if e in set(items)]
        pairs = [
            (a, b)
            for i, a in enumerate(keep)
            for b in keep
            if a != b and self.leq(a, b)
        ]
        return Poset(keep, pairs)

    def dual(self) -> "Poset":
        """The poset with the order reversed."""
        pairs = [(b, a) for a, b in self.covers()]
        return Poset(self._elements, pairs)

    def product(self, other: "Poset") -> "Poset":
        """The component-wise product order on pairs."""
        elements = [(a, b) for a in self._elements for b in other._elements]
        pairs = [
            ((a1, b1), (a2, b2))
            for (a1, b1) in elements
            for (a2, b2) in elements
            if (a1, b1) != (a2, b2) and self.leq(a1, a2) and other.leq(b1, b2)
        ]
        return Poset(elements, pairs)

    def order_pairs(self) -> frozenset[tuple[Hashable, Hashable]]:
        """All pairs (a, b) with a ≤ b (including reflexive pairs)."""
        return frozenset((a, b) for a in self._elements for b in self._up[a])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poset):
            return NotImplemented
        return set(self._elements) == set(other._elements) and self.order_pairs() == other.order_pairs()

    def __hash__(self) -> int:
        return hash((frozenset(self._elements), self.order_pairs()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Poset({len(self)} elements, {len(self.covers())} covers)"


def is_monotone(
    f: Callable[[Hashable], Hashable], source: Poset, target: Poset
) -> bool:
    """True iff ``f`` is order-preserving from ``source`` into ``target``."""
    for a in source.elements:
        for b in source.elements:
            if source.leq(a, b) and not target.leq(f(a), f(b)):
                return False
    return True


def discrete(elements: Iterable[Hashable]) -> Poset:
    """The discrete (antichain) order on ``elements``."""
    return Poset(elements, [])


def chain(elements: Iterable[Hashable]) -> Poset:
    """The total order listing ``elements`` from least to greatest."""
    items = list(elements)
    return Poset(items, list(zip(items, items[1:])))


def from_cover_graph(graph: DiGraph) -> Poset:
    """Build a poset whose order is the reachability order of a DAG."""
    if not is_acyclic(graph):
        raise OrderError("cover graph must be acyclic")
    return Poset(list(graph.nodes()), [(u, v) for u, v, _ in graph.edges()])
