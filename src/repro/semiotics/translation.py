"""Field-based translation and its measurable losses.

If meaning is position in a language's own system of oppositions, then
translation between languages that carve the field differently cannot be
lossless.  This module makes that quantitative: term-level translation by
maximal extent overlap, point-level translation by primary terms, and
loss metrics (Jaccard distance of extents, round-trip failures) that are
zero exactly when the lexicalizations align.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fields import FieldError, Lexicalization, aligned


@dataclass(frozen=True)
class TranslationReport:
    """Losses incurred translating ``source`` into ``target``.

    * ``term_map``: chosen target term per source term;
    * ``distortion``: per source term, the Jaccard distance between its
      extent and its translation's extent (0 = perfect fit);
    * ``round_trip_failures``: source terms not recovered by translating
      there and back;
    * ``mean_distortion``: average of ``distortion`` values.
    """

    source: str
    target: str
    term_map: tuple[tuple[str, str], ...]
    distortion: tuple[tuple[str, float], ...]
    round_trip_failures: tuple[str, ...]

    @property
    def mean_distortion(self) -> float:
        values = [d for _, d in self.distortion]
        return sum(values) / len(values) if values else 0.0

    @property
    def lossless(self) -> bool:
        """Zero distortion on every term.

        Round-trip failures are reported separately: synonymous terms can
        fail the round trip even between perfectly aligned languages.
        """
        return self.mean_distortion == 0.0


def translate_term(source: Lexicalization, target: Lexicalization, term: str) -> str:
    """The target term with maximal extent overlap (ties: smaller extent, name).

    This is the best any extent-based (designational) translation can do;
    the residual distortion is the paper's point.
    """
    if source.field != target.field:
        raise FieldError("translation requires a shared field")
    region = source.extent(term)
    best = min(
        target.terms,
        key=lambda u: (-len(region & target.extents[u]), len(target.extents[u]), u),
    )
    if not region & target.extents[best]:
        raise FieldError(
            f"no term of {target.language!r} overlaps {term!r} of {source.language!r}"
        )
    return best


def translate_point(lex: Lexicalization, point: str) -> str:
    """The term a speaker of ``lex`` uses for ``point`` (primary term)."""
    return lex.primary_term_for(point)


def jaccard_distance(a: frozenset, b: frozenset) -> float:
    """1 − |a∩b| / |a∪b| (0 for identical regions, 1 for disjoint)."""
    union = a | b
    if not union:
        return 0.0
    return 1.0 - len(a & b) / len(union)


def translation_report(
    source: Lexicalization, target: Lexicalization
) -> TranslationReport:
    """Translate every source term and measure what the move destroys."""
    term_map = []
    distortion = []
    failures = []
    for term in source.terms:
        translated = translate_term(source, target, term)
        term_map.append((term, translated))
        distortion.append(
            (term, jaccard_distance(source.extent(term), target.extent(translated)))
        )
        back = translate_term(target, source, translated)
        if back != term:
            failures.append(term)
    return TranslationReport(
        source=source.language,
        target=target.language,
        term_map=tuple(term_map),
        distortion=tuple(distortion),
        round_trip_failures=tuple(failures),
    )


def lossless_iff_aligned(a: Lexicalization, b: Lexicalization) -> bool:
    """The headline equivalence behind T1/T2: translation both ways is
    lossless exactly when the two languages carve the field identically.

    Returns True when the equivalence holds for this pair (it always
    should; exercised by property tests), False if a counterexample to
    the library's own claim were ever found.
    """
    both_lossless = (
        translation_report(a, b).lossless and translation_report(b, a).lossless
    )
    return both_lossless == aligned(a, b)
