"""Signs: designation versus signification (paper §3).

"At the origin of these problems there is … a certain confusion that
computational ontologists have been known to make between signification
and designation: the general idea in ontology seems to be that A means B
if and only if A designates B. … Consider a famous example from Husserl:
the winner at Jena / the loser at Waterloo.  The meaning of these two
phrases is different, although their designatum is the same: Napoleon."

A :class:`Sign` is the Saussurean pair (signifier, signified); an
:class:`Expression` additionally carries a designatum (an extra-linguistic
object) and a *sense* — the structured description through which it
presents its designatum.  ``same_designation`` and ``same_signification``
come apart exactly on Husserl's example, which is test and demonstration
at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True)
class Sign:
    """A Saussurean sign: signifier (the sound/letter pattern) and
    signified (the concept, not the thing)."""

    signifier: str
    signified: str

    def __str__(self) -> str:
        return f'"{self.signifier}" ↦ {self.signified.upper()}'


@dataclass(frozen=True)
class Expression:
    """A linguistic expression with both a sense and a designatum.

    ``sense`` is a frozenset of (relation, value) pairs — the descriptive
    route the phrase takes; ``designatum`` is the extra-linguistic object
    the route happens to land on.
    """

    text: str
    sense: frozenset[tuple[str, str]]
    designatum: Hashable

    def __str__(self) -> str:
        return f'"{self.text}"'


def same_designation(a: Expression, b: Expression) -> bool:
    """Designation is extra-linguistic: compare the designated objects."""
    return a.designatum == b.designatum


def same_signification(a: Expression, b: Expression) -> bool:
    """Signification is intra-linguistic: compare the sense structures."""
    return a.sense == b.sense


def husserl_example() -> tuple[Expression, Expression]:
    """Husserl's pair: same designatum (Napoleon), different significations."""
    winner = Expression(
        text="the winner at Jena",
        sense=frozenset({("role", "winner"), ("battle", "Jena")}),
        designatum="Napoleon",
    )
    loser = Expression(
        text="the loser at Waterloo",
        sense=frozenset({("role", "loser"), ("battle", "Waterloo")}),
        designatum="Napoleon",
    )
    return winner, loser


def designation_confusion(a: Expression, b: Expression) -> bool:
    """True iff treating designation as signification misjudges this pair.

    The ontologist's rule "A means B iff A designates B" declares two
    expressions synonymous whenever they co-designate; this returns True
    exactly when that rule and the structural comparison disagree —
    i.e. when the pair is a counterexample to the conflation.
    """
    return same_designation(a, b) != same_signification(a, b)
