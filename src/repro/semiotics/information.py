"""Information-theoretic measures on lexicalizations.

Treating a language's primary-term choice as a random variable over a
uniformly distributed field gives principled magnitudes for the paper's
qualitative claims: how much a language *says* about where in the field
a situation lies (entropy of the term variable), how much two languages'
choices co-vary (mutual information), and a proper metric of how far
apart their carvings are (variation of information between distinction
partitions — zero exactly on aligned languages).

Pure-Python log₂ arithmetic; no numpy needed at these sizes.
"""

from __future__ import annotations

import math
from typing import Iterable

from .fields import FieldError, Lexicalization
from .refinement import distinctions


def _entropy_of_partition(blocks: Iterable[frozenset[str]], total: int) -> float:
    h = 0.0
    for block in blocks:
        p = len(block) / total
        if p > 0:
            h -= p * math.log2(p)
    return h


def term_entropy(lex: Lexicalization) -> float:
    """H(T): entropy of the distinction partition under a uniform field.

    0 when the language draws no distinctions; log₂|field| when every
    point gets its own signature.
    """
    return _entropy_of_partition(distinctions(lex), len(lex.field))


def joint_entropy(a: Lexicalization, b: Lexicalization) -> float:
    """H(T_a, T_b): entropy of the common-refinement partition."""
    if a.field != b.field:
        raise FieldError("lexicalizations must share a field")
    blocks: dict[tuple, set[str]] = {}
    for point in a.field.points:
        signature = (a.terms_for(point), b.terms_for(point))
        blocks.setdefault(signature, set()).add(point)
    return _entropy_of_partition(
        (frozenset(v) for v in blocks.values()), len(a.field)
    )


#: Sums of log₂ terms accumulate ~1e-16 residue; snap below this to zero.
_EPSILON = 1e-12


def _clamp(value: float) -> float:
    return 0.0 if abs(value) < _EPSILON else max(0.0, value)


def mutual_information(a: Lexicalization, b: Lexicalization) -> float:
    """I(T_a; T_b) = H(a) + H(b) − H(a, b) ≥ 0."""
    return _clamp(term_entropy(a) + term_entropy(b) - joint_entropy(a, b))


def variation_of_information(a: Lexicalization, b: Lexicalization) -> float:
    """VI(a, b) = H(a,b) − I(a;b): a metric on carvings of the field.

    Zero iff the two languages induce the same distinction partition —
    the quantitative form of :func:`repro.semiotics.fields.aligned` up to
    term naming.  Satisfies the triangle inequality (property-tested).
    """
    return _clamp(2 * joint_entropy(a, b) - term_entropy(a) - term_entropy(b))
