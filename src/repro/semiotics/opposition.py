"""Differential (oppositional) meaning, and the case against atomism.

Paper §3: "Doorknob is not a positive term, but serves to establish a
distinction, an opposition in the semantic field of a language."  A
term's *value* (Saussure) is not its extent taken alone but the pattern
of oppositions it enters within its own language.  Two terms of
different languages with different extents can still have the same value
(occupy the same slot in their respective systems), and terms with
overlapping extents can have different values — which is why extent-
matching translation leaks.

``requires_differential_explanation`` operationalizes the anti-atomist
argument: whenever two languages' terms *partially* overlap (neither
identical nor disjoint extents), no story that assigns meaning to each
term one-by-one, without reference to its rivals, can state what either
term means — the boundary IS the meaning.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fields import FieldError, Lexicalization


@dataclass(frozen=True)
class Opposition:
    """How two terms of ONE language divide the field between them."""

    term: str
    rival: str
    shared: frozenset[str]
    only_term: frozenset[str]
    only_rival: frozenset[str]

    @property
    def kind(self) -> str:
        if not self.shared:
            return "exclusive"
        if not self.only_term and not self.only_rival:
            return "synonymous"
        if not self.only_term:
            return "hyponym"  # term's extent inside rival's
        if not self.only_rival:
            return "hypernym"
        return "overlapping"


@dataclass(frozen=True)
class Value:
    """A term's Saussurean value: its position in its own system.

    Encoded position-abstractly: the extent size, and the multiset of
    opposition kinds it enters — no point names, no term names — so that
    values are comparable ACROSS languages.
    """

    extent_size: int
    opposition_profile: tuple[tuple[str, int], ...]


def oppositions(lex: Lexicalization, term: str) -> list[Opposition]:
    """All oppositions ``term`` enters within its own language."""
    region = lex.extent(term)
    out = []
    for rival in lex.terms:
        if rival == term:
            continue
        other = lex.extents[rival]
        out.append(
            Opposition(
                term=term,
                rival=rival,
                shared=region & other,
                only_term=region - other,
                only_rival=other - region,
            )
        )
    return out


def value_of(lex: Lexicalization, term: str) -> Value:
    """The term's value: extent size plus its opposition-kind profile."""
    profile: dict[str, int] = {}
    for opposition in oppositions(lex, term):
        profile[opposition.kind] = profile.get(opposition.kind, 0) + 1
    return Value(
        extent_size=len(lex.extent(term)),
        opposition_profile=tuple(sorted(profile.items())),
    )


def same_value(
    lex_a: Lexicalization, term_a: str, lex_b: Lexicalization, term_b: str
) -> bool:
    """Do two terms occupy the same position in their respective systems?"""
    return value_of(lex_a, term_a) == value_of(lex_b, term_b)


def partial_overlaps(
    a: Lexicalization, b: Lexicalization
) -> list[tuple[str, str, frozenset[str]]]:
    """Cross-language term pairs whose extents properly overlap.

    Each entry ``(term_a, term_b, shared)`` has ``shared`` non-empty while
    neither extent contains the other — the doorknob/maniglia
    configuration.
    """
    if a.field != b.field:
        raise FieldError("comparison requires a shared field")
    out = []
    for term_a in a.terms:
        ra = a.extents[term_a]
        for term_b in b.terms:
            rb = b.extents[term_b]
            shared = ra & rb
            if shared and (ra - rb) and (rb - ra):
                out.append((term_a, term_b, shared))
    return out


def requires_differential_explanation(a: Lexicalization, b: Lexicalization) -> bool:
    """True iff the pair of languages refutes extent-atomism.

    When some term pair partially overlaps, knowing what each term is
    "locked to" (its extent, atom by atom) cannot explain why the two
    minds 'resonate' differently: the difference lives in the boundary,
    i.e. in each term's relations to its rivals.  (Paper §3, the
    doorknob/pomello argument against Fodor-style informational
    semantics as imported by ontologists.)
    """
    return bool(partial_overlaps(a, b))
