"""Structuralist semantics: fields, signs, translation, opposition."""

from .fields import (
    FieldError,
    Lexicalization,
    SemanticField,
    aligned,
    correspondence_table,
    overlap_matrix,
    render_table,
)
from .information import (
    joint_entropy,
    mutual_information,
    term_entropy,
    variation_of_information,
)
from .refinement import (
    common_refinement,
    distinctions,
    granularity,
    interlingua,
    refines,
)
from .opposition import (
    Opposition,
    Value,
    oppositions,
    partial_overlaps,
    requires_differential_explanation,
    same_value,
    value_of,
)
from .signs import (
    Expression,
    Sign,
    designation_confusion,
    husserl_example,
    same_designation,
    same_signification,
)
from .translation import (
    TranslationReport,
    jaccard_distance,
    lossless_iff_aligned,
    translate_point,
    translate_term,
    translation_report,
)

__all__ = [
    "SemanticField", "Lexicalization", "FieldError", "overlap_matrix",
    "aligned", "correspondence_table", "render_table",
    "Sign", "Expression", "same_designation", "same_signification",
    "husserl_example", "designation_confusion",
    "translate_term", "translate_point", "translation_report",
    "TranslationReport", "jaccard_distance", "lossless_iff_aligned",
    "Opposition", "Value", "oppositions", "value_of", "same_value",
    "distinctions", "granularity", "refines", "common_refinement",
    "term_entropy", "joint_entropy", "mutual_information",
    "variation_of_information",
    "interlingua",
    "partial_overlaps", "requires_differential_explanation",
]
