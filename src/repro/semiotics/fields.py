"""Semantic fields and their lexicalization by languages.

Paper §3: "Different languages break the semantic field in different
ways, and concepts arise at the fissures of these divisions."  The
doorknob/pomello schema and the old-age-adjective table are both
instances of one structure: a *conceptual space* of discriminable
situations (the field) and, per language, a *lexicalization* mapping
terms to regions of that space.

A lexicalization may be a partition (each situation named by exactly one
term) or a mere covering (soft and plain forms overlap, as Spanish
``mayor``/``anciano`` do).  All the paper's phenomena — partial overlap
across languages, terms with no counterpart, boundary shifts — become
set-algebra facts here, and the critique engine measures them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


class FieldError(Exception):
    """Raised on ill-formed fields or lexicalizations."""


@dataclass(frozen=True)
class SemanticField:
    """A named conceptual space: a finite set of discriminable situations.

    Points are pre-linguistic only in the model's bookkeeping sense: they
    are the finest distinctions *any of the compared languages* draws, so
    every language's terms are unions of them.
    """

    name: str
    points: frozenset[str]

    def __post_init__(self) -> None:
        if not self.points:
            raise FieldError("a semantic field needs at least one point")

    def __contains__(self, point: str) -> bool:
        return point in self.points

    def __len__(self) -> int:
        return len(self.points)


class Lexicalization:
    """One language's carving of a semantic field.

    ``extents`` maps each term of the language to the region (set of
    points) it covers.  Every term must cover something, and every point
    must be covered by at least one term (a language without a word for a
    situation in its own field simply has a smaller field).
    """

    def __init__(
        self,
        language: str,
        field: SemanticField,
        extents: Mapping[str, Iterable[str]],
    ) -> None:
        self.language = language
        self.field = field
        self.extents: dict[str, frozenset[str]] = {
            term: frozenset(points) for term, points in extents.items()
        }
        if not self.extents:
            raise FieldError(f"{language!r} lexicalizes nothing")
        for term, region in self.extents.items():
            if not region:
                raise FieldError(f"term {term!r} of {language!r} covers no points")
            stray = region - field.points
            if stray:
                raise FieldError(
                    f"term {term!r} of {language!r} covers unknown points {sorted(stray)}"
                )
        uncovered = field.points - self.covered()
        if uncovered:
            raise FieldError(
                f"{language!r} leaves points uncovered: {sorted(uncovered)}"
            )

    # ------------------------------------------------------------------ #

    @property
    def terms(self) -> list[str]:
        return sorted(self.extents)

    def extent(self, term: str) -> frozenset[str]:
        if term not in self.extents:
            raise FieldError(f"{self.language!r} has no term {term!r}")
        return self.extents[term]

    def covered(self) -> frozenset[str]:
        out: set[str] = set()
        for region in self.extents.values():
            out |= region
        return frozenset(out)

    def terms_for(self, point: str) -> frozenset[str]:
        """All terms of this language applicable to ``point``."""
        if point not in self.field:
            raise FieldError(f"unknown point {point!r}")
        return frozenset(
            term for term, region in self.extents.items() if point in region
        )

    def is_partition(self) -> bool:
        """True iff every point is covered by exactly one term."""
        return all(len(self.terms_for(p)) == 1 for p in self.field.points)

    def primary_term_for(self, point: str) -> str:
        """The most specific applicable term (smallest extent; ties by name).

        The choice a competent speaker makes: pomello over maniglia for a
        round knob, añejo over viejo for an appreciated rum.
        """
        candidates = self.terms_for(point)
        if not candidates:
            raise FieldError(f"{self.language!r} cannot name {point!r}")
        return min(candidates, key=lambda t: (len(self.extents[t]), t))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lexicalization({self.language!r}, terms={len(self.extents)})"


def overlap_matrix(
    a: Lexicalization, b: Lexicalization
) -> dict[tuple[str, str], int]:
    """``|extent_a(t) ∩ extent_b(u)|`` for every term pair.

    The computed form of the paper's doorknob/pomello schema: nonzero
    off-diagonal structure is exactly the boundary mismatch the drawing
    depicts.
    """
    if a.field != b.field:
        raise FieldError("lexicalizations must share a field to be compared")
    return {
        (t, u): len(a.extents[t] & b.extents[u])
        for t in a.terms
        for u in b.terms
    }


def aligned(a: Lexicalization, b: Lexicalization) -> bool:
    """True iff the two languages induce the same set of regions.

    This is the (rare) case in which translation is lossless and the
    atomist story never gets tested.
    """
    if a.field != b.field:
        raise FieldError("lexicalizations must share a field to be compared")
    return frozenset(a.extents.values()) == frozenset(b.extents.values())


def correspondence_table(
    lexicalizations: Iterable[Lexicalization],
) -> list[dict[str, object]]:
    """The paper's T2-style table, recomputed from the data.

    One row per field point: the point plus, per language, the applicable
    terms (sorted; the primary term first).
    """
    lexs = list(lexicalizations)
    if not lexs:
        raise FieldError("need at least one lexicalization")
    field = lexs[0].field
    for lex in lexs[1:]:
        if lex.field != field:
            raise FieldError("all lexicalizations must share the field")
    rows = []
    for point in sorted(field.points):
        row: dict[str, object] = {"point": point}
        for lex in lexs:
            terms = sorted(lex.terms_for(point))
            primary = lex.primary_term_for(point)
            ordered = [primary] + [t for t in terms if t != primary]
            row[lex.language] = tuple(ordered)
        rows.append(row)
    return rows


def render_table(rows: list[dict[str, object]], languages: list[str]) -> str:
    """Plain-text rendering of a correspondence table (for the benches)."""
    headers = ["point", *languages]
    cells = [
        [str(row["point"])] + ["/".join(row[lang]) for lang in languages]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in cells))
        for i in range(len(headers))
    ]
    def fmt(line: list[str]) -> str:
        return " | ".join(s.ljust(w) for s, w in zip(line, widths))

    out = [fmt(headers), "-+-".join("-" * w for w in widths)]
    out += [fmt(line) for line in cells]
    return "\n".join(out)
