"""Distinction partitions and common refinements of lexicalizations.

Each language induces a partition of the field: two points fall together
exactly when the same set of terms applies to both (their *signatures*
agree).  The common refinement of several languages is the meet of these
partitions — the finest grid of distinctions any of them draws.  This is
what a shared "neutral" taxonomy would have to resolve, and
:func:`interlingua` builds exactly that artifact so its cost can be
inspected: it necessarily multiplies terms (one per refinement block) and
erases every language's own overlap structure (the soft/plain register
distinctions live in the overlaps, not in the partition).
"""

from __future__ import annotations

from typing import Iterable

from .fields import FieldError, Lexicalization, SemanticField


def distinctions(lex: Lexicalization) -> frozenset[frozenset[str]]:
    """The partition of the field induced by term signatures."""
    blocks: dict[frozenset[str], set[str]] = {}
    for point in lex.field.points:
        blocks.setdefault(lex.terms_for(point), set()).add(point)
    return frozenset(frozenset(b) for b in blocks.values())


def granularity(lex: Lexicalization) -> int:
    """How many distinctions the language draws (blocks of its partition)."""
    return len(distinctions(lex))


def refines(fine: Lexicalization, coarse: Lexicalization) -> bool:
    """True iff every distinction of ``coarse`` is drawn by ``fine`` too.

    Formally: each block of ``fine``'s partition lies inside some block of
    ``coarse``'s.  When this holds, imposing ``fine``'s taxonomy on
    ``coarse``'s community loses nothing
    (cf. :func:`repro.core.pragmatic.imposition_loss`).
    """
    if fine.field != coarse.field:
        raise FieldError("lexicalizations must share a field")
    coarse_blocks = distinctions(coarse)
    return all(
        any(block <= other for other in coarse_blocks)
        for block in distinctions(fine)
    )


def common_refinement(
    lexicalizations: Iterable[Lexicalization],
) -> frozenset[frozenset[str]]:
    """The meet of the distinction partitions: the finest common grid."""
    lexs = list(lexicalizations)
    if not lexs:
        raise FieldError("need at least one lexicalization")
    field = lexs[0].field
    for lex in lexs[1:]:
        if lex.field != field:
            raise FieldError("all lexicalizations must share the field")
    blocks: dict[tuple, set[str]] = {}
    for point in field.points:
        signature = tuple(lex.terms_for(point) for lex in lexs)
        blocks.setdefault(signature, set()).add(point)
    return frozenset(frozenset(b) for b in blocks.values())


def interlingua(
    lexicalizations: Iterable[Lexicalization],
    *,
    language: str = "interlingua",
) -> Lexicalization:
    """A synthetic 'neutral taxonomy' resolving every language's distinctions.

    One fresh term per common-refinement block, named after its points.
    By construction it refines every input — and by construction it is a
    *partition*, so every overlap-borne nuance of the inputs (Spanish
    mayor vs anciano on the same person, Italian anziano's double life)
    has been legislated away.  The artifact the semantic web would need;
    the paper's §4 explains what adopting it does.
    """
    blocks = common_refinement(lexicalizations)
    lexs = list(lexicalizations)
    field = lexs[0].field
    extents = {
        "t_" + "_".join(sorted(block)): set(block) for block in blocks
    }
    return Lexicalization(language, field, extents)
