"""TBoxes: terminological axioms.

A TBox is a finite set of general concept inclusions (GCIs) ``C ⊑ D`` and
equivalences ``C ≡ D``.  The paper's ontonomies (structures (4), (8)–(11))
are TBoxes whose left-hand sides are atomic — *definitorial* form — which
admits lazy unfolding; general TBoxes are handled by the tableau through
GCI propagation with blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..graphs import DiGraph, find_cycle
from .syntax import Atomic, Concept, DLSyntaxError


@dataclass(frozen=True)
class Subsumption:
    """A general concept inclusion ``lhs ⊑ rhs``."""

    lhs: Concept
    rhs: Concept

    def __str__(self) -> str:
        return f"{self.lhs} ⊑ {self.rhs}"


@dataclass(frozen=True)
class Equivalence:
    """A concept equivalence ``lhs ≡ rhs``."""

    lhs: Concept
    rhs: Concept

    def __str__(self) -> str:
        return f"{self.lhs} ≡ {self.rhs}"

    def as_subsumptions(self) -> tuple[Subsumption, Subsumption]:
        return (Subsumption(self.lhs, self.rhs), Subsumption(self.rhs, self.lhs))


Axiom = Subsumption | Equivalence


class TBox:
    """A finite set of terminological axioms.

    >>> from repro.dl.syntax import Atomic, some
    >>> car, mv = Atomic("car"), Atomic("motorvehicle")
    >>> t = TBox([Subsumption(car, mv)])
    >>> t.is_definitorial()
    True
    """

    def __init__(self, axioms: Iterable[Axiom] = ()) -> None:
        self.axioms: list[Axiom] = []
        self._mutations: int = 0
        for axiom in axioms:
            if not isinstance(axiom, (Subsumption, Equivalence)):
                raise DLSyntaxError(f"not a TBox axiom: {axiom!r}")
            self.axioms.append(axiom)

    @property
    def revision(self) -> tuple[int, int]:
        """A cheap change marker consumers can poll to detect mutation.

        Moves on every :meth:`add`/:meth:`remove` *and* whenever the
        axiom count changes (so direct ``tbox.axioms.append`` is caught
        too).  In-place edits of axiom objects are invisible to it — use
        :meth:`repro.dl.reasoner.Reasoner.invalidate` explicitly then.
        """
        return (self._mutations, len(self.axioms))

    def add(self, axiom: Axiom) -> None:
        """Append one axiom in place, bumping :attr:`revision`."""
        if not isinstance(axiom, (Subsumption, Equivalence)):
            raise DLSyntaxError(f"not a TBox axiom: {axiom!r}")
        self.axioms.append(axiom)
        self._mutations += 1

    def remove(self, axiom: Axiom) -> None:
        """Remove one axiom in place, bumping :attr:`revision`.

        Raises :class:`ValueError` when the axiom is absent.
        """
        self.axioms.remove(axiom)
        self._mutations += 1

    def __len__(self) -> int:
        return len(self.axioms)

    def __iter__(self) -> Iterator[Axiom]:
        return iter(self.axioms)

    def gcis(self) -> list[Subsumption]:
        """All axioms as subsumptions (equivalences split in two)."""
        out: list[Subsumption] = []
        for axiom in self.axioms:
            if isinstance(axiom, Subsumption):
                out.append(axiom)
            else:
                out.extend(axiom.as_subsumptions())
        return out

    def atomic_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for gci in self.gcis():
            out |= gci.lhs.atomic_names() | gci.rhs.atomic_names()
        return out

    def role_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for gci in self.gcis():
            out |= gci.lhs.role_names() | gci.rhs.role_names()
        return out

    # ------------------------------------------------------------------ #
    # definitorial structure (enables lazy unfolding)
    # ------------------------------------------------------------------ #

    def defined_names(self) -> frozenset[str]:
        """Atomic names appearing as the lhs of some axiom."""
        return frozenset(
            gci.lhs.name for gci in self.gcis() if isinstance(gci.lhs, Atomic)
        )

    def dependency_graph(self) -> DiGraph:
        """Name-dependency graph: an edge A → B when A's definition uses B."""
        graph = DiGraph()
        for name in self.atomic_names():
            graph.add_node(name)
        for gci in self.gcis():
            if isinstance(gci.lhs, Atomic):
                for used in gci.rhs.atomic_names():
                    if used != gci.lhs.name:
                        graph.add_edge(gci.lhs.name, used)
        return graph

    def is_definitorial(self) -> bool:
        """True iff every lhs is atomic and the dependency graph is acyclic.

        Definitorial TBoxes — the only kind the paper's examples use —
        admit lazy unfolding in the tableau; everything else goes through
        GCI propagation with blocking.
        """
        if not all(isinstance(gci.lhs, Atomic) for gci in self.gcis()):
            return False
        return find_cycle(self.dependency_graph()) is None

    def definitions_of(self, name: str) -> list[Concept]:
        """The right-hand sides of axioms whose lhs is the atomic ``name``."""
        return [
            gci.rhs
            for gci in self.gcis()
            if isinstance(gci.lhs, Atomic) and gci.lhs.name == name
        ]

    def general_gcis(self) -> list[Subsumption]:
        """GCIs whose lhs is not atomic (require propagation, not unfolding)."""
        return [gci for gci in self.gcis() if not isinstance(gci.lhs, Atomic)]

    def extended(self, axioms: Iterable[Axiom]) -> "TBox":
        """A new TBox with ``axioms`` appended (the repair move of §3)."""
        return TBox([*self.axioms, *axioms])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TBox({len(self.axioms)} axioms)"

    def pretty(self) -> str:
        """A readable multi-line rendering (matches the paper's display style)."""
        return "\n".join(str(a) for a in self.axioms)
