"""Finite DL interpretations and an independent model checker.

An :class:`Interpretation` is a finite structure ``(Δ, ·ᴵ)``: a domain,
atomic-concept extensions, and role extensions.  ``satisfies`` evaluates
arbitrary concept expressions over it by direct recursion — independent
of the tableau — so a model extracted from a completion graph can be
*verified* rather than trusted.  The property tests in ``tests/dl`` lean
on this: for satisfiable inputs, the tableau's witness model must check
out against this evaluator.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from .syntax import (
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    DLSyntaxError,
    Exists,
    Forall,
    Not,
    Or,
    _Bottom,
    _Top,
)
from .tbox import TBox


class Interpretation:
    """A finite DL interpretation ``(Δ, ·ᴵ)``.

    ``concepts`` maps atomic names to subsets of the domain; ``roles``
    maps role names to sets of ordered pairs.  Unmentioned names denote
    the empty set — the usual convention for finite witnesses.
    """

    def __init__(
        self,
        domain: Iterable[Hashable],
        concepts: Mapping[str, Iterable[Hashable]] | None = None,
        roles: Mapping[str, Iterable[tuple[Hashable, Hashable]]] | None = None,
    ) -> None:
        self.domain = frozenset(domain)
        if not self.domain:
            raise DLSyntaxError("a DL interpretation needs a non-empty domain")
        self.concepts = {
            name: frozenset(ext) for name, ext in (concepts or {}).items()
        }
        self.roles = {
            name: frozenset(tuple(p) for p in pairs)
            for name, pairs in (roles or {}).items()
        }
        for name, ext in self.concepts.items():
            if not ext <= self.domain:
                raise DLSyntaxError(f"extension of {name!r} leaves the domain")
        for name, pairs in self.roles.items():
            for a, b in pairs:
                if a not in self.domain or b not in self.domain:
                    raise DLSyntaxError(f"role {name!r} relates non-domain elements")

    # ------------------------------------------------------------------ #

    def successors(self, element: Hashable, role: str) -> frozenset:
        return frozenset(b for a, b in self.roles.get(role, ()) if a == element)

    def satisfies(self, element: Hashable, concept: Concept) -> bool:
        """``element ∈ conceptᴵ``, by structural recursion."""
        if element not in self.domain:
            raise DLSyntaxError(f"{element!r} is not a domain element")
        if isinstance(concept, Atomic):
            return element in self.concepts.get(concept.name, frozenset())
        if isinstance(concept, _Top):
            return True
        if isinstance(concept, _Bottom):
            return False
        if isinstance(concept, Not):
            return not self.satisfies(element, concept.operand)
        if isinstance(concept, And):
            return all(self.satisfies(element, op) for op in concept.operands)
        if isinstance(concept, Or):
            return any(self.satisfies(element, op) for op in concept.operands)
        if isinstance(concept, Exists):
            return any(
                self.satisfies(s, concept.filler)
                for s in self.successors(element, concept.role.name)
            )
        if isinstance(concept, Forall):
            return all(
                self.satisfies(s, concept.filler)
                for s in self.successors(element, concept.role.name)
            )
        if isinstance(concept, AtLeast):
            hits = sum(
                1
                for s in self.successors(element, concept.role.name)
                if self.satisfies(s, concept.filler)
            )
            return hits >= concept.n
        if isinstance(concept, AtMost):
            hits = sum(
                1
                for s in self.successors(element, concept.role.name)
                if self.satisfies(s, concept.filler)
            )
            return hits <= concept.n
        raise DLSyntaxError(f"unknown concept node {concept!r}")

    def extension(self, concept: Concept) -> frozenset:
        """``conceptᴵ`` as a set."""
        return frozenset(e for e in self.domain if self.satisfies(e, concept))

    def satisfies_tbox(self, tbox: TBox) -> bool:
        """True iff every GCI's lhs-extension is within its rhs-extension."""
        return all(
            self.extension(gci.lhs) <= self.extension(gci.rhs)
            for gci in tbox.gcis()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Interpretation(|Δ|={len(self.domain)}, "
            f"concepts={sorted(self.concepts)}, roles={sorted(self.roles)})"
        )
