"""Description-logic concept syntax (ALCQ⁻: ALCN plus qualified at-least).

The paper's structures (4) and (8) are description-logic ontonomies:

    car ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.small
    roadvehicle ⊑ ∃₄has.wheels

This module provides the concept constructors needed to write them down
exactly: atomic concepts, ⊤/⊥, ¬, ⊓, ⊔, ∃r.C, ∀r.C, and number
restrictions ≥n r.C / ≤n r.C (the paper's ``∃₄has.wheels`` is ≥4 has.wheel).
Concepts are immutable and hashable; ⊓/⊔ are flattened n-ary so that
structurally equal concepts compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


class DLSyntaxError(Exception):
    """Raised on malformed concepts."""


#: instance caches for atomic names — the tableau, saturation, and parser
#: construct the same handful of names millions of times, and identity
#: short-circuits the dict/set probes those hot paths live in.  Bounded so
#: an adversarial vocabulary stream cannot grow them without limit; past
#: the cap construction silently stops interning (still correct, equality
#: stays value-based).
_INTERN_CAP = 65536
_ROLE_CACHE: dict[str, "Role"] = {}
_ATOMIC_CACHE: dict[str, "Atomic"] = {}


@dataclass(frozen=True)
class Role:
    """An atomic role (binary relation) name.

    Construction is interned: ``Role("has") is Role("has")`` (up to the
    cache cap), so repeated construction allocates nothing new.
    """

    name: str

    def __new__(cls, name: str = "") -> "Role":
        if cls is Role:
            cached = _ROLE_CACHE.get(name)
            if cached is not None:
                return cached
        self = super().__new__(cls)
        if cls is Role and name and len(_ROLE_CACHE) < _INTERN_CAP:
            _ROLE_CACHE[name] = self
        return self

    def __post_init__(self) -> None:
        if not self.name:
            raise DLSyntaxError("role name must be non-empty")

    def __str__(self) -> str:
        return self.name


class Concept:
    """Base class for concept expressions (immutable, hashable)."""

    def __and__(self, other: "Concept") -> "Concept":
        return And.of([self, other])

    def __or__(self, other: "Concept") -> "Concept":
        return Or.of([self, other])

    def __invert__(self) -> "Concept":
        return Not(self)

    def atomic_names(self) -> frozenset[str]:
        """All atomic concept names occurring in this expression."""
        raise NotImplementedError

    def role_names(self) -> frozenset[str]:
        """All role names occurring in this expression."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of constructor nodes (a measure for the regress experiment)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Atomic(Concept):
    """An atomic (named) concept.

    Construction is interned like :class:`Role`: ``Atomic("car") is
    Atomic("car")`` up to the cache cap.
    """

    name: str

    def __new__(cls, name: str = "") -> "Atomic":
        if cls is Atomic:
            cached = _ATOMIC_CACHE.get(name)
            if cached is not None:
                return cached
        self = super().__new__(cls)
        if cls is Atomic and name and len(_ATOMIC_CACHE) < _INTERN_CAP:
            _ATOMIC_CACHE[name] = self
        return self

    def __post_init__(self) -> None:
        if not self.name:
            raise DLSyntaxError("concept name must be non-empty")

    def atomic_names(self) -> frozenset[str]:
        return frozenset({self.name})

    def role_names(self) -> frozenset[str]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class _Top(Concept):
    def atomic_names(self) -> frozenset[str]:
        return frozenset()

    def role_names(self) -> frozenset[str]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class _Bottom(Concept):
    def atomic_names(self) -> frozenset[str]:
        return frozenset()

    def role_names(self) -> frozenset[str]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "⊥"


TOP = _Top()
BOTTOM = _Bottom()


@dataclass(frozen=True)
class Not(Concept):
    operand: Concept

    def atomic_names(self) -> frozenset[str]:
        return self.operand.atomic_names()

    def role_names(self) -> frozenset[str]:
        return self.operand.role_names()

    def size(self) -> int:
        return 1 + self.operand.size()

    def __str__(self) -> str:
        return f"¬{_wrap(self.operand)}"


@dataclass(frozen=True)
class And(Concept):
    """An n-ary conjunction; use :meth:`of` to build (flattens and dedupes)."""

    operands: tuple[Concept, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise DLSyntaxError("conjunction needs at least two operands; use And.of")

    @staticmethod
    def of(operands: Iterable[Concept]) -> Concept:
        flat: list[Concept] = []
        for op in operands:
            if isinstance(op, And):
                for inner in op.operands:
                    if inner not in flat:
                        flat.append(inner)
            elif op is TOP:
                continue
            elif op not in flat:
                flat.append(op)
        if not flat:
            return TOP
        if len(flat) == 1:
            return flat[0]
        return And(tuple(flat))

    def atomic_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for op in self.operands:
            out |= op.atomic_names()
        return out

    def role_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for op in self.operands:
            out |= op.role_names()
        return out

    def size(self) -> int:
        return 1 + sum(op.size() for op in self.operands)

    def __str__(self) -> str:
        return " ⊓ ".join(_wrap(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Concept):
    """An n-ary disjunction; use :meth:`of` to build (flattens and dedupes)."""

    operands: tuple[Concept, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise DLSyntaxError("disjunction needs at least two operands; use Or.of")

    @staticmethod
    def of(operands: Iterable[Concept]) -> Concept:
        flat: list[Concept] = []
        for op in operands:
            if isinstance(op, Or):
                for inner in op.operands:
                    if inner not in flat:
                        flat.append(inner)
            elif op is BOTTOM:
                continue
            elif op not in flat:
                flat.append(op)
        if not flat:
            return BOTTOM
        if len(flat) == 1:
            return flat[0]
        return Or(tuple(flat))

    def atomic_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for op in self.operands:
            out |= op.atomic_names()
        return out

    def role_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for op in self.operands:
            out |= op.role_names()
        return out

    def size(self) -> int:
        return 1 + sum(op.size() for op in self.operands)

    def __str__(self) -> str:
        return " ⊔ ".join(_wrap(op) for op in self.operands)


@dataclass(frozen=True)
class Exists(Concept):
    """Existential restriction ``∃role.filler``."""

    role: Role
    filler: Concept

    def atomic_names(self) -> frozenset[str]:
        return self.filler.atomic_names()

    def role_names(self) -> frozenset[str]:
        return frozenset({self.role.name}) | self.filler.role_names()

    def size(self) -> int:
        return 1 + self.filler.size()

    def __str__(self) -> str:
        return f"∃{self.role}.{_wrap(self.filler)}"


@dataclass(frozen=True)
class Forall(Concept):
    """Value restriction ``∀role.filler``."""

    role: Role
    filler: Concept

    def atomic_names(self) -> frozenset[str]:
        return self.filler.atomic_names()

    def role_names(self) -> frozenset[str]:
        return frozenset({self.role.name}) | self.filler.role_names()

    def size(self) -> int:
        return 1 + self.filler.size()

    def __str__(self) -> str:
        return f"∀{self.role}.{_wrap(self.filler)}"


@dataclass(frozen=True)
class AtLeast(Concept):
    """Qualified at-least restriction ``≥n role.filler``.

    ``≥1 r.C`` is ∃r.C; the paper's ``∃₄has.wheels`` is ``AtLeast(4, has, wheel)``.
    """

    n: int
    role: Role
    filler: Concept

    def __post_init__(self) -> None:
        if self.n < 0:
            raise DLSyntaxError("at-least bound must be non-negative")

    def atomic_names(self) -> frozenset[str]:
        return self.filler.atomic_names()

    def role_names(self) -> frozenset[str]:
        return frozenset({self.role.name}) | self.filler.role_names()

    def size(self) -> int:
        return 1 + self.filler.size()

    def __str__(self) -> str:
        return f"≥{self.n} {self.role}.{_wrap(self.filler)}"


@dataclass(frozen=True)
class AtMost(Concept):
    """At-most restriction ``≤n role.filler`` (reasoning supports filler = ⊤)."""

    n: int
    role: Role
    filler: Concept

    def __post_init__(self) -> None:
        if self.n < 0:
            raise DLSyntaxError("at-most bound must be non-negative")

    def atomic_names(self) -> frozenset[str]:
        return self.filler.atomic_names()

    def role_names(self) -> frozenset[str]:
        return frozenset({self.role.name}) | self.filler.role_names()

    def size(self) -> int:
        return 1 + self.filler.size()

    def __str__(self) -> str:
        return f"≤{self.n} {self.role}.{_wrap(self.filler)}"


def _wrap(c: Concept) -> str:
    if isinstance(c, (Atomic, _Top, _Bottom, Not, Exists, Forall, AtLeast, AtMost)):
        return str(c)
    return f"({c})"


def some(role: str, filler: Concept) -> Exists:
    """Shorthand: ``some("size", small)`` is ∃size.small."""
    return Exists(Role(role), filler)


def only(role: str, filler: Concept) -> Forall:
    """Shorthand: ``only("has", wheel)`` is ∀has.wheel."""
    return Forall(Role(role), filler)


def at_least(n: int, role: str, filler: Concept = TOP) -> AtLeast:
    return AtLeast(n, Role(role), filler)


def at_most(n: int, role: str, filler: Concept = TOP) -> AtMost:
    return AtMost(n, Role(role), filler)
