"""High-level reasoning services on top of the tableau.

Subsumption, satisfiability, equivalence, disjointness, ABox consistency,
instance checking and retrieval — the standard DL service suite, reduced
to tableau satisfiability in the usual way (``C ⊑ D`` iff ``C ⊓ ¬D`` is
unsatisfiable w.r.t. the TBox).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..obs import recorder as _obs
from ..robust import Budget, Verdict
from .abox import ABox, ConceptAssertion
from .nnf import negate
from .syntax import And, Atomic, Concept, TOP
from .tableau import ReasonerError, Tableau
from .tbox import TBox

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .hierarchy import ConceptHierarchy
    from .saturation import Saturation


class Reasoner:
    """Reasoning services for a knowledge base ``(TBox, ABox)``.

    >>> from repro.dl.syntax import Atomic
    >>> from repro.dl.tbox import TBox, Subsumption
    >>> car, mv = Atomic("car"), Atomic("motorvehicle")
    >>> r = Reasoner(TBox([Subsumption(car, mv)]))
    >>> r.subsumes(mv, car)
    True
    """

    def __init__(self, tbox: TBox | None = None, *, max_nodes: int = 2000) -> None:
        # `tbox or TBox()` would discard a caller's *empty* TBox (falsy),
        # breaking the revision guard for TBoxes populated after the fact
        self.tbox = tbox if tbox is not None else TBox()
        self._max_nodes = max_nodes
        self._tableau = Tableau(self.tbox, max_nodes=max_nodes)
        # caches are keyed by the tableau's interned concept ids: int keys
        # hash/compare in nanoseconds where frozen dataclass trees don't,
        # and the id space resets with the tableau on invalidation
        self._sat_cache: dict[int, bool] = {}
        self._subs_cache: dict[tuple[int, int], bool] = {}
        self._hierarchy_cache: dict[tuple[str, bool], "ConceptHierarchy"] = {}
        self._saturation: Optional["Saturation"] = None
        self._tbox_revision = self.tbox.revision

    # ------------------------------------------------------------------ #
    # cache lifecycle
    # ------------------------------------------------------------------ #

    def invalidate(self) -> None:
        """Drop all cached answers and rebuild the tableau.

        Required after mutating the TBox in place; :meth:`_check_revision`
        calls it automatically when :attr:`TBox.revision` has moved, so
        mutations through :meth:`TBox.add` are picked up without manual
        intervention.  Mutations the revision counter cannot see (e.g.
        editing an axiom object in place) still need an explicit call.
        """
        _obs.incr("reasoner.invalidations")
        self._sat_cache.clear()
        self._subs_cache.clear()
        self._hierarchy_cache.clear()
        self._saturation = None
        self._tableau = Tableau(self.tbox, max_nodes=self._max_nodes)
        self._tbox_revision = self.tbox.revision

    def _check_revision(self) -> None:
        if self.tbox.revision != self._tbox_revision:
            self.invalidate()

    def release(self) -> None:
        """Drop every cache without rebuilding the tableau.

        The terminal counterpart of :meth:`invalidate`: a serving
        snapshot being retired (see :mod:`repro.serve.snapshot`) calls
        this once its last in-flight request finishes, so the sat /
        subsumption / hierarchy caches of a superseded TBox version do
        not stay memory-resident for the life of the process.  The
        reasoner remains usable afterwards — a later query simply starts
        from cold caches.
        """
        _obs.incr("reasoner.releases")
        self._sat_cache.clear()
        self._subs_cache.clear()
        self._hierarchy_cache.clear()
        self._saturation = None

    def cache_stats(self) -> dict[str, int]:
        """Entry counts of the memory-resident caches (for tests/metrics)."""
        return {
            "sat": len(self._sat_cache),
            "subs": len(self._subs_cache),
            "hierarchy": len(self._hierarchy_cache),
        }

    # ------------------------------------------------------------------ #
    # concept-level services
    # ------------------------------------------------------------------ #

    def is_satisfiable(self, concept: Concept) -> bool:
        """True iff ``concept`` has a model consistent with the TBox."""
        self._check_revision()
        key = self._tableau.cid(concept)
        if key not in self._sat_cache:
            _obs.incr("reasoner.sat_cache_misses")
            self._sat_cache[key] = self._tableau.is_satisfiable(concept)
        else:
            _obs.incr("reasoner.sat_cache_hits")
        return self._sat_cache[key]

    def extract_model(self, concept: Concept):
        """A finite witness interpretation for ``concept``, or ``None``.

        The returned :class:`repro.dl.interpretation.Interpretation` can
        be verified independently of the tableau — and the test suite
        does exactly that.  Note the witness is a model of the *concept*;
        blocked (cyclic) completion graphs are unraveled lazily, so for
        TBoxes with cycles the witness may not satisfy every GCI at
        every surrogate node.
        """
        from .tableau import extract_interpretation

        self._check_revision()
        state = self._tableau.find_model(concept)
        if state is None:
            return None
        return extract_interpretation(state)

    def known_satisfiability(self, concept: Concept) -> Optional[bool]:
        """The cached satisfiability of ``concept``, or ``None`` if unknown.

        Never runs the tableau; useful for callers (classification,
        materialization) that can exploit an answer when one is already
        in the cache but should not pay for one otherwise.
        """
        self._check_revision()
        key = self._tableau.concepts.get(concept)  # peek: no table growth
        if key is None:
            return None
        return self._sat_cache.get(key)

    def is_satisfiable_governed(
        self, concept: Concept, budget: Optional[Budget] = None
    ) -> Verdict:
        """Satisfiability under a budget: PROVED / DISPROVED / UNKNOWN.

        Definite verdicts agree with :meth:`is_satisfiable` bit for bit
        (a completed tableau run is the same run either way) and are
        cached in the shared sat cache; UNKNOWN verdicts are *never*
        cached, so a later attempt with a bigger budget starts clean.
        """
        self._check_revision()
        key = self._tableau.cid(concept)
        cached = self._sat_cache.get(key)
        if cached is not None:
            _obs.incr("reasoner.sat_cache_hits")
            return Verdict.from_bool(cached)
        _obs.incr("reasoner.sat_cache_misses")
        budget = budget if budget is not None else Budget.unlimited()
        verdict = self._tableau.solve_governed(concept, budget)
        if verdict.is_definite:
            self._sat_cache[key] = verdict.as_bool()
        else:
            _obs.incr("robust.unknown_verdicts")
        return verdict

    def subsumes(self, general: Concept, specific: Concept) -> bool:
        """True iff ``specific ⊑ general`` w.r.t. the TBox."""
        self._check_revision()
        key = (self._tableau.cid(general), self._tableau.cid(specific))
        if key not in self._subs_cache:
            _obs.incr("reasoner.subs_cache_misses")
            test = And.of([specific, negate(general)])
            test_satisfiable = self._tableau.is_satisfiable(test)
            self._subs_cache[key] = not test_satisfiable
            if test_satisfiable and key[1] not in self._sat_cache:
                # the model of ``specific ⊓ ¬general`` witnesses that
                # ``specific`` itself is satisfiable: cross-seed the sat
                # cache so a later is_satisfiable(specific) is a hit
                self._sat_cache[key[1]] = True
                _obs.incr("reasoner.sat_cross_seeds")
        else:
            _obs.incr("reasoner.subs_cache_hits")
        return self._subs_cache[key]

    def subsumes_governed(
        self, general: Concept, specific: Concept, budget: Optional[Budget] = None
    ) -> Verdict:
        """``specific ⊑ general`` under a budget (PROVED = subsumption holds).

        Same reduction as :meth:`subsumes`; shares its caches, caches
        only definite verdicts, and cross-seeds the sat cache from a
        disproved subsumption exactly like the boolean service.
        """
        self._check_revision()
        key = (self._tableau.cid(general), self._tableau.cid(specific))
        cached = self._subs_cache.get(key)
        if cached is not None:
            _obs.incr("reasoner.subs_cache_hits")
            return Verdict.from_bool(cached)
        _obs.incr("reasoner.subs_cache_misses")
        budget = budget if budget is not None else Budget.unlimited()
        test = And.of([specific, negate(general)])
        test_verdict = self._tableau.solve_governed(test, budget)
        if test_verdict.is_unknown:
            _obs.incr("robust.unknown_verdicts")
            return test_verdict
        test_satisfiable = test_verdict.as_bool()
        self._subs_cache[key] = not test_satisfiable
        if test_satisfiable and key[1] not in self._sat_cache:
            self._sat_cache[key[1]] = True
            _obs.incr("reasoner.sat_cross_seeds")
        return test_verdict.negated()

    def equivalent(self, c: Concept, d: Concept) -> bool:
        """True iff ``c ≡ d`` w.r.t. the TBox."""
        return self.subsumes(c, d) and self.subsumes(d, c)

    def disjoint(self, c: Concept, d: Concept) -> bool:
        """True iff ``c ⊓ d`` is unsatisfiable w.r.t. the TBox."""
        return not self.is_satisfiable(And.of([c, d]))

    def is_coherent(self) -> bool:
        """True iff every named concept of the TBox is satisfiable."""
        return not self.unsatisfiable_names()

    def unsatisfiable_names(self) -> list[str]:
        """Named concepts that the TBox forces to be empty."""
        return [
            name
            for name in sorted(self.tbox.atomic_names())
            if not self.is_satisfiable(Atomic(name))
        ]

    def saturation(self) -> "Saturation":
        """The Horn/EL saturation of the TBox, built once per revision.

        Classification uses it as a subsumption oracle (and as the whole
        algorithm when :attr:`Saturation.complete`); incremental
        reclassification reuses the same instance across its seeded run.
        """
        from .saturation import Saturation

        self._check_revision()
        if self._saturation is None:
            self._saturation = Saturation(self.tbox)
        return self._saturation

    def classify(
        self,
        *,
        algorithm: str = "auto",
        use_told_subsumers: bool = True,
        budget: Optional[Budget] = None,
    ) -> "ConceptHierarchy":
        """The classified concept hierarchy of the TBox, cached.

        The default ``algorithm="auto"`` resolves to consequence-based
        saturation when the TBox is fully Horn/EL and the call is not
        budget-governed, and to enhanced traversal otherwise — the
        resolution happens here so explicit and auto callers share cache
        entries.

        The hierarchy is computed once per (algorithm, told-seeding)
        configuration and reused until the TBox revision moves, at which
        point :meth:`invalidate` drops it along with the sat/subs
        caches.  Consumers that repeatedly need hierarchy answers
        (e.g. :func:`repro.store.materialize`) should go through this
        service rather than reclassifying.

        With a ``budget``, classification degrades gracefully: unknown
        edges land in :attr:`ConceptHierarchy.incomplete` instead of
        raising.  Only *complete* hierarchies enter the cache (a cached
        complete hierarchy is returned even to budgeted calls — it is a
        strictly better answer than a partial one).
        """
        from .hierarchy import ConceptHierarchy

        self._check_revision()
        requested_auto = algorithm == "auto"
        if requested_auto:
            algorithm = (
                "saturation"
                if budget is None and self.saturation().complete
                else "enhanced"
            )
        key = (algorithm, use_told_subsumers)
        hierarchy = self._hierarchy_cache.get(key)
        if hierarchy is None and requested_auto and budget is not None:
            # a budgeted auto call resolves to "enhanced", but a cached
            # complete saturation hierarchy is a strictly better answer
            hierarchy = self._hierarchy_cache.get(
                ("saturation", use_told_subsumers)
            )
        if hierarchy is None:
            _obs.incr("reasoner.classify_cache_misses")
            hierarchy = ConceptHierarchy(
                self.tbox,
                reasoner=self,
                algorithm=algorithm,
                use_told_subsumers=use_told_subsumers,
                budget=budget,
            )
            if not hierarchy.incomplete:
                self._hierarchy_cache[key] = hierarchy
        else:
            _obs.incr("reasoner.classify_cache_hits")
        return hierarchy

    def adopt_caches(self, other: "Reasoner", *, invalid: frozenset[str]) -> int:
        """Copy still-valid sat/subsumption entries from ``other``.

        An entry is carried over iff no atomic name of its concept(s)
        touches ``invalid`` — the caller's set of names whose reachable
        definitions differ between the two reasoners' TBoxes.  Only
        sound for TBoxes that agree outside ``invalid``: a concept whose
        names all lie outside the change-impact set unfolds to the same
        definitional web in both, so the old tableau answer stands.
        Existing local entries win over adopted ones.  Returns the number
        of entries carried.
        """
        self._check_revision()
        carried = 0
        # ids are per-tableau: translate through the other reasoner's
        # concept table and re-intern locally.  list() snapshots are
        # atomic under the GIL; `other` may still be serving requests
        # while its successor adopts from it.
        other_concepts = other._tableau.concepts
        for old_id, value in list(other._sat_cache.items()):
            concept = other_concepts[old_id]
            if concept.atomic_names() & invalid:
                continue
            key = self._tableau.cid(concept)
            if key in self._sat_cache:
                continue
            self._sat_cache[key] = value
            carried += 1
        for (general_id, specific_id), value in list(other._subs_cache.items()):
            general = other_concepts[general_id]
            specific = other_concepts[specific_id]
            if (general.atomic_names() | specific.atomic_names()) & invalid:
                continue
            key = (self._tableau.cid(general), self._tableau.cid(specific))
            if key in self._subs_cache:
                continue
            self._subs_cache[key] = value
            carried += 1
        return carried

    def reclassify(
        self,
        old: "ConceptHierarchy",
        *,
        delta=None,
        budget: Optional[Budget] = None,
        max_affected_fraction: Optional[float] = None,
    ):
        """Classify this reasoner's TBox starting from ``old``'s answer.

        Delegates to :func:`repro.dl.incremental.reclassify` with this
        reasoner receiving the carried-over caches, and seeds the
        hierarchy cache with the result when it is complete — a follow-up
        :meth:`classify` call is then a cache hit.  Returns the
        :class:`repro.dl.incremental.ReclassifyResult`.
        """
        from .incremental import DEFAULT_MAX_AFFECTED_FRACTION, reclassify

        self._check_revision()
        if max_affected_fraction is None:
            max_affected_fraction = DEFAULT_MAX_AFFECTED_FRACTION
        result = reclassify(
            old,
            self.tbox,
            delta=delta,
            reasoner=self,
            budget=budget,
            max_affected_fraction=max_affected_fraction,
        )
        if not result.hierarchy.incomplete:
            self._hierarchy_cache.setdefault(("enhanced", True), result.hierarchy)
            if self.saturation().complete:
                # an unbudgeted classify() resolves "auto" to saturation
                # on this TBox: seed that key too so it hits the cache
                self._hierarchy_cache.setdefault(
                    ("saturation", True), result.hierarchy
                )
        return result

    # ------------------------------------------------------------------ #
    # ABox services
    # ------------------------------------------------------------------ #

    def is_consistent(self, abox: ABox) -> bool:
        """True iff the knowledge base ``(TBox, abox)`` is consistent."""
        self._check_revision()
        return self._tableau.is_consistent(abox)

    def is_instance(self, abox: ABox, individual: str, concept: Concept) -> bool:
        """True iff the KB entails ``individual : concept``.

        Standard reduction: entailed iff adding ``individual : ¬concept``
        makes the ABox inconsistent.
        """
        if individual not in abox.individuals():
            raise ReasonerError(f"unknown individual {individual!r}")
        probe = abox.extended([ConceptAssertion(individual, negate(concept))])
        return not self.is_consistent(probe)

    def is_consistent_governed(
        self, abox: ABox, budget: Optional[Budget] = None
    ) -> Verdict:
        """ABox consistency under a budget (PROVED = consistent)."""
        self._check_revision()
        budget = budget if budget is not None else Budget.unlimited()
        verdict = self._tableau.consistent_governed(abox, budget)
        if verdict.is_unknown:
            _obs.incr("robust.unknown_verdicts")
        return verdict

    def is_instance_governed(
        self,
        abox: ABox,
        individual: str,
        concept: Concept,
        budget: Optional[Budget] = None,
    ) -> Verdict:
        """Instance checking under a budget (PROVED = entailed)."""
        if individual not in abox.individuals():
            raise ReasonerError(f"unknown individual {individual!r}")
        probe = abox.extended([ConceptAssertion(individual, negate(concept))])
        # probe consistent ⇒ membership NOT entailed, hence the negation
        return self.is_consistent_governed(probe, budget).negated()

    def retrieve(self, abox: ABox, concept: Concept) -> list[str]:
        """All named individuals the KB entails to be instances of ``concept``."""
        return [
            individual
            for individual in sorted(abox.individuals())
            if self.is_instance(abox, individual, concept)
        ]

    def retrieve_indexed(
        self, backend, concept: Concept, *, limit: Optional[int] = None
    ) -> list[str]:
        """Retrieval pushed down to a materialized instance backend.

        ``backend`` is a :class:`repro.instdb.InstanceBackend` that has
        been materialized against this reasoner's TBox: an atomic query
        answers straight from its by-concept index (no tableau, no scan
        over individuals — the backend pages with ``limit``).  A complex
        concept falls back to tableau :meth:`retrieve` over the told
        export, which is only viable at small scale — counted separately
        so the fallback shows up in metrics before it shows up in p99.
        """
        from .syntax import Atomic

        if isinstance(concept, Atomic):
            _obs.incr("reasoner.indexed_retrievals")
            return backend.instances(concept.name, limit=limit)
        _obs.incr("reasoner.retrieval_fallbacks")
        members = self.retrieve(backend.to_abox(), concept)
        return members if limit is None else members[:limit]
