"""Diffing of TBoxes, syntactic and semantic.

When an ontonomy is revised — the paper's repair (9)–(11), or any
downstream edit — two deltas matter at two different price points.
``axiom_diff`` is the cheap syntactic one: which axioms were added or
removed, which names gained or lost a definition, whether any general
(non-definitorial) axiom moved.  It costs one set comparison and is the
input that drives :mod:`repro.dl.incremental` reclassification.
``tbox_diff`` is the expensive semantic one: it classifies, for the
shared atomic names, every subsumption pair as kept, gained, or lost,
and reports vocabulary changes separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from .reasoner import Reasoner
from .syntax import Atomic
from .tbox import Axiom, Equivalence, TBox


@dataclass(frozen=True)
class AxiomDelta:
    """The syntactic delta between two TBoxes, at axiom granularity.

    ``changed_names`` are the atomic names whose *own definition* moved:
    the left-hand sides of added/removed definitorial axioms (both sides
    for an atomic-atomic equivalence).  ``general_changed`` flags any
    added/removed axiom that is not definitorial — a non-atomic
    left-hand side, or an equivalence whose reverse half is a general
    GCI — after which no locality argument holds and incremental
    reclassification must fall back to a full run.
    """

    added: frozenset[Axiom]
    removed: frozenset[Axiom]
    names_added: frozenset[str]
    names_removed: frozenset[str]
    changed_names: frozenset[str]
    general_changed: bool

    @property
    def unchanged(self) -> bool:
        return not self.added and not self.removed

    def summary(self) -> str:
        parts = []
        for label, axioms in (("+", self.added), ("-", self.removed)):
            for axiom in sorted(axioms, key=str):
                parts.append(f"{label} {axiom}")
        return "; ".join(parts) if parts else "no syntactic change"


def axiom_diff(before: TBox, after: TBox) -> AxiomDelta:
    """The syntactic axiom-level delta from ``before`` to ``after``.

    A TBox diffed against itself (or any axiom-identical copy) yields an
    empty delta.  Duplicated axioms are compared as a set: adding a
    second copy of an existing axiom is no change.
    """
    old_axioms = frozenset(before.axioms)
    new_axioms = frozenset(after.axioms)
    added = new_axioms - old_axioms
    removed = old_axioms - new_axioms

    changed: set[str] = set()
    general_changed = False
    for axiom in (*added, *removed):
        if not isinstance(axiom.lhs, Atomic):
            general_changed = True
            continue
        changed.add(axiom.lhs.name)
        if isinstance(axiom, Equivalence):
            if isinstance(axiom.rhs, Atomic):
                # A ≡ B constrains both names symmetrically
                changed.add(axiom.rhs.name)
            else:
                # the reverse half (rhs ⊑ A) is a general GCI
                general_changed = True

    names_before = before.atomic_names()
    names_after = after.atomic_names()
    return AxiomDelta(
        added=added,
        removed=removed,
        names_added=frozenset(names_after - names_before),
        names_removed=frozenset(names_before - names_after),
        changed_names=frozenset(changed),
        general_changed=general_changed,
    )


@dataclass(frozen=True)
class TBoxDiff:
    """The semantic delta between two TBoxes."""

    names_added: frozenset[str]
    names_removed: frozenset[str]
    subsumptions_gained: frozenset[tuple[str, str]]  # (sub, sup) new in B
    subsumptions_lost: frozenset[tuple[str, str]]    # (sub, sup) only in A
    subsumptions_kept: frozenset[tuple[str, str]]

    @property
    def is_conservative(self) -> bool:
        """True iff nothing entailed before was lost (names may be added)."""
        return not self.subsumptions_lost and not self.names_removed

    @property
    def unchanged(self) -> bool:
        return (
            not self.names_added
            and not self.names_removed
            and not self.subsumptions_gained
            and not self.subsumptions_lost
        )

    def summary(self) -> str:
        parts = []
        if self.names_added:
            parts.append(f"+names: {', '.join(sorted(self.names_added))}")
        if self.names_removed:
            parts.append(f"-names: {', '.join(sorted(self.names_removed))}")
        for label, pairs in (
            ("+⊑", self.subsumptions_gained),
            ("-⊑", self.subsumptions_lost),
        ):
            for sub, sup in sorted(pairs):
                parts.append(f"{label} {sub} ⊑ {sup}")
        return "; ".join(parts) if parts else "no semantic change"


def tbox_diff(before: TBox, after: TBox) -> TBoxDiff:
    """Compare the entailed atomic subsumptions of two TBoxes.

    Subsumption pairs are compared over the *shared* names; vocabulary
    growth/shrinkage is reported separately (a pair involving an added
    name is not a "gained entailment" — it had no truth value before).
    """
    names_before = before.atomic_names()
    names_after = after.atomic_names()
    shared = sorted(names_before & names_after)

    def entailed_pairs(tbox: TBox) -> frozenset[tuple[str, str]]:
        reasoner = Reasoner(tbox)
        return frozenset(
            (sub, sup)
            for sub in shared
            for sup in shared
            if sub != sup and reasoner.subsumes(Atomic(sup), Atomic(sub))
        )

    pairs_before = entailed_pairs(before)
    pairs_after = entailed_pairs(after)
    return TBoxDiff(
        names_added=frozenset(names_after - names_before),
        names_removed=frozenset(names_before - names_after),
        subsumptions_gained=frozenset(pairs_after - pairs_before),
        subsumptions_lost=frozenset(pairs_before - pairs_after),
        subsumptions_kept=frozenset(pairs_before & pairs_after),
    )
