"""Semantic diffing of TBoxes.

When an ontonomy is revised — the paper's repair (9)–(11), or any
downstream edit — the interesting question is not which axiom lines
changed but which *entailments* did.  ``tbox_diff`` classifies, for the
shared atomic names, every subsumption pair as kept, gained, or lost,
and reports vocabulary changes separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from .reasoner import Reasoner
from .syntax import Atomic
from .tbox import TBox


@dataclass(frozen=True)
class TBoxDiff:
    """The semantic delta between two TBoxes."""

    names_added: frozenset[str]
    names_removed: frozenset[str]
    subsumptions_gained: frozenset[tuple[str, str]]  # (sub, sup) new in B
    subsumptions_lost: frozenset[tuple[str, str]]    # (sub, sup) only in A
    subsumptions_kept: frozenset[tuple[str, str]]

    @property
    def is_conservative(self) -> bool:
        """True iff nothing entailed before was lost (names may be added)."""
        return not self.subsumptions_lost and not self.names_removed

    @property
    def unchanged(self) -> bool:
        return (
            not self.names_added
            and not self.names_removed
            and not self.subsumptions_gained
            and not self.subsumptions_lost
        )

    def summary(self) -> str:
        parts = []
        if self.names_added:
            parts.append(f"+names: {', '.join(sorted(self.names_added))}")
        if self.names_removed:
            parts.append(f"-names: {', '.join(sorted(self.names_removed))}")
        for label, pairs in (
            ("+⊑", self.subsumptions_gained),
            ("-⊑", self.subsumptions_lost),
        ):
            for sub, sup in sorted(pairs):
                parts.append(f"{label} {sub} ⊑ {sup}")
        return "; ".join(parts) if parts else "no semantic change"


def tbox_diff(before: TBox, after: TBox) -> TBoxDiff:
    """Compare the entailed atomic subsumptions of two TBoxes.

    Subsumption pairs are compared over the *shared* names; vocabulary
    growth/shrinkage is reported separately (a pair involving an added
    name is not a "gained entailment" — it had no truth value before).
    """
    names_before = before.atomic_names()
    names_after = after.atomic_names()
    shared = sorted(names_before & names_after)

    def entailed_pairs(tbox: TBox) -> frozenset[tuple[str, str]]:
        reasoner = Reasoner(tbox)
        return frozenset(
            (sub, sup)
            for sub in shared
            for sup in shared
            if sub != sup and reasoner.subsumes(Atomic(sup), Atomic(sub))
        )

    pairs_before = entailed_pairs(before)
    pairs_after = entailed_pairs(after)
    return TBoxDiff(
        names_added=frozenset(names_after - names_before),
        names_removed=frozenset(names_before - names_after),
        subsumptions_gained=frozenset(pairs_after - pairs_before),
        subsumptions_lost=frozenset(pairs_before - pairs_after),
        subsumptions_kept=frozenset(pairs_before & pairs_after),
    )
