"""Definition graphs: the paper's "structural meaning" made computable.

Section 3 of the paper proposes (in order to refute it) that the meaning
of a defined term is the *structure* of its definition: strip the names
from the ontonomy

    car ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.small
    ...

and what remains — the paper's diagram (7), dots and arrows — is the
concept CAR.  This module extracts that structure from a TBox as a
labeled digraph, and decides *meaning identity* as graph isomorphism up
to a bijective renaming of concept names **and role names** (the paper's
ρ₁…ρ₃ are anonymous but remain distinct from one another).

``meaning_isomorphic`` is the function that proves the paper's reductio:
the vehicle TBox (4) and the animal TBox (8) have isomorphic definition
graphs, hence structurally CAR = DOG.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Optional

from ..graphs import DiGraph, find_isomorphism, reachable_from
from .syntax import (
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    Exists,
    Forall,
    Not,
    _Bottom,
    _Top,
)
from .tbox import TBox

# edge-label constructors; role names stay identifiable for renaming
ISA = ("isa",)


def _edge_label(kind: str, role: str | None = None, n: int | None = None) -> tuple:
    if kind == "isa":
        return ISA
    if n is None:
        return (kind, role)
    return (kind, role, n)


class DefGraphError(Exception):
    """Raised when a TBox cannot be rendered as a definition graph."""


def definition_graph(tbox: TBox) -> DiGraph:
    """The definition graph of a definitorial TBox.

    Nodes are atomic names (node label = the name itself); each axiom
    ``A ⊑ C1 ⊓ ... ⊓ Cn`` with atomic ``A`` contributes, per conjunct:

    * atomic ``B``            → edge ``A → B`` labeled ``("isa",)``
    * ``∃r.B``                → edge ``A → B`` labeled ``("some", r)``
    * ``∀r.B``                → edge ``A → B`` labeled ``("all", r)``
    * ``≥n r.B``              → edge ``A → B`` labeled ``("atleast", r, n)``
    * ``≤n r.B``              → edge ``A → B`` labeled ``("atmost", r, n)``

    Complex fillers and negations are not part of the paper's structures
    and raise :class:`DefGraphError`.
    """
    graph = DiGraph()
    for name in sorted(tbox.atomic_names()):
        graph.add_node(name, label=name)
    for gci in tbox.gcis():
        if not isinstance(gci.lhs, Atomic):
            raise DefGraphError(
                f"definition graphs require atomic left-hand sides; got {gci.lhs}"
            )
        source = gci.lhs.name
        conjuncts = gci.rhs.operands if isinstance(gci.rhs, And) else (gci.rhs,)
        for conjunct in conjuncts:
            _add_conjunct_edge(graph, source, conjunct)
    return graph


def _add_conjunct_edge(graph: DiGraph, source: str, conjunct: Concept) -> None:
    if isinstance(conjunct, Atomic):
        graph.add_edge(source, conjunct.name, label=ISA)
        return
    if isinstance(conjunct, (Exists, Forall)):
        kind = "some" if isinstance(conjunct, Exists) else "all"
        filler = conjunct.filler
        if not isinstance(filler, Atomic):
            raise DefGraphError(
                f"definition graphs require atomic fillers; got ∃/∀{conjunct.role}.{filler}"
            )
        graph.add_edge(source, filler.name, label=_edge_label(kind, conjunct.role.name))
        return
    if isinstance(conjunct, (AtLeast, AtMost)):
        kind = "atleast" if isinstance(conjunct, AtLeast) else "atmost"
        filler = conjunct.filler
        if isinstance(filler, _Top):
            target = "⊤"
            graph.add_node(target, label=target)
        elif isinstance(filler, Atomic):
            target = filler.name
        else:
            raise DefGraphError(f"definition graphs require atomic fillers; got {filler}")
        graph.add_edge(
            source, target, label=_edge_label(kind, conjunct.role.name, conjunct.n)
        )
        return
    if isinstance(conjunct, (Not, _Bottom, _Top)):
        raise DefGraphError(f"definition graphs do not support conjunct {conjunct}")
    raise DefGraphError(f"unsupported conjunct {conjunct!r}")


def dependents_of(names: Iterable[str], *tboxes: TBox) -> frozenset[str]:
    """All names whose definitions transitively mention one of ``names``.

    Reverse reachability over the union of the TBoxes' name-dependency
    graphs (:meth:`repro.dl.tbox.TBox.dependency_graph`): the result
    contains every name from which some seed is reachable, including the
    seeds themselves when they occur in any of the TBoxes.  This is the
    change-impact set incremental reclassification re-inserts — a name
    outside it cannot see an edited definition through any chain of
    definitional references.
    """
    predecessors: dict[str, set[str]] = {}
    vocabulary: set[str] = set()
    for tbox in tboxes:
        graph = tbox.dependency_graph()
        for node in graph.nodes():
            vocabulary.add(node)
            for pred in graph.predecessors(node):
                predecessors.setdefault(node, set()).add(pred)
    seen = {name for name in names if name in vocabulary}
    stack = list(seen)
    while stack:
        node = stack.pop()
        for pred in predecessors.get(node, ()):
            if pred not in seen:
                seen.add(pred)
                stack.append(pred)
    return frozenset(seen)


def structural_meaning(tbox: TBox, name: str) -> DiGraph:
    """The paper's structure (6) for ``name``: the reachable definitional web.

    The subgraph of the definition graph induced by everything reachable
    from ``name`` — "the meaning of the word 'car' is given by ... its
    relation with the terms 'motorvehicle', 'roadvehicle', 'size' and
    'small', together with the relation of these terms with other terms
    and so on".
    """
    graph = definition_graph(tbox)
    if name not in graph:
        raise DefGraphError(f"{name!r} does not occur in the TBox")
    return graph.subgraph(reachable_from(graph, name))


def anonymized_meaning(tbox: TBox, name: str) -> DiGraph:
    """Structure (7): the meaning graph with all concept names erased."""
    return structural_meaning(tbox, name).anonymized()


def rename_roles(graph: DiGraph, role_map: dict[str, str]) -> DiGraph:
    """A copy of ``graph`` with role names in edge labels renamed."""
    out = DiGraph()
    for node in graph.nodes():
        out.add_node(node, graph.node_label(node))
    for u, v, label in graph.edges():
        if isinstance(label, tuple) and len(label) >= 2:
            role = label[1]
            new_label = (label[0], role_map.get(role, role), *label[2:])
        else:
            new_label = label
        out.add_edge(u, v, new_label)
    return out


def graph_roles(graph: DiGraph) -> frozenset[str]:
    """The role names occurring in a definition graph's edge labels."""
    return frozenset(
        label[1]
        for _, _, label in graph.edges()
        if isinstance(label, tuple) and len(label) >= 2
    )


def meaning_isomorphic(
    g1: DiGraph, g2: DiGraph
) -> Optional[tuple[dict[Hashable, Hashable], dict[str, str]]]:
    """Meaning identity: isomorphism up to renaming of concepts AND roles.

    Returns ``(node_map, role_map)`` exhibiting the identification, or
    ``None``.  Node labels are ignored (concepts are anonymous dots);
    edge labels must match up to a bijection of role names — constructor
    kind ("isa"/"some"/"atleast"/…) and cardinalities are preserved, so
    the paper's ρ₂(4) arrow stays a "4-arrow" under renaming.

    This realizes the paper's claim: ``meaning_isomorphic(CAR, DOG)``
    succeeds for the structures (4) and (8), which is the reductio.
    """
    roles1 = sorted(graph_roles(g1))
    roles2 = sorted(graph_roles(g2))
    if len(roles1) != len(roles2):
        return None
    for permutation in itertools.permutations(roles2):
        role_map = dict(zip(roles1, permutation))
        renamed = rename_roles(g1, role_map)
        node_map = find_isomorphism(renamed, g2, respect_node_labels=False)
        if node_map is not None:
            return (node_map, role_map)
    return None


def meanings_identical(tbox1: TBox, name1: str, tbox2: TBox, name2: str) -> bool:
    """Convenience wrapper: structural meaning identity of two defined terms."""
    g1 = structural_meaning(tbox1, name1)
    g2 = structural_meaning(tbox2, name2)
    result = meaning_isomorphic(g1, g2)
    if result is None:
        return False
    node_map, _ = result
    # the compared terms must correspond under the identification
    return node_map.get(name1) == name2
