"""Delta-driven incremental reclassification for evolving TBoxes.

The paper's thesis is that an "ontology" is an evolving, context-bound
formal artifact; this module makes re-deriving its hierarchy after an
edit cost what the *edit* costs, not what the whole artifact costs.
Given an old classified :class:`~repro.dl.hierarchy.ConceptHierarchy`,
the new TBox, and the syntactic :class:`~repro.dl.diff.AxiomDelta`
between them:

1. compute the **affected set** — names whose definitions transitively
   mention an edited name (reverse reachability over the definition
   graph, :func:`repro.dl.defgraph.dependents_of`), widened by the old
   hierarchy neighborhood of every moved concept and by any name the old
   budget left unresolved;
2. **seed** a new enhanced-traversal classification with the unaffected
   portion of the old hierarchy (its equivalence groups and cover edges
   copied verbatim, no tableau calls) and re-insert only the affected
   names;
3. **carry over** still-valid sat/subsumption cache entries from the old
   reasoner, so even the re-inserted names often answer from cache.

Locality is soundness-critical, so the function refuses to be clever
when it cannot be: if a general (non-definitorial) axiom changed, or an
unchanged general axiom's vocabulary reaches an edited name, or the
affected fraction exceeds ``max_affected_fraction`` (structural
upheaval), it falls back to a plain full classification and says so in
:attr:`ReclassifyResult.fallback_reason`.

Counters: ``incremental.affected``, ``incremental.reused_edges``,
``incremental.cache_carryover``, ``incremental.runs``,
``incremental.full_fallbacks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import recorder as _obs
from ..order import Poset
from ..robust import Budget
from .defgraph import dependents_of
from .diff import AxiomDelta, axiom_diff
from .hierarchy import (
    BOTTOM_NAME,
    TOP_NAME,
    ConceptHierarchy,
    HierarchySeed,
)
from .reasoner import Reasoner
from .tbox import TBox

#: above this fraction of affected names, re-seeding loses to a clean
#: full classification (the seed restriction itself is O(k²) poset work)
DEFAULT_MAX_AFFECTED_FRACTION = 0.5

_SYNTHETIC = frozenset({TOP_NAME, BOTTOM_NAME})


@dataclass(frozen=True)
class ReclassifyResult:
    """One reclassification: the hierarchy plus how it was obtained.

    ``mode`` is ``"incremental"`` when the seeded path ran and
    ``"full"`` when it fell back (``fallback_reason`` says why).
    ``affected`` is the set of names that were (re)inserted;
    ``reused_edges`` counts cover edges copied verbatim from the old
    hierarchy; ``cache_carryover`` counts sat/subsumption cache entries
    adopted from the old reasoner.
    """

    hierarchy: ConceptHierarchy
    mode: str
    affected: frozenset[str]
    reused_edges: int
    cache_carryover: int
    fallback_reason: Optional[str] = None

    @property
    def incremental(self) -> bool:
        return self.mode == "incremental"


def affected_names(
    old_tbox: TBox, new_tbox: TBox, delta: AxiomDelta
) -> tuple[frozenset[str], Optional[str]]:
    """The change-impact set of ``delta``, or a reason locality fails.

    Returns ``(affected, None)`` when the edit is local: ``affected``
    holds every name whose definition transitively mentions an edited
    name, plus the added vocabulary.  Returns ``(all names, reason)``
    when no locality argument holds — a general axiom changed, or an
    unchanged general axiom's vocabulary reaches an edited name (a
    general GCI fires at arbitrary nodes, so once its trigger or
    consequence concepts shift meaning the blast radius is global).
    """
    everything = frozenset(old_tbox.atomic_names() | new_tbox.atomic_names())
    if delta.general_changed:
        return everything, "a general (non-definitorial) axiom changed"
    if delta.unchanged:
        return frozenset(), None
    affected = set(
        dependents_of(delta.changed_names, old_tbox, new_tbox)
    )
    affected |= delta.names_added
    glue: set[str] = set()
    for tbox in (old_tbox, new_tbox):
        for gci in tbox.general_gcis():
            glue |= gci.lhs.atomic_names() | gci.rhs.atomic_names()
    if glue & affected:
        return everything, "an edited name is reachable from a general axiom"
    return frozenset(affected), None


def reclassify(
    old: ConceptHierarchy,
    new_tbox: TBox,
    *,
    delta: Optional[AxiomDelta] = None,
    reasoner: Optional[Reasoner] = None,
    budget: Optional[Budget] = None,
    max_affected_fraction: float = DEFAULT_MAX_AFFECTED_FRACTION,
) -> ReclassifyResult:
    """Reclassify ``new_tbox`` reusing the classified hierarchy ``old``.

    ``old`` must be a hierarchy of the predecessor TBox (``old.tbox``);
    ``delta`` defaults to :func:`repro.dl.diff.axiom_diff` of the two.
    ``reasoner`` (over ``new_tbox``) receives the still-valid cache
    entries of ``old.reasoner``; a fresh one is built when omitted.  A
    ``budget`` governs only the re-inserted names — seeded structure is
    copied, never re-proved — and unresolved questions land in
    :attr:`ConceptHierarchy.incomplete` exactly as in a full run.
    """
    old_tbox = old.tbox
    if reasoner is None:
        reasoner = Reasoner(new_tbox)
    elif reasoner.tbox is not new_tbox:
        raise ValueError("reclassify: reasoner is not over the new TBox")
    if delta is None:
        delta = axiom_diff(old_tbox, new_tbox)

    _obs.incr("incremental.runs")
    old_names = frozenset(old_tbox.atomic_names())
    new_names = frozenset(new_tbox.atomic_names())

    def full(reason: str) -> ReclassifyResult:
        _obs.incr("incremental.full_fallbacks")
        # route through the reasoner's classify() service rather than
        # building a ConceptHierarchy by hand: "auto" then resolves to
        # the consequence-based saturation fast path on Horn/EL TBoxes
        # (a base resync of a large TBox is milliseconds, not a full
        # n^2 tableau traversal) and a complete result lands in the
        # hierarchy cache for follow-up calls
        hierarchy = reasoner.classify(budget=budget)
        return ReclassifyResult(
            hierarchy=hierarchy,
            mode="full",
            affected=new_names,
            reused_edges=0,
            cache_carryover=0,
            fallback_reason=reason,
        )

    with _obs.trace("incremental.reclassify"):
        core, reason = affected_names(old_tbox, new_tbox, delta)
        if reason is not None:
            return full(reason)
        affected = set(core)

        # questions the old budget left unresolved were answered with the
        # conservative no-edge default: re-ask them under the new budget
        for specific, general in old.incomplete:
            affected |= {specific, general} & old_names

        # the old-hierarchy neighborhood of every moved concept: its
        # equivalents share its position, its cover neighbors' covers
        # may be rewired by the move
        for name in sorted(affected & old_names):
            affected |= old.equivalents(name) - _SYNTHETIC
            for neighbor in (old.parents(name) | old.children(name)) - _SYNTHETIC:
                affected |= old.equivalents(neighbor) - _SYNTHETIC

        universe = old_names | new_names
        fraction = len(affected) / len(universe) if universe else 0.0
        if fraction > max_affected_fraction:
            return full(
                f"affected fraction {fraction:.2f} exceeds "
                f"{max_affected_fraction:.2f} (structural upheaval)"
            )

        # ---- seed: the unaffected portion of the old hierarchy -------- #
        keep = (old_names & new_names) - affected
        old_unsat = old.equivalents(BOTTOM_NAME) - {BOTTOM_NAME}
        seed_unsat = frozenset(keep & old_unsat)
        seed_top = [n for n in sorted(old.top_equivalents()) if n in keep]
        seed_groups: dict[str, list[str]] = {}
        for group in old.groups():
            members = sorted(n for n in group if n in keep)
            if members:
                seed_groups[members[0]] = members

        reps = sorted(seed_groups)
        pairs: list[tuple[str, str]] = []
        for a in reps:
            for b in reps:
                if a != b and old.is_subsumed_by(a, b):
                    pairs.append((a, b))
        reused_edges = 0
        pairs += [(BOTTOM_NAME, rep) for rep in reps]
        pairs += [(rep, TOP_NAME) for rep in reps]
        pairs.append((BOTTOM_NAME, TOP_NAME))
        restricted = Poset([BOTTOM_NAME, *reps, TOP_NAME], pairs)
        parents: dict[str, set[str]] = {n: set() for n in (TOP_NAME, BOTTOM_NAME, *reps)}
        children: dict[str, set[str]] = {n: set() for n in (TOP_NAME, BOTTOM_NAME, *reps)}
        for low, high in restricted.covers():
            parents[low].add(high)
            children[high].add(low)
            if low not in _SYNTHETIC and high not in _SYNTHETIC:
                reused_edges += 1

        # ---- cache carryover ------------------------------------------ #
        invalid = frozenset(affected | delta.names_added | delta.names_removed)
        carried = reasoner.adopt_caches(old.reasoner, invalid=invalid)

        insert = sorted(affected & new_names)
        seed = HierarchySeed(
            parents=parents,
            children=children,
            groups=seed_groups,
            top_members=seed_top,
            unsatisfiable=seed_unsat,
            insert=insert,
        )
        hierarchy = ConceptHierarchy(
            new_tbox, reasoner=reasoner, budget=budget, seed=seed
        )

    _obs.incr("incremental.affected", len(insert))
    _obs.incr("incremental.reused_edges", reused_edges)
    _obs.incr("incremental.cache_carryover", carried)
    return ReclassifyResult(
        hierarchy=hierarchy,
        mode="incremental",
        affected=frozenset(insert),
        reused_edges=reused_edges,
        cache_carryover=carried,
        fallback_reason=None,
    )
