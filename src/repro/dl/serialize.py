"""Serialization of concepts and TBoxes back to the ASCII text syntax.

``to_text`` emits exactly the syntax :mod:`repro.dl.parser` reads, so
``parse_concept(to_text(c)) == c`` — property-tested.  Useful for saving
ontonomies the library built programmatically (confusable siblings,
random TBoxes) into files the CLI can critique.
"""

from __future__ import annotations

from .syntax import (
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    Exists,
    Forall,
    Not,
    Or,
    _Bottom,
    _Top,
)
from .tbox import Equivalence, Subsumption, TBox

# precedence levels: | < & < unary
_OR, _AND, _UNARY = 0, 1, 2


def to_text(concept: Concept) -> str:
    """Render ``concept`` in the parser's ASCII syntax."""
    return _render(concept, _OR)


def _render(c: Concept, context: int) -> str:
    if isinstance(c, Atomic):
        return c.name
    if isinstance(c, _Top):
        return "Top"
    if isinstance(c, _Bottom):
        return "Bottom"
    if isinstance(c, Not):
        return f"~{_render(c.operand, _UNARY)}"
    if isinstance(c, And):
        body = " & ".join(_render(op, _AND) for op in c.operands)
        return f"({body})" if context > _AND else body
    if isinstance(c, Or):
        body = " | ".join(_render(op, _OR + 1) for op in c.operands)
        return f"({body})" if context > _OR else body
    if isinstance(c, Exists):
        return f"some {c.role.name}.{_render(c.filler, _UNARY)}"
    if isinstance(c, Forall):
        return f"all {c.role.name}.{_render(c.filler, _UNARY)}"
    if isinstance(c, AtLeast):
        if isinstance(c.filler, _Top):
            return f">= {c.n} {c.role.name}"
        return f">= {c.n} {c.role.name}.{_render(c.filler, _UNARY)}"
    if isinstance(c, AtMost):
        if isinstance(c.filler, _Top):
            return f"<= {c.n} {c.role.name}"
        return f"<= {c.n} {c.role.name}.{_render(c.filler, _UNARY)}"
    raise TypeError(f"unknown concept node {c!r}")


def tbox_to_text(tbox: TBox) -> str:
    """Render a TBox in the one-axiom-per-line file format."""
    lines = []
    for axiom in tbox:
        connective = "[=" if isinstance(axiom, Subsumption) else "="
        lines.append(f"{to_text(axiom.lhs)} {connective} {to_text(axiom.rhs)}")
    return "\n".join(lines)
