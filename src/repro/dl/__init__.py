"""Description logic: syntax, parser, tableau reasoner, classification,
and the definition-graph machinery behind the paper's structural-meaning
argument.
"""

from .abox import ABox, Assertion, ConceptAssertion, RoleAssertion
from .bisimulation import (
    are_bisimilar,
    bisimulation_classes,
    is_alc_concept,
)
from .diff import AxiomDelta, TBoxDiff, axiom_diff, tbox_diff
from .defgraph import (
    DefGraphError,
    anonymized_meaning,
    definition_graph,
    dependents_of,
    graph_roles,
    meaning_isomorphic,
    meanings_identical,
    rename_roles,
    structural_meaning,
)
from .hierarchy import (
    BOTTOM_NAME,
    TOP_NAME,
    ConceptHierarchy,
    HierarchySeed,
    classify,
)
from .incremental import ReclassifyResult, reclassify
from .intern import BOTTOM_ID, TOP_ID, BitSet, ConceptTable, InternTable
from .interpretation import Interpretation
from .nnf import is_nnf, negate, to_nnf
from .parser import ParseError, parse_axiom, parse_concept, parse_tbox
from .serialize import tbox_to_text, to_text
from .reasoner import Reasoner
from .syntax import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    DLSyntaxError,
    Exists,
    Forall,
    Not,
    Or,
    Role,
    at_least,
    at_most,
    only,
    some,
)
from .saturation import Saturation
from .tableau import ReasonerError, Tableau
from .tbox import Axiom, Equivalence, Subsumption, TBox

__all__ = [
    "Concept", "Atomic", "TOP", "BOTTOM", "Not", "And", "Or", "Exists",
    "Forall", "AtLeast", "AtMost", "Role", "some", "only", "at_least",
    "at_most", "DLSyntaxError",
    "to_nnf", "negate", "is_nnf",
    "TBox", "Subsumption", "Equivalence", "Axiom",
    "ABox", "ConceptAssertion", "RoleAssertion", "Assertion",
    "Tableau", "Reasoner", "ReasonerError", "Interpretation",
    "BitSet", "InternTable", "ConceptTable", "TOP_ID", "BOTTOM_ID",
    "Saturation",
    "are_bisimilar", "bisimulation_classes", "is_alc_concept",
    "tbox_diff", "TBoxDiff", "axiom_diff", "AxiomDelta",
    "ConceptHierarchy", "classify", "TOP_NAME", "BOTTOM_NAME",
    "HierarchySeed", "reclassify", "ReclassifyResult", "dependents_of",
    "parse_concept", "parse_axiom", "parse_tbox", "ParseError",
    "to_text", "tbox_to_text",
    "definition_graph", "structural_meaning", "anonymized_meaning",
    "meaning_isomorphic", "meanings_identical", "rename_roles",
    "graph_roles", "DefGraphError",
]
