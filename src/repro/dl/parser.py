"""A concrete text syntax for concepts and TBoxes.

The ASCII syntax mirrors the paper's displayed ontonomies::

    car [= motorvehicle & roadvehicle & some size.small
    pickup [= motorvehicle & roadvehicle & some size.big
    motorvehicle [= some uses.gasoline
    roadvehicle [= >= 4 has.wheel

Grammar (one axiom per line; ``#`` starts a comment)::

    axiom   :=  concept '[=' concept   |  concept '=' concept
    concept :=  disj
    disj    :=  conj ('|' conj)*
    conj    :=  unary ('&' unary)*
    unary   :=  '~' unary
             |  'some' NAME '.' unary
             |  'all'  NAME '.' unary
             |  '>=' INT NAME ['.' unary]
             |  '<=' INT NAME ['.' unary]
             |  '(' concept ')'
             |  'Top' | 'Bottom' | NAME
"""

from __future__ import annotations

import re
from typing import Iterator

from .syntax import (
    BOTTOM,
    TOP,
    And,
    Atomic,
    Concept,
    DLSyntaxError,
    Not,
    Or,
    at_least,
    at_most,
    only,
    some,
)
from .tbox import Equivalence, Subsumption, TBox


class ParseError(DLSyntaxError):
    """Raised on malformed concept or TBox text."""


_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<subsume>\[=)
  | (?P<geq>>=)
  | (?P<leq><=)
  | (?P<eq>=)
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>~)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<dot>\.)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_-]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"some", "all", "Top", "Bottom"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, m.group()))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, kind: str) -> str:
        token = self.next()
        if token[0] != kind:
            raise ParseError(f"expected {kind}, got {token[1]!r}")
        return token[1]

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # grammar ----------------------------------------------------------- #

    def concept(self) -> Concept:
        return self.disjunction()

    def disjunction(self) -> Concept:
        parts = [self.conjunction()]
        while self.peek() and self.peek()[0] == "or":
            self.next()
            parts.append(self.conjunction())
        return Or.of(parts) if len(parts) > 1 else parts[0]

    def conjunction(self) -> Concept:
        parts = [self.unary()]
        while self.peek() and self.peek()[0] == "and":
            self.next()
            parts.append(self.unary())
        return And.of(parts) if len(parts) > 1 else parts[0]

    def unary(self) -> Concept:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input in concept")
        kind, value = token
        if kind == "not":
            self.next()
            return Not(self.unary())
        if kind == "lpar":
            self.next()
            inner = self.concept()
            self.expect("rpar")
            return inner
        if kind in ("geq", "leq"):
            self.next()
            n = int(self.expect("int"))
            role = self.expect("name")
            filler: Concept = TOP
            if self.peek() and self.peek()[0] == "dot":
                self.next()
                filler = self.unary()
            return at_least(n, role, filler) if kind == "geq" else at_most(n, role, filler)
        if kind == "name":
            if value == "some" or value == "all":
                self.next()
                role = self.expect("name")
                self.expect("dot")
                filler = self.unary()
                return some(role, filler) if value == "some" else only(role, filler)
            if value == "Top":
                self.next()
                return TOP
            if value == "Bottom":
                self.next()
                return BOTTOM
            self.next()
            return Atomic(value)
        raise ParseError(f"unexpected token {value!r}")

    def axiom(self) -> Subsumption | Equivalence:
        lhs = self.concept()
        token = self.next()
        if token[0] == "subsume":
            return Subsumption(lhs, self.concept())
        if token[0] == "eq":
            return Equivalence(lhs, self.concept())
        raise ParseError(f"expected '[=' or '=', got {token[1]!r}")


def parse_concept(text: str) -> Concept:
    """Parse a single concept expression.

    >>> parse_concept("motorvehicle & some size.small")
    And(operands=(Atomic(name='motorvehicle'), Exists(role=Role(name='size'), filler=Atomic(name='small'))))
    """
    parser = _Parser(text)
    concept = parser.concept()
    if not parser.at_end():
        raise ParseError(f"trailing input after concept: {parser.peek()[1]!r}")
    return concept


def parse_axiom(text: str) -> Subsumption | Equivalence:
    """Parse a single axiom line."""
    parser = _Parser(text)
    axiom = parser.axiom()
    if not parser.at_end():
        raise ParseError(f"trailing input after axiom: {parser.peek()[1]!r}")
    return axiom


def parse_tbox(text: str) -> TBox:
    """Parse a TBox: one axiom per line, ``#`` comments, blank lines ignored."""
    axioms = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            axioms.append(parse_axiom(line))
        except ParseError as exc:
            raise ParseError(f"line {lineno}: {exc}") from exc
    return TBox(axioms)
