"""Tableau-based satisfiability for ALCN(+qualified at-least) with GCIs.

A completion-graph tableau with:

* **absorption / lazy unfolding** — axioms ``A ⊑ C`` with atomic ``A`` are
  applied only to nodes whose label contains ``A`` (the paper's ontonomies
  are all of this definitorial shape; benchmark B1 ablates this choice);
* **GCI propagation** — non-absorbable axioms ``C ⊑ D`` add ``¬C ⊔ D`` to
  every node;
* **subset blocking** — a generated node is blocked when some ancestor's
  label includes its own, guaranteeing termination on cyclic TBoxes;
* **number restrictions** — ``≥n r.C`` generates ``n`` pairwise-distinct
  successors; ``≤n r.C`` first saturates with the **choose-rule** (every
  r-successor decides between ``C`` and ``¬C``), then merges surplus
  C-successors, branching over merge choices.

Branching (⊔ and merge choices) is explored by copying the completion
graph — simple, deterministic, and fast enough for ontonomy-sized inputs,
which is the regime this library targets.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..obs import recorder as _obs
from ..robust import Budget, BudgetExhausted, Verdict
from .abox import ABox, ConceptAssertion, RoleAssertion
from .nnf import negate, to_nnf
from .syntax import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    Exists,
    Forall,
    Not,
    Or,
    _Bottom,
    _Top,
)
from .tbox import TBox


class ReasonerError(Exception):
    """Raised on unsupported constructs or resource exhaustion."""


class _State:
    """A completion graph: labels, role edges, distinctness, provenance."""

    __slots__ = ("labels", "edges", "parent", "named", "distinct", "counter", "applied")

    def __init__(self) -> None:
        self.labels: dict[int, set[Concept]] = {}
        self.edges: dict[int, dict[str, set[int]]] = {}
        self.parent: dict[int, Optional[int]] = {}
        self.named: set[int] = set()
        self.distinct: set[frozenset[int]] = set()
        self.counter: int = 0
        # (node, concept) pairs for one-shot generating rules
        self.applied: set[tuple[int, Concept]] = set()

    def new_node(self, parent: Optional[int], named: bool = False) -> int:
        _obs.incr("tableau.expansions")
        node = self.counter
        self.counter += 1
        self.labels[node] = set()
        self.edges[node] = {}
        self.parent[node] = parent
        if named:
            self.named.add(node)
        return node

    def add_edge(self, u: int, role: str, v: int) -> None:
        self.edges[u].setdefault(role, set()).add(v)

    def successors(self, node: int, role: str) -> set[int]:
        return self.edges[node].get(role, set())

    def copy(self) -> "_State":
        _obs.incr("tableau.branch_copies")
        s = _State()
        s.labels = {n: set(l) for n, l in self.labels.items()}
        s.edges = {n: {r: set(vs) for r, vs in by_role.items()} for n, by_role in self.edges.items()}
        s.parent = dict(self.parent)
        s.named = set(self.named)
        s.distinct = set(self.distinct)
        s.counter = self.counter
        s.applied = set(self.applied)
        return s

    def ancestors(self, node: int) -> Iterable[int]:
        current = self.parent[node]
        while current is not None:
            yield current
            current = self.parent[current]

    def is_blocked(self, node: int) -> bool:
        """Subset blocking: some ancestor label includes this node's label."""
        if node in self.named:
            return False
        label = self.labels[node]
        return any(label <= self.labels[a] for a in self.ancestors(node))

    def merge(self, source: int, target: int) -> None:
        """Merge ``source`` into ``target`` (labels, edges, incoming links)."""
        self.labels[target] |= self.labels[source]
        for role, vs in self.edges[source].items():
            for v in vs:
                self.add_edge(target, role, v)
                if self.parent.get(v) == source:
                    self.parent[v] = target
        for u, by_role in self.edges.items():
            for role, vs in by_role.items():
                if source in vs:
                    vs.discard(source)
                    vs.add(target)
        self.distinct = {
            frozenset(target if n == source else n for n in pair)
            for pair in self.distinct
        }
        self.distinct = {pair for pair in self.distinct if len(pair) == 2}
        self.applied = {
            (target if n == source else n, c) for (n, c) in self.applied
        }
        del self.labels[source]
        del self.edges[source]
        del self.parent[source]
        self.named.discard(source)


class Tableau:
    """Satisfiability engine for concepts/ABoxes w.r.t. a TBox."""

    def __init__(self, tbox: TBox | None = None, *, max_nodes: int = 2000) -> None:
        self.tbox = tbox if tbox is not None else TBox()
        self.max_nodes = max_nodes
        # absorption split
        self._lazy: dict[str, list[Concept]] = {}
        self._global: list[Concept] = []
        for gci in self.tbox.gcis():
            if isinstance(gci.lhs, Atomic):
                self._lazy.setdefault(gci.lhs.name, []).append(to_nnf(gci.rhs))
            else:
                self._global.append(to_nnf(Or.of([negate(gci.lhs), to_nnf(gci.rhs)])))

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #

    def is_satisfiable(self, concept: Concept) -> bool:
        """True iff ``concept`` is satisfiable w.r.t. the TBox."""
        return self.find_model(concept) is not None

    def find_model(self, concept: Concept) -> Optional[_State]:
        """A complete clash-free completion graph for ``concept``, or None.

        Use :func:`extract_interpretation` to turn the graph into a
        checkable :class:`repro.dl.interpretation.Interpretation`.
        """
        _obs.incr("tableau.solve_calls")
        state = _State()
        root = state.new_node(None, named=True)
        state.labels[root].add(to_nnf(concept))
        with _obs.trace("tableau.solve"):
            return self._solve(state)

    def is_consistent(self, abox: ABox) -> bool:
        """True iff ``abox`` is consistent w.r.t. the TBox."""
        _obs.incr("tableau.solve_calls")
        return self._solve(self._abox_state(abox)) is not None

    @staticmethod
    def _abox_state(abox: ABox) -> _State:
        state = _State()
        node_of: dict[str, int] = {}
        for name in sorted(abox.individuals()):
            node_of[name] = state.new_node(None, named=True)
        # unique-name assumption: named individuals are pairwise distinct
        for a, b in itertools.combinations(sorted(node_of.values()), 2):
            state.distinct.add(frozenset({a, b}))
        for assertion in abox:
            if isinstance(assertion, ConceptAssertion):
                state.labels[node_of[assertion.individual]].add(to_nnf(assertion.concept))
            elif isinstance(assertion, RoleAssertion):
                state.add_edge(node_of[assertion.subject], assertion.role.name, node_of[assertion.object])
        return state

    # ------------------------------------------------------------------ #
    # governed entry points: verdicts instead of exhaustion errors
    # ------------------------------------------------------------------ #

    def solve_governed(self, concept: Concept, budget: Budget) -> Verdict:
        """Satisfiability of ``concept`` under ``budget``.

        PROVED = satisfiable, DISPROVED = unsatisfiable, UNKNOWN = the
        budget (or the engine's own ``max_nodes``) ran out first.  Never
        raises on exhaustion — that is the whole point.
        """
        _obs.incr("tableau.solve_calls")
        state = _State()
        root = state.new_node(None, named=True)
        state.labels[root].add(to_nnf(concept))
        return self._verdict_of(state, budget)

    def consistent_governed(self, abox: ABox, budget: Budget) -> Verdict:
        """ABox consistency under ``budget`` (PROVED = consistent)."""
        _obs.incr("tableau.solve_calls")
        return self._verdict_of(self._abox_state(abox), budget)

    def _verdict_of(self, state: _State, budget: Budget) -> Verdict:
        try:
            with _obs.trace("tableau.solve"):
                solved = self._solve(state, budget)
        except BudgetExhausted as exc:
            _obs.incr("robust.exhaustions")
            return Verdict.unknown(exc.reason)
        return Verdict.from_bool(solved is not None)

    # ------------------------------------------------------------------ #
    # the algorithm
    # ------------------------------------------------------------------ #

    def _solve(self, state: _State, budget: Optional[Budget] = None) -> Optional[_State]:
        while True:
            if budget is not None:
                budget.check_deadline()
                budget.note_nodes(state.counter)
                if state.counter > self.max_nodes:
                    raise BudgetExhausted(
                        f"nodes: {state.counter} > engine max_nodes={self.max_nodes}"
                    )
            elif state.counter > self.max_nodes:
                raise ReasonerError(
                    f"completion graph exceeded {self.max_nodes} nodes; "
                    "possible non-terminating input for subset blocking"
                )
            changed = self._deterministic_round(state)
            if self._has_clash(state):
                _obs.incr("tableau.clashes")
                return None
            if changed:
                continue

            branch = self._find_disjunction(state)
            if branch is not None:
                node, disjunction = branch
                _obs.incr("tableau.disjunction_branches")
                for disjunct in disjunction.operands:
                    if budget is not None:
                        budget.charge_branch()
                    attempt = state.copy()
                    attempt.applied.add((node, disjunction))
                    attempt.labels[node].add(disjunct)
                    solved = self._solve(attempt, budget)
                    if solved is not None:
                        return solved
                return None

            choose = self._find_choose(state)
            if choose is not None:
                succ, filler = choose
                _obs.incr("tableau.choose_applications")
                for variant in (filler, negate(filler)):
                    if budget is not None:
                        budget.charge_branch()
                    attempt = state.copy()
                    attempt.labels[succ].add(variant)
                    solved = self._solve(attempt, budget)
                    if solved is not None:
                        return solved
                return None

            merge = self._find_atmost_violation(state)
            if merge is not None:
                node, concept = merge
                succ = sorted(self._atmost_candidates(state, node, concept))
                mergeable = [
                    (u, v)
                    for u, v in itertools.combinations(succ, 2)
                    if frozenset({u, v}) not in state.distinct
                    and not (u in state.named and v in state.named)
                ]
                if not mergeable:
                    return None  # ≤-clash: too many provably distinct successors
                for u, v in mergeable:
                    _obs.incr("tableau.merges")
                    if budget is not None:
                        budget.charge_branch()
                    attempt = state.copy()
                    # merge the generated node into the other
                    if u in attempt.named:
                        attempt.merge(v, u)
                    else:
                        attempt.merge(u, v)
                    solved = self._solve(attempt, budget)
                    if solved is not None:
                        return solved
                return None

            generated = self._generating_round(state)
            if self._has_clash(state):
                _obs.incr("tableau.clashes")
                return None
            if not generated:
                return state  # complete and clash-free

    # -- deterministic rules ------------------------------------------- #

    def _deterministic_round(self, state: _State) -> bool:
        changed = False
        for node in list(state.labels):
            label = state.labels[node]
            additions: set[Concept] = set()
            # global GCIs
            for constraint in self._global:
                if constraint not in label:
                    additions.add(constraint)
            # lazy unfolding of absorbed axioms
            for concept in list(label):
                if isinstance(concept, Atomic):
                    for rhs in self._lazy.get(concept.name, ()):
                        if rhs not in label:
                            additions.add(rhs)
                elif isinstance(concept, And):
                    for op in concept.operands:
                        if op not in label:
                            additions.add(op)
                elif isinstance(concept, Forall):
                    for succ in state.successors(node, concept.role.name):
                        if concept.filler not in state.labels[succ]:
                            state.labels[succ].add(concept.filler)
                            changed = True
            if additions:
                label |= additions
                changed = True
        return changed

    # -- clash detection ------------------------------------------------ #

    def _has_clash(self, state: _State) -> bool:
        for node, label in state.labels.items():
            for concept in label:
                if isinstance(concept, _Bottom):
                    return True
                if isinstance(concept, Not) and concept.operand in label:
                    return True
                if isinstance(concept, AtMost):
                    candidates = self._atmost_candidates(state, node, concept)
                    if len(candidates) > concept.n and self._all_distinct(
                        state, candidates, concept.n
                    ):
                        return True
                if isinstance(concept, AtLeast) and concept.n >= 1:
                    # direct conflict ≥n r.⊤ vs ≤m r.⊤ with m < n is found
                    # after generation; nothing to do here
                    pass
        return False

    @staticmethod
    def _atmost_candidates(state: _State, node: int, concept: AtMost) -> set[int]:
        """The r-successors that count against ``≤n r.C``.

        With ``C = ⊤`` every r-successor counts; otherwise only those
        whose label contains ``C``.  The choose-rule guarantees that by
        saturation every successor carries ``C`` or ``¬C``, so this count
        is exact on complete graphs.
        """
        succ = state.successors(node, concept.role.name)
        if isinstance(concept.filler, _Top):
            return set(succ)
        return {s for s in succ if concept.filler in state.labels[s]}

    @staticmethod
    def _all_distinct(state: _State, nodes: set[int], bound: int) -> bool:
        """True iff more than ``bound`` of ``nodes`` are pairwise distinct."""
        nodes = sorted(nodes)
        if len(nodes) <= bound:
            return False
        return all(
            frozenset({u, v}) in state.distinct
            for u, v in itertools.combinations(nodes, 2)
        )

    # -- nondeterministic rule selection -------------------------------- #

    def _find_disjunction(self, state: _State) -> Optional[tuple[int, Or]]:
        for node in sorted(state.labels):
            for concept in sorted(state.labels[node], key=str):
                if isinstance(concept, Or) and (node, concept) not in state.applied:
                    if not any(op in state.labels[node] for op in concept.operands):
                        return (node, concept)
        return None

    def _find_choose(self, state: _State) -> Optional[tuple[int, Concept]]:
        """The choose-rule: under ``≤n r.C`` every r-successor must decide
        between ``C`` and ``¬C`` before counting is meaningful."""
        for node in sorted(state.labels):
            for concept in sorted(state.labels[node], key=str):
                if isinstance(concept, AtMost) and not isinstance(concept.filler, _Top):
                    negated = negate(concept.filler)
                    for succ in sorted(state.successors(node, concept.role.name)):
                        label = state.labels[succ]
                        if concept.filler not in label and negated not in label:
                            return (succ, concept.filler)
        return None

    def _find_atmost_violation(self, state: _State) -> Optional[tuple[int, AtMost]]:
        for node in sorted(state.labels):
            for concept in sorted(state.labels[node], key=str):
                if isinstance(concept, AtMost):
                    candidates = self._atmost_candidates(state, node, concept)
                    if len(candidates) > concept.n and not self._all_distinct(
                        state, candidates, concept.n
                    ):
                        return (node, concept)
        return None

    # -- generating rules ------------------------------------------------ #

    def _generating_round(self, state: _State) -> bool:
        generated = False
        for node in sorted(state.labels):
            if node not in state.labels:
                continue
            if state.is_blocked(node):
                _obs.incr("tableau.blocking_hits")
                continue
            for concept in sorted(state.labels[node], key=str):
                if isinstance(concept, Exists):
                    if (node, concept) in state.applied:
                        continue
                    if any(
                        concept.filler in state.labels[s]
                        for s in state.successors(node, concept.role.name)
                    ):
                        state.applied.add((node, concept))
                        continue
                    child = state.new_node(node)
                    state.labels[child].add(concept.filler)
                    state.add_edge(node, concept.role.name, child)
                    state.applied.add((node, concept))
                    generated = True
                elif isinstance(concept, AtLeast) and concept.n >= 1:
                    if (node, concept) in state.applied:
                        continue
                    children = []
                    for _ in range(concept.n):
                        child = state.new_node(node)
                        state.labels[child].add(concept.filler)
                        state.add_edge(node, concept.role.name, child)
                        children.append(child)
                    for u, v in itertools.combinations(children, 2):
                        state.distinct.add(frozenset({u, v}))
                    state.applied.add((node, concept))
                    generated = True
        return generated



def extract_interpretation(state: _State) -> "Interpretation":
    """Read a finite interpretation off a complete clash-free graph.

    Blocked nodes stay in the domain and are *unraveled lazily*: each one
    borrows the outgoing edges of its blocker (the ancestor whose label
    includes its own).  Since a blocked node's constraints are a subset
    of its blocker's, and the blocker satisfies them with exactly those
    successors, the borrowed edges satisfy the blocked node's ∃/∀/≥/≤
    constraints too — without ever merging nodes that a ≥-rule made
    distinct.  The result is independently checkable with
    :meth:`repro.dl.interpretation.Interpretation.satisfies`.
    """
    from .interpretation import Interpretation

    def resolve(node: int) -> int:
        """Follow blockers until a non-blocked node is reached."""
        seen = set()
        current = node
        while state.is_blocked(current) and current not in seen:
            seen.add(current)
            label = state.labels[current]
            for ancestor in state.ancestors(current):
                if label <= state.labels[ancestor]:
                    current = ancestor
                    break
            else:  # pragma: no cover - blocked implies a superset ancestor
                break
        return current

    domain = list(state.labels)
    concepts: dict[str, set[int]] = {}
    for node in domain:
        for concept in state.labels[node]:
            if isinstance(concept, Atomic):
                concepts.setdefault(concept.name, set()).add(node)
    roles: dict[str, set[tuple[int, int]]] = {}
    for node in domain:
        source = resolve(node) if state.is_blocked(node) else node
        for role, targets in state.edges[source].items():
            for target in targets:
                roles.setdefault(role, set()).add((node, target))
    return Interpretation(domain, concepts, roles)
