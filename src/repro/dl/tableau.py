"""Tableau-based satisfiability for ALCN(+qualified at-least) with GCIs.

A completion-graph tableau with:

* **absorption / lazy unfolding** — axioms ``A ⊑ C`` with atomic ``A`` are
  applied only to nodes whose label contains ``A`` (the paper's ontonomies
  are all of this definitorial shape; benchmark B1 ablates this choice);
* **GCI propagation** — non-absorbable axioms ``C ⊑ D`` add ``¬C ⊔ D`` to
  every node;
* **subset blocking** — a generated node is blocked when some ancestor's
  label includes its own, guaranteeing termination on cyclic TBoxes;
* **number restrictions** — ``≥n r.C`` generates ``n`` pairwise-distinct
  successors; ``≤n r.C`` first saturates with the **choose-rule** (every
  r-successor decides between ``C`` and ``¬C``), then merges surplus
  C-successors, branching over merge choices.

Branching (⊔ and merge choices) is explored by copying the completion
graph — simple, deterministic, and fast enough for ontonomy-sized inputs,
which is the regime this library targets.

The engine is **interned**: every concept and role is assigned a dense
int id on first contact (:mod:`repro.dl.intern`), node labels and the
one-shot ``applied`` markers hold ids, and a label is a single Python
``int`` bitmask.  Rule dispatch walks the set bits of the label against
a per-id decomposition record (:class:`_Info`), conjunction expansion
and GCI propagation are single ``|`` operations against precomputed
masks, blocking is a subset check ``label & ancestor == label``, and
copying a branch copies flat int-valued dicts instead of sets of hashed
dataclasses.  Determinism is preserved: ids are assigned in a
deterministic order, and rules fire in ascending id order where the old
engine sorted concepts by string.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..obs import recorder as _obs
from ..robust import Budget, BudgetExhausted, Verdict
from .abox import ABox, ConceptAssertion, RoleAssertion
from .intern import BOTTOM_ID, TOP_ID, ConceptTable, InternTable
from .nnf import negate, to_nnf
from .syntax import (
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    Exists,
    Forall,
    Not,
    Or,
    _Bottom,
    _Top,
)
from .tbox import TBox


class ReasonerError(Exception):
    """Raised on unsupported constructs or resource exhaustion."""


# decomposition kinds (see _Info)
_ATOM, _TOP, _BOT, _NOT, _AND, _OR, _EXISTS, _FORALL, _ATLEAST, _ATMOST = range(10)

_BOTTOM_BIT = 1 << BOTTOM_ID


class _Info:
    """The interned decomposition of one concept id.

    ``kind`` selects the rule; the remaining fields are what that rule
    needs, already interned: ``mask`` is the operand bitmask of ⊓/⊔,
    ``ids`` the ⊔ branch order, ``a`` the single operand/filler id,
    ``role`` the role id, ``n`` the number bound, and ``neg`` caches the
    id of the negated filler (choose-rule), computed on first use.
    ``skey`` is the concept's rendered string, precomputed once so
    nondeterministic-rule selection can keep the engine's historical
    sorted-by-string order without re-stringifying per round (id order
    is *not* a drop-in replacement: it front-loads branching on global
    GCI disjuncts and blows up the search on ∃-rich inputs).
    """

    __slots__ = ("kind", "mask", "ids", "a", "role", "n", "neg", "skey")

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.mask = 0
        self.ids: tuple[int, ...] = ()
        self.a = -1
        self.role = -1
        self.n = 0
        self.neg = -1
        self.skey = ""


class _State:
    """A completion graph: labels, role edges, distinctness, provenance.

    ``labels`` maps node → label bitmask over the owning tableau's
    concept table; ``edges`` is keyed by interned role ids; ``applied``
    holds ``(node, concept_id)`` one-shot markers.
    """

    __slots__ = ("owner", "labels", "edges", "parent", "named", "distinct", "counter", "applied")

    def __init__(self, owner: "Tableau") -> None:
        self.owner = owner
        self.labels: dict[int, int] = {}
        self.edges: dict[int, dict[int, set[int]]] = {}
        self.parent: dict[int, Optional[int]] = {}
        self.named: set[int] = set()
        self.distinct: set[frozenset[int]] = set()
        self.counter: int = 0
        # (node, concept id) pairs for one-shot generating rules
        self.applied: set[tuple[int, int]] = set()

    def new_node(self, parent: Optional[int], named: bool = False) -> int:
        _obs.incr("tableau.expansions")
        node = self.counter
        self.counter += 1
        self.labels[node] = 0
        self.edges[node] = {}
        self.parent[node] = parent
        if named:
            self.named.add(node)
        return node

    def add_edge(self, u: int, role: int, v: int) -> None:
        self.edges[u].setdefault(role, set()).add(v)

    def successors(self, node: int, role: int) -> set[int]:
        return self.edges[node].get(role, set())

    def copy(self) -> "_State":
        _obs.incr("tableau.branch_copies")
        s = _State(self.owner)
        s.labels = dict(self.labels)  # int-valued: a flat copy suffices
        s.edges = {n: {r: set(vs) for r, vs in by_role.items()} for n, by_role in self.edges.items()}
        s.parent = dict(self.parent)
        s.named = set(self.named)
        s.distinct = set(self.distinct)
        s.counter = self.counter
        s.applied = set(self.applied)
        return s

    def ancestors(self, node: int) -> Iterable[int]:
        current = self.parent[node]
        while current is not None:
            yield current
            current = self.parent[current]

    def is_blocked(self, node: int) -> bool:
        """Subset blocking: some ancestor label includes this node's label."""
        if node in self.named:
            return False
        label = self.labels[node]
        return any(label & self.labels[a] == label for a in self.ancestors(node))

    def merge(self, source: int, target: int) -> None:
        """Merge ``source`` into ``target`` (labels, edges, incoming links)."""
        self.labels[target] |= self.labels[source]
        for role, vs in self.edges[source].items():
            for v in vs:
                self.add_edge(target, role, v)
                if self.parent.get(v) == source:
                    self.parent[v] = target
        for u, by_role in self.edges.items():
            for role, vs in by_role.items():
                if source in vs:
                    vs.discard(source)
                    vs.add(target)
        self.distinct = {
            frozenset(target if n == source else n for n in pair)
            for pair in self.distinct
        }
        self.distinct = {pair for pair in self.distinct if len(pair) == 2}
        self.applied = {
            (target if n == source else n, c) for (n, c) in self.applied
        }
        del self.labels[source]
        del self.edges[source]
        del self.parent[source]
        self.named.discard(source)


class Tableau:
    """Satisfiability engine for concepts/ABoxes w.r.t. a TBox."""

    def __init__(self, tbox: TBox | None = None, *, max_nodes: int = 2000) -> None:
        self.tbox = tbox if tbox is not None else TBox()
        self.max_nodes = max_nodes
        #: concept ↔ dense id (⊤ = 0, ⊥ = 1); shared with the reasoner's
        #: id-keyed caches for the life of this tableau
        self.concepts = ConceptTable()
        self.roles = InternTable()
        self._info: list[_Info] = []
        self._build_info(TOP_ID)
        self._build_info(BOTTOM_ID)
        # absorption split, interned: per-atomic-id unfolding masks and a
        # single global-GCI mask ORed into every label
        self._lazy_mask: dict[int, int] = {}
        self._global_mask = 0
        for gci in self.tbox.gcis():
            if isinstance(gci.lhs, Atomic):
                lhs_id = self.cid(gci.lhs)
                rhs_bit = 1 << self.cid(to_nnf(gci.rhs))
                self._lazy_mask[lhs_id] = self._lazy_mask.get(lhs_id, 0) | rhs_bit
            else:
                constraint = to_nnf(Or.of([negate(gci.lhs), to_nnf(gci.rhs)]))
                self._global_mask |= 1 << self.cid(constraint)

    # ------------------------------------------------------------------ #
    # interning
    # ------------------------------------------------------------------ #

    def cid(self, concept: Concept) -> int:
        """The dense id of ``concept``, interning it (and its parts) on miss."""
        i = self.concepts.get(concept)
        if i is not None:
            return i
        i = self.concepts.intern(concept)
        self._build_info(i)
        return i

    def _build_info(self, i: int) -> None:
        concept = self.concepts[i]
        if isinstance(concept, Atomic):
            info = _Info(_ATOM)
        elif isinstance(concept, _Top):
            info = _Info(_TOP)
        elif isinstance(concept, _Bottom):
            info = _Info(_BOT)
        elif isinstance(concept, Not):
            info = _Info(_NOT)
            self._info.append(info)  # reserve slot before recursing
            info.a = self.cid(concept.operand)
            return
        elif isinstance(concept, And):
            info = _Info(_AND)
            self._info.append(info)
            info.mask = 0
            for op in concept.operands:
                info.mask |= 1 << self.cid(op)
            return
        elif isinstance(concept, Or):
            info = _Info(_OR)
            info.skey = str(concept)
            self._info.append(info)
            info.ids = tuple(self.cid(op) for op in concept.operands)
            info.mask = 0
            for op_id in info.ids:
                info.mask |= 1 << op_id
            return
        elif isinstance(concept, (Exists, Forall, AtLeast, AtMost)):
            info = _Info(
                {
                    Exists: _EXISTS,
                    Forall: _FORALL,
                    AtLeast: _ATLEAST,
                    AtMost: _ATMOST,
                }[type(concept)]
            )
            info.skey = str(concept)
            self._info.append(info)
            info.role = self.roles.intern(concept.role.name)
            info.a = self.cid(concept.filler)
            info.n = getattr(concept, "n", 0)
            return
        else:  # pragma: no cover - defensive
            raise ReasonerError(f"unknown concept node {concept!r}")
        self._info.append(info)

    def _neg_filler(self, info: _Info) -> int:
        """The id of the negated filler of a ≤-restriction (choose-rule)."""
        if info.neg < 0:
            info.neg = self.cid(negate(self.concepts[info.a]))
        return info.neg

    def _new_state(self) -> _State:
        return _State(self)

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #

    def is_satisfiable(self, concept: Concept) -> bool:
        """True iff ``concept`` is satisfiable w.r.t. the TBox."""
        return self.find_model(concept) is not None

    def find_model(self, concept: Concept) -> Optional[_State]:
        """A complete clash-free completion graph for ``concept``, or None.

        Use :func:`extract_interpretation` to turn the graph into a
        checkable :class:`repro.dl.interpretation.Interpretation`.
        """
        _obs.incr("tableau.solve_calls")
        state = self._new_state()
        root = state.new_node(None, named=True)
        state.labels[root] |= 1 << self.cid(to_nnf(concept))
        with _obs.trace("tableau.solve"):
            return self._solve(state)

    def is_consistent(self, abox: ABox) -> bool:
        """True iff ``abox`` is consistent w.r.t. the TBox."""
        _obs.incr("tableau.solve_calls")
        return self._solve(self._abox_state(abox)) is not None

    def _abox_state(self, abox: ABox) -> _State:
        state = self._new_state()
        node_of: dict[str, int] = {}
        for name in sorted(abox.individuals()):
            node_of[name] = state.new_node(None, named=True)
        # unique-name assumption: named individuals are pairwise distinct
        for a, b in itertools.combinations(sorted(node_of.values()), 2):
            state.distinct.add(frozenset({a, b}))
        for assertion in abox:
            if isinstance(assertion, ConceptAssertion):
                state.labels[node_of[assertion.individual]] |= 1 << self.cid(
                    to_nnf(assertion.concept)
                )
            elif isinstance(assertion, RoleAssertion):
                state.add_edge(
                    node_of[assertion.subject],
                    self.roles.intern(assertion.role.name),
                    node_of[assertion.object],
                )
        return state

    # ------------------------------------------------------------------ #
    # governed entry points: verdicts instead of exhaustion errors
    # ------------------------------------------------------------------ #

    def solve_governed(self, concept: Concept, budget: Budget) -> Verdict:
        """Satisfiability of ``concept`` under ``budget``.

        PROVED = satisfiable, DISPROVED = unsatisfiable, UNKNOWN = the
        budget (or the engine's own ``max_nodes``) ran out first.  Never
        raises on exhaustion — that is the whole point.
        """
        _obs.incr("tableau.solve_calls")
        state = self._new_state()
        root = state.new_node(None, named=True)
        state.labels[root] |= 1 << self.cid(to_nnf(concept))
        return self._verdict_of(state, budget)

    def consistent_governed(self, abox: ABox, budget: Budget) -> Verdict:
        """ABox consistency under ``budget`` (PROVED = consistent)."""
        _obs.incr("tableau.solve_calls")
        return self._verdict_of(self._abox_state(abox), budget)

    def _verdict_of(self, state: _State, budget: Budget) -> Verdict:
        try:
            with _obs.trace("tableau.solve"):
                solved = self._solve(state, budget)
        except BudgetExhausted as exc:
            _obs.incr("robust.exhaustions")
            return Verdict.unknown(exc.reason)
        return Verdict.from_bool(solved is not None)

    # ------------------------------------------------------------------ #
    # the algorithm
    # ------------------------------------------------------------------ #

    def _solve(self, state: _State, budget: Optional[Budget] = None) -> Optional[_State]:
        while True:
            if budget is not None:
                budget.check_deadline()
                budget.note_nodes(state.counter)
                if state.counter > self.max_nodes:
                    raise BudgetExhausted(
                        f"nodes: {state.counter} > engine max_nodes={self.max_nodes}"
                    )
            elif state.counter > self.max_nodes:
                raise ReasonerError(
                    f"completion graph exceeded {self.max_nodes} nodes; "
                    "possible non-terminating input for subset blocking"
                )
            changed = self._deterministic_round(state)
            if self._has_clash(state):
                _obs.incr("tableau.clashes")
                return None
            if changed:
                continue

            branch = self._find_disjunction(state)
            if branch is not None:
                node, or_id = branch
                _obs.incr("tableau.disjunction_branches")
                for disjunct in self._info[or_id].ids:
                    if budget is not None:
                        budget.charge_branch()
                    attempt = state.copy()
                    attempt.applied.add((node, or_id))
                    attempt.labels[node] |= 1 << disjunct
                    solved = self._solve(attempt, budget)
                    if solved is not None:
                        return solved
                return None

            choose = self._find_choose(state)
            if choose is not None:
                succ, filler_id, neg_id = choose
                _obs.incr("tableau.choose_applications")
                for variant in (filler_id, neg_id):
                    if budget is not None:
                        budget.charge_branch()
                    attempt = state.copy()
                    attempt.labels[succ] |= 1 << variant
                    solved = self._solve(attempt, budget)
                    if solved is not None:
                        return solved
                return None

            merge = self._find_atmost_violation(state)
            if merge is not None:
                node, atmost_id = merge
                succ = sorted(self._atmost_candidates(state, node, atmost_id))
                mergeable = [
                    (u, v)
                    for u, v in itertools.combinations(succ, 2)
                    if frozenset({u, v}) not in state.distinct
                    and not (u in state.named and v in state.named)
                ]
                if not mergeable:
                    return None  # ≤-clash: too many provably distinct successors
                for u, v in mergeable:
                    _obs.incr("tableau.merges")
                    if budget is not None:
                        budget.charge_branch()
                    attempt = state.copy()
                    # merge the generated node into the other
                    if u in attempt.named:
                        attempt.merge(v, u)
                    else:
                        attempt.merge(u, v)
                    solved = self._solve(attempt, budget)
                    if solved is not None:
                        return solved
                return None

            generated = self._generating_round(state)
            if self._has_clash(state):
                _obs.incr("tableau.clashes")
                return None
            if not generated:
                return state  # complete and clash-free

    # -- deterministic rules ------------------------------------------- #

    def _deterministic_round(self, state: _State) -> bool:
        changed = False
        info = self._info
        for node in list(state.labels):
            label = state.labels[node]
            # global GCIs: one mask OR covers every propagated constraint
            additions = self._global_mask & ~label
            mask = label
            while mask:
                low = mask & -mask
                mask ^= low
                i = info[low.bit_length() - 1]
                kind = i.kind
                if kind == _ATOM:
                    # lazy unfolding of absorbed axioms
                    unfold = self._lazy_mask.get(low.bit_length() - 1)
                    if unfold is not None:
                        additions |= unfold & ~label
                elif kind == _AND:
                    additions |= i.mask & ~label
                elif kind == _FORALL:
                    filler_bit = 1 << i.a
                    for succ in state.successors(node, i.role):
                        if not state.labels[succ] & filler_bit:
                            state.labels[succ] |= filler_bit
                            changed = True
            if additions:
                state.labels[node] = label | additions
                changed = True
        return changed

    # -- clash detection ------------------------------------------------ #

    def _has_clash(self, state: _State) -> bool:
        info = self._info
        for node, label in state.labels.items():
            if label & _BOTTOM_BIT:
                return True
            mask = label
            while mask:
                low = mask & -mask
                mask ^= low
                i = info[low.bit_length() - 1]
                if i.kind == _NOT:
                    if label >> i.a & 1:
                        return True
                elif i.kind == _ATMOST:
                    candidates = self._atmost_candidates(
                        state, node, low.bit_length() - 1
                    )
                    if len(candidates) > i.n and self._all_distinct(
                        state, candidates, i.n
                    ):
                        return True
        return False

    def _atmost_candidates(self, state: _State, node: int, atmost_id: int) -> set[int]:
        """The r-successors that count against ``≤n r.C``.

        With ``C = ⊤`` every r-successor counts; otherwise only those
        whose label contains ``C``.  The choose-rule guarantees that by
        saturation every successor carries ``C`` or ``¬C``, so this count
        is exact on complete graphs.
        """
        info = self._info[atmost_id]
        succ = state.successors(node, info.role)
        if info.a == TOP_ID:
            return set(succ)
        filler_bit = 1 << info.a
        return {s for s in succ if state.labels[s] & filler_bit}

    @staticmethod
    def _all_distinct(state: _State, nodes: set[int], bound: int) -> bool:
        """True iff more than ``bound`` of ``nodes`` are pairwise distinct."""
        nodes = sorted(nodes)
        if len(nodes) <= bound:
            return False
        return all(
            frozenset({u, v}) in state.distinct
            for u, v in itertools.combinations(nodes, 2)
        )

    # -- nondeterministic rule selection -------------------------------- #

    def _find_disjunction(self, state: _State) -> Optional[tuple[int, int]]:
        # candidates are ordered by rendered string, not interned id: id
        # order front-loads branching on global-GCI disjuncts and blows
        # the search up exponentially on ∃-rich inputs (see _Info.skey)
        info = self._info
        for node in sorted(state.labels):
            label = state.labels[node]
            best = -1
            best_key = ""
            mask = label
            while mask:
                low = mask & -mask
                mask ^= low
                cid = low.bit_length() - 1
                i = info[cid]
                if i.kind == _OR and (node, cid) not in state.applied:
                    if not label & i.mask:
                        if best < 0 or i.skey < best_key:
                            best = cid
                            best_key = i.skey
            if best >= 0:
                return (node, best)
        return None

    def _find_choose(self, state: _State) -> Optional[tuple[int, int, int]]:
        """The choose-rule: under ``≤n r.C`` every r-successor must decide
        between ``C`` and ``¬C`` before counting is meaningful."""
        info = self._info
        for node in sorted(state.labels):
            mask = state.labels[node]
            atmosts = []
            while mask:
                low = mask & -mask
                mask ^= low
                i = info[low.bit_length() - 1]
                if i.kind == _ATMOST and i.a != TOP_ID:
                    atmosts.append(i)
            atmosts.sort(key=lambda i: i.skey)
            for i in atmosts:
                neg_id = self._neg_filler(i)
                undecided = ~((1 << i.a) | (1 << neg_id))
                for succ in sorted(state.successors(node, i.role)):
                    if state.labels[succ] | undecided == undecided:
                        return (succ, i.a, neg_id)
        return None

    def _find_atmost_violation(self, state: _State) -> Optional[tuple[int, int]]:
        info = self._info
        for node in sorted(state.labels):
            mask = state.labels[node]
            atmosts = []
            while mask:
                low = mask & -mask
                mask ^= low
                cid = low.bit_length() - 1
                i = info[cid]
                if i.kind == _ATMOST:
                    atmosts.append((i.skey, cid, i))
            atmosts.sort()
            for _, cid, i in atmosts:
                candidates = self._atmost_candidates(state, node, cid)
                if len(candidates) > i.n and not self._all_distinct(
                    state, candidates, i.n
                ):
                    return (node, cid)
        return None

    # -- generating rules ------------------------------------------------ #

    def _generating_round(self, state: _State) -> bool:
        generated = False
        info = self._info
        for node in sorted(state.labels):
            if node not in state.labels:
                continue
            if state.is_blocked(node):
                _obs.incr("tableau.blocking_hits")
                continue
            mask = state.labels[node]
            while mask:
                low = mask & -mask
                mask ^= low
                cid = low.bit_length() - 1
                i = info[cid]
                if i.kind == _EXISTS:
                    if (node, cid) in state.applied:
                        continue
                    filler_bit = 1 << i.a
                    if any(
                        state.labels[s] & filler_bit
                        for s in state.successors(node, i.role)
                    ):
                        state.applied.add((node, cid))
                        continue
                    child = state.new_node(node)
                    state.labels[child] = filler_bit
                    state.add_edge(node, i.role, child)
                    state.applied.add((node, cid))
                    generated = True
                elif i.kind == _ATLEAST and i.n >= 1:
                    if (node, cid) in state.applied:
                        continue
                    filler_bit = 1 << i.a
                    children = []
                    for _ in range(i.n):
                        child = state.new_node(node)
                        state.labels[child] = filler_bit
                        state.add_edge(node, i.role, child)
                        children.append(child)
                    for u, v in itertools.combinations(children, 2):
                        state.distinct.add(frozenset({u, v}))
                    state.applied.add((node, cid))
                    generated = True
        return generated


def extract_interpretation(state: _State) -> "Interpretation":
    """Read a finite interpretation off a complete clash-free graph.

    Blocked nodes stay in the domain and are *unraveled lazily*: each one
    borrows the outgoing edges of its blocker (the ancestor whose label
    includes its own).  Since a blocked node's constraints are a subset
    of its blocker's, and the blocker satisfies them with exactly those
    successors, the borrowed edges satisfy the blocked node's ∃/∀/≥/≤
    constraints too — without ever merging nodes that a ≥-rule made
    distinct.  The result is independently checkable with
    :meth:`repro.dl.interpretation.Interpretation.satisfies`.
    """
    from .interpretation import Interpretation

    concept_table = state.owner.concepts
    role_table = state.owner.roles

    def resolve(node: int) -> int:
        """Follow blockers until a non-blocked node is reached."""
        seen = set()
        current = node
        while state.is_blocked(current) and current not in seen:
            seen.add(current)
            label = state.labels[current]
            for ancestor in state.ancestors(current):
                if label & state.labels[ancestor] == label:
                    current = ancestor
                    break
            else:  # pragma: no cover - blocked implies a superset ancestor
                break
        return current

    domain = list(state.labels)
    concepts: dict[str, set[int]] = {}
    for node in domain:
        mask = state.labels[node]
        while mask:
            low = mask & -mask
            mask ^= low
            concept = concept_table[low.bit_length() - 1]
            if isinstance(concept, Atomic):
                concepts.setdefault(concept.name, set()).add(node)
    roles: dict[str, set[tuple[int, int]]] = {}
    for node in domain:
        source = resolve(node) if state.is_blocked(node) else node
        for role_id, targets in state.edges[source].items():
            role = role_table[role_id]
            for target in targets:
                roles.setdefault(role, set()).add((node, target))
    return Interpretation(domain, concepts, roles)
