"""Dense integer interning for concepts and roles, plus bitset helpers.

The reasoning hot paths (tableau labels, told-subsumer closures,
saturation subsumer sets, hierarchy traversal closures) all manipulate
*sets of things drawn from a small, fixed vocabulary*.  Hashing frozen
``Concept`` dataclasses and unioning Python ``set``s of them is what the
profiler shows; this module replaces both:

* :class:`InternTable` assigns every distinct item a dense int id in
  first-seen order (so id order is deterministic whenever the call
  sequence is), and maps ids back to items for the rare display paths;
* sets of ids are plain Python ``int`` bitmasks — union is ``|``,
  intersection ``&``, subset ``mask & other == mask`` — with
  :class:`BitSet` providing the few non-operator helpers (iteration,
  popcount) the callers need.

Every fresh id ticks the ``intern.table_size`` counter, so a bench run
shows exactly how large the interned universe got.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Optional

from ..obs import recorder as _obs


class BitSet:
    """Namespace of helpers over int bitmasks (no instances needed)."""

    @staticmethod
    def of(ids: "Iterator[int] | list[int] | tuple[int, ...] | set[int]") -> int:
        """The mask with exactly the given bit positions set."""
        mask = 0
        for i in ids:
            mask |= 1 << i
        return mask

    @staticmethod
    def bits(mask: int) -> Iterator[int]:
        """Set bit positions of ``mask``, ascending."""
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    @staticmethod
    def has(mask: int, i: int) -> bool:
        return bool(mask >> i & 1)

    @staticmethod
    def count(mask: int) -> int:
        return mask.bit_count()


class InternTable:
    """A bijective item ↔ dense-int-id table, ids assigned in call order."""

    __slots__ = ("_ids", "_items")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._items: list[Any] = []

    def intern(self, item: Hashable) -> int:
        """The id of ``item``, assigning the next dense id on first sight."""
        ids = self._ids
        found = ids.get(item)
        if found is not None:
            return found
        new = len(self._items)
        ids[item] = new
        self._items.append(item)
        _obs.incr("intern.table_size")
        return new

    def get(self, item: Hashable) -> Optional[int]:
        """The id of ``item`` if already interned, else ``None`` (no growth)."""
        return self._ids.get(item)

    def mask(self, items) -> int:
        """The bitmask of the (interned) ids of ``items``."""
        mask = 0
        for item in items:
            mask |= 1 << self.intern(item)
        return mask

    def __getitem__(self, i: int) -> Any:
        return self._items[i]

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._ids

    def items(self) -> list[Any]:
        """All interned items, id order (index == id)."""
        return list(self._items)


#: Fixed ids of ⊤ and ⊥ in every :class:`ConceptTable`.
TOP_ID = 0
BOTTOM_ID = 1


class ConceptTable(InternTable):
    """An :class:`InternTable` with ⊤ pinned to id 0 and ⊥ to id 1."""

    __slots__ = ()

    def __init__(self) -> None:
        from .syntax import BOTTOM, TOP

        super().__init__()
        assert self.intern(TOP) == TOP_ID
        assert self.intern(BOTTOM) == BOTTOM_ID
