"""Negation normal form for DL concepts.

Pushes negation inward to atomic concepts using the standard dualities:
¬(C ⊓ D) ↝ ¬C ⊔ ¬D, ¬∃r.C ↝ ∀r.¬C, ¬≥n r.C ↝ ≤(n−1) r.C (and ⊥ for n=0),
¬≤n r.C ↝ ≥(n+1) r.C.  The tableau operates exclusively on NNF concepts.
"""

from __future__ import annotations

from ..obs import recorder as _obs
from .syntax import (
    BOTTOM,
    TOP,
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    Exists,
    Forall,
    Not,
    Or,
    _Bottom,
    _Top,
)


# Concepts are immutable and hashable, so NNF is a pure function of the
# (concept, polarity) pair — memoize it process-wide.  Classification
# negates the same named concepts thousands of times (every subsumption
# test builds ``specific ⊓ ¬general``); interning makes each conversion
# happen once and, as a byproduct, returns the *same* object for equal
# inputs, which keeps the reasoner's concept-keyed caches compact.
_CACHE_CAP = 65536
_nnf_cache: dict[tuple[Concept, bool], Concept] = {}


def nnf_cache_clear() -> None:
    """Drop the process-wide NNF interning cache (tests, memory pressure)."""
    _nnf_cache.clear()


def nnf_cache_size() -> int:
    return len(_nnf_cache)


def to_nnf(concept: Concept) -> Concept:
    """The negation normal form of ``concept``."""
    return _nnf(concept, positive=True)


def negate(concept: Concept) -> Concept:
    """The NNF of ¬``concept``."""
    return _nnf(concept, positive=False)


def _nnf(c: Concept, positive: bool) -> Concept:
    key = (c, positive)
    cached = _nnf_cache.get(key)
    if cached is not None:
        _obs.incr("nnf.cache_hits")
        return cached
    result = _nnf_compute(c, positive)
    if len(_nnf_cache) >= _CACHE_CAP:
        # FIFO eviction: dicts iterate in insertion order, so dropping the
        # first key retires the oldest entry.  A wholesale clear() here
        # used to throw away 65k warm entries to admit one.
        _nnf_cache.pop(next(iter(_nnf_cache)))
        _obs.incr("nnf.cache_evictions")
    _nnf_cache[key] = result
    return result


def _nnf_compute(c: Concept, positive: bool) -> Concept:
    if isinstance(c, Atomic):
        return c if positive else Not(c)
    if isinstance(c, _Top):
        return TOP if positive else BOTTOM
    if isinstance(c, _Bottom):
        return BOTTOM if positive else TOP
    if isinstance(c, Not):
        return _nnf(c.operand, not positive)
    if isinstance(c, And):
        parts = [_nnf(op, positive) for op in c.operands]
        return And.of(parts) if positive else Or.of(parts)
    if isinstance(c, Or):
        parts = [_nnf(op, positive) for op in c.operands]
        return Or.of(parts) if positive else And.of(parts)
    if isinstance(c, Exists):
        if positive:
            return Exists(c.role, _nnf(c.filler, True))
        return Forall(c.role, _nnf(c.filler, False))
    if isinstance(c, Forall):
        if positive:
            return Forall(c.role, _nnf(c.filler, True))
        return Exists(c.role, _nnf(c.filler, False))
    if isinstance(c, AtLeast):
        if positive:
            if c.n == 0:
                return TOP
            return AtLeast(c.n, c.role, _nnf(c.filler, True))
        if c.n == 0:
            return BOTTOM  # ¬(≥0 r.C) is unsatisfiable
        return AtMost(c.n - 1, c.role, _nnf(c.filler, True))
    if isinstance(c, AtMost):
        if positive:
            return AtMost(c.n, c.role, _nnf(c.filler, True))
        return AtLeast(c.n + 1, c.role, _nnf(c.filler, True))
    raise TypeError(f"unknown concept node {c!r}")


def is_nnf(concept: Concept) -> bool:
    """True iff negation occurs only directly on atomic concepts."""
    if isinstance(concept, (Atomic, _Top, _Bottom)):
        return True
    if isinstance(concept, Not):
        return isinstance(concept.operand, Atomic)
    if isinstance(concept, (And, Or)):
        return all(is_nnf(op) for op in concept.operands)
    if isinstance(concept, (Exists, Forall, AtLeast, AtMost)):
        return is_nnf(concept.filler)
    raise TypeError(f"unknown concept node {concept!r}")
