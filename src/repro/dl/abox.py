"""ABoxes: assertional axioms about named individuals.

An ABox pairs with a TBox to make a DL knowledge base; the ontology-backed
triple store (``repro.store.materialize``) converts triples into ABox
assertions and back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .syntax import Concept, DLSyntaxError, Role


@dataclass(frozen=True)
class ConceptAssertion:
    """``individual : concept``."""

    individual: str
    concept: Concept

    def __str__(self) -> str:
        return f"{self.individual} : {self.concept}"


@dataclass(frozen=True)
class RoleAssertion:
    """``(subject, object) : role``."""

    subject: str
    object: str
    role: Role

    def __str__(self) -> str:
        return f"({self.subject}, {self.object}) : {self.role}"


Assertion = ConceptAssertion | RoleAssertion


class ABox:
    """A finite set of assertions about named individuals."""

    def __init__(self, assertions: Iterable[Assertion] = ()) -> None:
        self.assertions: list[Assertion] = []
        for assertion in assertions:
            if not isinstance(assertion, (ConceptAssertion, RoleAssertion)):
                raise DLSyntaxError(f"not an ABox assertion: {assertion!r}")
            self.assertions.append(assertion)

    def __len__(self) -> int:
        return len(self.assertions)

    def __iter__(self) -> Iterator[Assertion]:
        return iter(self.assertions)

    def individuals(self) -> frozenset[str]:
        out: set[str] = set()
        for a in self.assertions:
            if isinstance(a, ConceptAssertion):
                out.add(a.individual)
            else:
                out.add(a.subject)
                out.add(a.object)
        return frozenset(out)

    def concept_assertions(self, individual: str | None = None) -> list[ConceptAssertion]:
        return [
            a
            for a in self.assertions
            if isinstance(a, ConceptAssertion)
            and (individual is None or a.individual == individual)
        ]

    def role_assertions(self, role: str | None = None) -> list[RoleAssertion]:
        return [
            a
            for a in self.assertions
            if isinstance(a, RoleAssertion) and (role is None or a.role.name == role)
        ]

    def extended(self, assertions: Iterable[Assertion]) -> "ABox":
        return ABox([*self.assertions, *assertions])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ABox({len(self.assertions)} assertions)"
