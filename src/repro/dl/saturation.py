"""Consequence-based saturation for the Horn/EL fragment.

Most real ontonomies — and every corpus in this repo — are dominated by
axioms of four shapes: ``A ⊑ B``, ``A ⊓ B ⊑ C``, ``A ⊑ ∃r.B``, and
``∃r.A ⊑ B``.  For that fragment subsumption is decidable *without
search*: normalize the TBox into rule tables over interned atom ids,
then run a worklist to a fixpoint, deriving

* ``S(A)`` — the bitmask of told-and-derived subsumers of each atom, and
* ``R(r)`` — the derived role edges ``(A, B)`` meaning ``A ⊑ ∃r.B``,

with the classic completion rules (Baader/Brandt/Lutz style)::

    CR1   A' ⊆ S(A), (⋀A' ⊑ B) ∈ T            →  B ∈ S(A)
    CR2   A' ⊆ S(A), (⋀A' ⊑ ∃r.B) ∈ T         →  (A,B) ∈ R(r)
    CR3   (A,B) ∈ R(r), B' ∈ S(B), (∃r.B' ⊑ C) ∈ T  →  C ∈ S(A)
    CR4   (A,B) ∈ R(r), ⊥ ∈ S(B)              →  ⊥ ∈ S(A)

``A ⊑ B`` then holds iff ``B ∈ S(A)`` or ``⊥ ∈ S(A)`` — one bit test.

Axioms outside the fragment (∀, ≤, ¬, ⊔ on the right, ≥n with n ≥ 2 on
the left) form the **residue**.  When the residue is empty the computed
``S`` is sound *and complete*, so classification needs zero tableau
tests; otherwise ``S`` stays sound (every derived subsumption is real)
and the caller routes undecided queries to the tableau per query
(counted as ``saturation.tableau_fallbacks``).  ``≥n r.C`` on the right
is weakened to ``∃r.C`` — sound always, and complete whenever the
residue is empty, because a canonical EL model can duplicate successors
freely with no ∀/≤ constraint to forbid it.

Complex fillers get fresh internal names (``⟨C⟩``) linked by axioms in
both directions, so nesting costs one atom per distinct subterm.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..obs import recorder as _obs
from .intern import BOTTOM_ID, TOP_ID, BitSet, InternTable
from .syntax import (
    And,
    AtLeast,
    AtMost,
    Atomic,
    Concept,
    Exists,
    Forall,
    Not,
    Or,
    _Bottom,
    _Top,
)
from .tbox import TBox

#: Interned names of ⊤ and ⊥ in every saturation's atom table (they
#: double as the hierarchy's virtual top/bottom node names).
TOP_NAME = "⊤"
BOTTOM_NAME = "⊥"

_TOP_BIT = 1 << TOP_ID
_BOTTOM_BIT = 1 << BOTTOM_ID


class Saturation:
    """Saturated Horn/EL consequences of a TBox, queryable in O(1).

    Build once per TBox revision (the reasoner caches one per epoch);
    the fixpoint runs lazily on first query.  ``complete`` tells the
    caller whether negative answers are trustworthy.
    """

    def __init__(self, tbox: TBox) -> None:
        self.tbox = tbox
        # atoms: ⊤=0, ⊥=1, then every named concept in sorted order so id
        # assignment is deterministic regardless of axiom order
        self.atoms = InternTable()
        assert self.atoms.intern(TOP_NAME) == TOP_ID
        assert self.atoms.intern(BOTTOM_NAME) == BOTTOM_ID
        self._named_mask = _TOP_BIT | _BOTTOM_BIT
        for name in sorted(tbox.atomic_names()):
            self._named_mask |= 1 << self.atoms.intern(name)
        self.roles = InternTable()
        #: axioms the EL normalizer could not (fully) translate
        self.residue: list = []
        # rule tables, all over interned ids:
        #   atom rules    trigger_atom -> [(premise_mask, rhs_atom)]
        #   exists rules  trigger_atom -> [(premise_mask, role, filler_atom)]
        #   lhs-exists    filler -> [(role, rhs)]  and  role -> [(filler, rhs)]
        self._atom_rules: dict[int, list[tuple[int, int]]] = {}
        self._exists_rules: dict[int, list[tuple[int, int, int]]] = {}
        self._lhs_by_filler: dict[int, list[tuple[int, int]]] = {}
        self._lhs_by_role: dict[int, list[tuple[int, int]]] = {}
        self._fresh: dict[object, int] = {}
        for gci in tbox.gcis():
            self._normalize(gci.lhs, gci.rhs)
        # saturation state, computed lazily
        self._S: Optional[list[int]] = None
        self._succ: dict[int, dict[int, int]] = {}
        self._pred: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------ #
    # normalization
    # ------------------------------------------------------------------ #

    @property
    def complete(self) -> bool:
        """True iff every axiom normalized — negative answers are exact."""
        return not self.residue

    def _atom_for(self, concept: Concept) -> int:
        """The atom id standing for ``concept`` (fresh name if complex).

        Fresh names are defined in both directions (``X ⊑ C`` via rules
        with X as premise, ``C ⊑ X`` via rules concluding X), so they are
        transparent: anything derived about the subterm flows through.
        """
        if isinstance(concept, Atomic):
            return self.atoms.intern(concept.name)
        if isinstance(concept, _Top):
            return TOP_ID
        if isinstance(concept, _Bottom):
            return BOTTOM_ID
        found = self._fresh.get(concept)
        if found is not None:
            return found
        fresh = self.atoms.intern(f"⟨{len(self._fresh)}⟩")
        self._fresh[concept] = fresh
        # X ⊑ C and C ⊑ X; recursion happens before rules reference `fresh`
        ok = self._norm_rhs(1 << fresh, concept)
        premises = self._lhs_premises(concept)
        if premises is None:
            ok = False
        else:
            for premise in premises:
                self._add_atom_rule(premise, fresh)
        if not ok:  # pragma: no cover - callers atomize EL-safe fillers only
            raise ValueError(f"cannot atomize non-EL subterm {concept!r}")
        return fresh

    def _add_atom_rule(self, premise_mask: int, rhs: int) -> None:
        rule = (premise_mask, rhs)
        for trigger in BitSet.bits(premise_mask):
            self._atom_rules.setdefault(trigger, []).append(rule)

    def _add_exists_rule(self, premise_mask: int, role: int, filler: int) -> None:
        rule = (premise_mask, role, filler)
        for trigger in BitSet.bits(premise_mask):
            self._exists_rules.setdefault(trigger, []).append(rule)

    def _lhs_premises(self, c: Concept) -> Optional[list[int]]:
        """Alternative premise masks for ``c`` on the left of ⊑.

        Returns a list of bitmasks — the axiom fires under *any* of them
        (⊔ on the left is Horn: split into one rule per disjunct).  An
        empty list means the LHS is unsatisfiable (axiom trivially
        valid); ``None`` means the shape is outside the fragment.
        """
        if isinstance(c, Atomic):
            return [1 << self.atoms.intern(c.name)]
        if isinstance(c, _Top):
            return [_TOP_BIT]
        if isinstance(c, _Bottom):
            return []
        if isinstance(c, Or):
            out: list[int] = []
            for op in c.operands:
                alts = self._lhs_premises(op)
                if alts is None:
                    return None
                out.extend(alts)
            return out
        if isinstance(c, And):
            # distribute: premises of a conjunction are the cross-products
            combos = [0]
            for op in c.operands:
                alts = self._lhs_premises(op)
                if alts is None:
                    return None
                combos = [base | alt for base in combos for alt in alts]
                if not combos:
                    return []
            return combos
        if isinstance(c, Exists) or (isinstance(c, AtLeast) and c.n == 1):
            # ∃r.C ⊑ … normalizes to C ⊑ Y, ∃r.Y ⊑ X (standard EL
            # structural transformation); only the C ⊑ Y direction is
            # needed for completeness of CR3
            found = self._fresh.get(c)
            if found is not None:
                return [1 << found]
            filler_alts = self._lhs_premises(c.filler)
            if filler_alts is None:
                return None
            role = self.roles.intern(c.role.name)
            fresh = self.atoms.intern(f"⟨∃{len(self._fresh)}:{c.role.name}⟩")
            self._fresh[c] = fresh
            for alt in filler_alts:
                if alt.bit_count() == 1:
                    filler_atom = alt.bit_length() - 1
                else:
                    conj_key = ("⊓", alt)
                    filler_atom = self._fresh.get(conj_key, -1)
                    if filler_atom < 0:
                        filler_atom = self.atoms.intern(f"⟨⊓{len(self._fresh)}⟩")
                        self._fresh[conj_key] = filler_atom
                        self._add_atom_rule(alt, filler_atom)
                self._lhs_by_filler.setdefault(filler_atom, []).append((role, fresh))
                self._lhs_by_role.setdefault(role, []).append((filler_atom, fresh))
            return [1 << fresh]
        # ≥n (n≥2), ∀, ≤, ¬ on the left are outside the Horn fragment
        return None

    def _norm_rhs(self, premise_mask: int, rhs: Concept) -> bool:
        """Register rules for ``premise ⊑ rhs``; False if outside EL."""
        if isinstance(rhs, Atomic):
            self._add_atom_rule(premise_mask, self.atoms.intern(rhs.name))
            return True
        if isinstance(rhs, _Bottom):
            self._add_atom_rule(premise_mask, BOTTOM_ID)
            return True
        if isinstance(rhs, _Top):
            return True  # vacuous
        if isinstance(rhs, And):
            ok = True
            for op in rhs.operands:
                ok &= self._norm_rhs(premise_mask, op)
            return ok
        if isinstance(rhs, Exists):
            if not _is_el(rhs.filler):
                return False
            role = self.roles.intern(rhs.role.name)
            self._add_exists_rule(premise_mask, role, self._atom_for(rhs.filler))
            return True
        if isinstance(rhs, AtLeast):
            if rhs.n == 0:
                return True  # ≥0 is ⊤
            if not _is_el(rhs.filler):
                return False
            # ≥n r.C ⊒ ∃r.C: sound weakening; complete when residue empty
            # (an EL canonical model duplicates successors at will)
            role = self.roles.intern(rhs.role.name)
            self._add_exists_rule(premise_mask, role, self._atom_for(rhs.filler))
            return rhs.n == 1 or self._note_weakened()
        # ∀, ≤, ¬, ⊔ on the right: not Horn
        return False

    def _note_weakened(self) -> bool:
        """≥n (n≥2) on the right was weakened to ∃ — record but don't residue.

        The weakening only loses completeness if some axiom could cap or
        constrain successors, and any such axiom lands in the residue on
        its own; so the ∃-approximation alone never flips ``complete``.
        """
        return True

    def _normalize(self, lhs: Concept, rhs: Concept) -> None:
        premises = self._lhs_premises(lhs)
        if premises is None:
            self.residue.append((lhs, rhs))
            return
        ok = True
        for premise in premises:
            # partial emission is sound: every rule we *do* register is a
            # genuine consequence; the residue routing restores completeness
            ok &= self._norm_rhs(premise, rhs)
        if not ok:
            self.residue.append((lhs, rhs))

    # ------------------------------------------------------------------ #
    # the fixpoint
    # ------------------------------------------------------------------ #

    def _saturate(self) -> list[int]:
        if self._S is not None:
            return self._S
        with _obs.trace("saturation.saturate"):
            n = len(self.atoms)
            S = [0] * n
            work: deque = deque()
            for a in range(n):
                S[a] = (1 << a) | _TOP_BIT
                work.append((a, a))
                if a != TOP_ID:
                    work.append((a, TOP_ID))
            succ = self._succ
            pred = self._pred
            fired = 0

            def add(a: int, b: int) -> None:
                if not S[a] >> b & 1:
                    S[a] |= 1 << b
                    work.append((a, b))

            def add_edge(a: int, r: int, b: int) -> None:
                by_role = succ.setdefault(r, {})
                if by_role.get(a, 0) >> b & 1:
                    return
                by_role[a] = by_role.get(a, 0) | 1 << b
                by_pred = pred.setdefault(r, {})
                by_pred[b] = by_pred.get(b, 0) | 1 << a
                work.append((a, r, b))

            while work:
                item = work.popleft()
                if len(item) == 2:
                    a, x = item
                    sa = S[a]
                    # CR1: conjunction rules triggered by x
                    for premise, rhs in self._atom_rules.get(x, ()):
                        if premise & ~sa:
                            continue
                        fired += 1
                        add(a, rhs)
                    # CR2: existential introductions triggered by x
                    for premise, role, filler in self._exists_rules.get(x, ()):
                        if premise & ~sa:
                            continue
                        fired += 1
                        add_edge(a, role, filler)
                    # CR3 (new subsumer side): x ∈ S(a) and ∃r.x ⊑ c with
                    # some predecessor p of a via r
                    for role, rhs in self._lhs_by_filler.get(x, ()):
                        mask = self._pred.get(role, {}).get(a, 0)
                        for p in BitSet.bits(mask):
                            fired += 1
                            add(p, rhs)
                    # CR4 (⊥ side): a became unsatisfiable — poison preds
                    if x == BOTTOM_ID:
                        for role_preds in list(pred.values()):
                            mask = role_preds.get(a, 0)
                            for p in BitSet.bits(mask):
                                fired += 1
                                add(p, BOTTOM_ID)
                else:
                    a, r, b = item
                    # CR3 (new edge side)
                    sb = S[b]
                    for filler, rhs in self._lhs_by_role.get(r, ()):
                        if sb >> filler & 1:
                            fired += 1
                            add(a, rhs)
                    # CR4 (new edge side)
                    if sb & _BOTTOM_BIT:
                        fired += 1
                        add(a, BOTTOM_ID)
            _obs.incr("saturation.rules_fired", fired)
            self._S = S
        return self._S

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def subsumers_of(self, name: str) -> int:
        """The subsumer bitmask S(name) over this table's atom ids."""
        S = self._saturate()
        i = self.atoms.get(name)
        if i is None:
            # name absent from the TBox: it behaves like a fresh atom, so
            # its subsumers are exactly ⊤'s (global axioms like ⊤ ⊑ A
            # still apply to it)
            return S[TOP_ID]
        return S[i]

    def named_mask(self) -> int:
        """Bits of ⊤, ⊥ and every TBox-named atom (no fresh names)."""
        return self._named_mask

    def subsumes_names(self, specific: str, general: str) -> Optional[bool]:
        """Does ``specific ⊑ general`` hold?  ``None`` = can't tell.

        True is always trustworthy.  False is only returned when the
        residue is empty; with residue present an underived subsumption
        might still follow from the non-Horn axioms, so we answer None
        and the caller falls back to the tableau.
        """
        if specific == general:
            return True
        S = self._saturate()
        i = self.atoms.get(specific)
        j = self.atoms.get(general)
        # an unknown specific behaves like a fresh atom: its subsumers
        # are ⊤'s consequences (⊤ ⊑ A reaches it too)
        si = S[i] if i is not None else S[TOP_ID]
        if si & _BOTTOM_BIT:
            return True  # unsatisfiable LHS is below everything
        if j is not None and si >> j & 1:
            return True
        return False if self.complete else None

    def satisfiable(self, name: str) -> Optional[bool]:
        """Satisfiability of an atom; None when the residue blocks a 'yes'."""
        S = self._saturate()
        i = self.atoms.get(name)
        if i is None:
            i = TOP_ID  # unknown atoms inherit exactly ⊤'s consequences
        if S[i] & _BOTTOM_BIT:
            return False  # sound: derived ⊥ is real
        return True if self.complete else None


def _is_el(c: Concept) -> bool:
    """True iff ``c`` is a positive EL concept (⊤/⊥/atoms/⊓/∃/≥1)."""
    if isinstance(c, (Atomic, _Top, _Bottom)):
        return True
    if isinstance(c, And):
        return all(_is_el(op) for op in c.operands)
    if isinstance(c, Exists):
        return _is_el(c.filler)
    if isinstance(c, AtLeast):
        return c.n <= 1 and _is_el(c.filler)
    if isinstance(c, (Or, Not, Forall, AtMost)):
        return False
    return False
