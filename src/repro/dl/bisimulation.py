"""Bisimulation between DL interpretations.

The model-theoretic face of the paper's structural-meaning argument: two
elements are *bisimilar* when no amount of ALC structure can tell them
apart — same atomic concepts, and matching role moves in both directions
of the zig-zag.  The classical invariance theorem (ALC concepts cannot
distinguish bisimilar elements) is property-tested in ``tests/dl``;
number restrictions break it, and the test suite shows the exact
counterexample shape, which is *why* the paper's diagram (7) — pure
arrows, no counting — identifies even more than CAR with DOG.

Implementation: simultaneous partition refinement over the disjoint
union of the two interpretations (the same engine as WL color
refinement, specialized to model elements).
"""

from __future__ import annotations

from typing import Hashable

from .interpretation import Interpretation
from .syntax import (
    And,
    Atomic,
    Concept,
    Exists,
    Forall,
    Not,
    Or,
    _Bottom,
    _Top,
)


def bisimulation_classes(
    m1: Interpretation, m2: Interpretation
) -> dict[tuple[int, Hashable], int]:
    """The coarsest bisimulation partition of the two models' elements.

    Returns a map ``(side, element) → class id`` where side 1 tags
    elements of ``m1`` and side 2 of ``m2``.  Equal ids mean bisimilar.
    """
    atomic_names = sorted(set(m1.concepts) | set(m2.concepts))
    role_names = sorted(set(m1.roles) | set(m2.roles))
    elements = [(1, e) for e in sorted(m1.domain, key=repr)] + [
        (2, e) for e in sorted(m2.domain, key=repr)
    ]

    def model(side: int) -> Interpretation:
        return m1 if side == 1 else m2

    # initial colors: the atomic profile
    colors: dict[tuple[int, Hashable], tuple] = {}
    for side, element in elements:
        m = model(side)
        profile = tuple(
            element in m.concepts.get(name, frozenset()) for name in atomic_names
        )
        colors[(side, element)] = profile

    # refine: the multiset (as a set — image finiteness makes set enough
    # for bisimulation, unlike counting bisimulation) of successor colors
    # per role, forward only (DL roles are directed; ALC has no inverses)
    for _ in range(len(elements)):
        signatures: dict[tuple[int, Hashable], tuple] = {}
        for side, element in elements:
            m = model(side)
            per_role = []
            for role in role_names:
                successor_colors = frozenset(
                    colors[(side, s)] for s in m.successors(element, role)
                )
                per_role.append(successor_colors)
            signatures[(side, element)] = (colors[(side, element)], tuple(per_role))
        if len(set(signatures.values())) == len(set(colors.values())):
            # refinement is monotone: an equal class count means no block
            # split this round, so the partition is stable
            colors = signatures
            break
        colors = signatures
    # compress to small ids
    palette = {color: i for i, color in enumerate(sorted(set(colors.values()), key=repr))}
    return {key: palette[color] for key, color in colors.items()}


def are_bisimilar(
    m1: Interpretation,
    e1: Hashable,
    m2: Interpretation,
    e2: Hashable,
) -> bool:
    """True iff ``e1`` (in ``m1``) and ``e2`` (in ``m2``) are bisimilar."""
    classes = bisimulation_classes(m1, m2)
    return classes[(1, e1)] == classes[(2, e2)]


def is_alc_concept(concept: Concept) -> bool:
    """True iff ``concept`` uses only ALC constructors (no counting).

    Bisimulation invariance holds exactly for this fragment; ≥/≤ can
    count what the zig-zag cannot.
    """
    if isinstance(concept, (Atomic, _Top, _Bottom)):
        return True
    if isinstance(concept, Not):
        return is_alc_concept(concept.operand)
    if isinstance(concept, (And, Or)):
        return all(is_alc_concept(op) for op in concept.operands)
    if isinstance(concept, (Exists, Forall)):
        return is_alc_concept(concept.filler)
    return False  # AtLeast / AtMost
