"""TBox classification: the inferred concept hierarchy.

Computes the subsumption partial order over the named concepts of a TBox
(plus ⊤ and ⊥) and exposes it as a :class:`repro.order.Poset`.  Told
subsumers from definitorial axioms seed the order; the remaining pairs go
through the tableau.  Equivalent names are grouped before the poset is
built, so antisymmetry holds by construction.
"""

from __future__ import annotations

from typing import Iterable

from ..obs import recorder as _obs
from ..order import Poset
from .reasoner import Reasoner
from .syntax import Atomic, Concept
from .tbox import TBox

TOP_NAME = "⊤"
BOTTOM_NAME = "⊥"


class ConceptHierarchy:
    """The classified hierarchy of a TBox.

    ``poset`` orders equivalence-class representatives (sorted name of
    each group); ``group_of`` maps every name to its representative.
    """

    def __init__(
        self,
        tbox: TBox,
        *,
        reasoner: Reasoner | None = None,
        use_told_subsumers: bool = True,
    ) -> None:
        self.tbox = tbox
        self.reasoner = reasoner or Reasoner(tbox)
        names = sorted(tbox.atomic_names())
        _obs.incr("hierarchy.classifications")
        _obs.incr("hierarchy.sat_checks", len(names))
        self._satisfiable = {
            name: self.reasoner.is_satisfiable(Atomic(name)) for name in names
        }

        # told subsumers: syntactic A ⊑ ... ⊓ B ⊓ ... axioms give b ⊒ a
        # without a tableau call (sound; the tableau fills in the rest)
        told_up = _told_subsumers(tbox) if use_told_subsumers else {}
        self.told_hits = 0

        # subsumption matrix over satisfiable names (unsat names ≡ ⊥)
        live = [n for n in names if self._satisfiable[n]]
        subsumes: dict[tuple[str, str], bool] = {}
        for a in live:
            for b in live:
                if a == b:
                    continue
                if a in told_up.get(b, ()):  # told: b ⊑ a
                    subsumes[(a, b)] = True
                    self.told_hits += 1
                    _obs.incr("hierarchy.told_hits")
                    continue
                _obs.incr("hierarchy.tableau_subsumptions")
                subsumes[(a, b)] = self.reasoner.subsumes(Atomic(a), Atomic(b))

        # group equivalent names
        groups: list[list[str]] = []
        assigned: dict[str, int] = {}
        for name in live:
            placed = False
            for i, group in enumerate(groups):
                representative = group[0]
                if subsumes.get((representative, name)) and subsumes.get((name, representative)):
                    group.append(name)
                    assigned[name] = i
                    placed = True
                    break
            if not placed:
                assigned[name] = len(groups)
                groups.append([name])
        self._groups = [sorted(g) for g in groups]
        self.group_of: dict[str, str] = {}
        for group in self._groups:
            for name in group:
                self.group_of[name] = group[0]
        for name in names:
            if not self._satisfiable[name]:
                self.group_of[name] = BOTTOM_NAME
        self.group_of[TOP_NAME] = TOP_NAME
        self.group_of[BOTTOM_NAME] = BOTTOM_NAME

        representatives = [g[0] for g in self._groups]
        pairs = [
            (a, b)
            for a in representatives
            for b in representatives
            if a != b and subsumes[(b, a)]  # b subsumes a: a ≤ b
        ]
        # ⊤ above everything, ⊥ below everything
        elements = [BOTTOM_NAME, *representatives, TOP_NAME]
        pairs += [(BOTTOM_NAME, rep) for rep in representatives]
        pairs += [(rep, TOP_NAME) for rep in representatives]
        pairs.append((BOTTOM_NAME, TOP_NAME))
        self.poset = Poset(elements, pairs)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def equivalents(self, name: str) -> frozenset[str]:
        """All names equivalent to ``name`` (including itself)."""
        rep = self.group_of.get(name)
        if rep == BOTTOM_NAME:
            return frozenset(
                n for n, sat in self._satisfiable.items() if not sat
            )
        for group in self._groups:
            if name in group:
                return frozenset(group)
        raise KeyError(f"unknown concept name {name!r}")

    def parents(self, name: str) -> frozenset[str]:
        """Direct (covering) subsumers of ``name``'s group."""
        rep = self.group_of[name]
        return frozenset(b for a, b in self.poset.covers() if a == rep)

    def children(self, name: str) -> frozenset[str]:
        """Direct (covered) subsumees of ``name``'s group."""
        rep = self.group_of[name]
        return frozenset(a for a, b in self.poset.covers() if b == rep)

    def ancestors(self, name: str) -> frozenset[str]:
        rep = self.group_of[name]
        return self.poset.up_set(rep) - {rep}

    def descendants(self, name: str) -> frozenset[str]:
        rep = self.group_of[name]
        return self.poset.down_set(rep) - {rep}

    def is_subsumed_by(self, specific: str, general: str) -> bool:
        return self.poset.leq(self.group_of[specific], self.group_of[general])

    def pretty(self) -> str:
        """An indented tree rendering (duplicating DAG nodes per parent)."""
        lines: list[str] = []

        def walk(rep: str, depth: int) -> None:
            group = [g for g in self._groups if g[0] == rep]
            shown = " ≡ ".join(group[0]) if group else rep
            lines.append("  " * depth + shown)
            for child in sorted(self.children(rep) - {BOTTOM_NAME}):
                walk(child, depth + 1)

        walk(TOP_NAME, 0)
        return "\n".join(lines)


def _told_subsumers(tbox: TBox) -> dict[str, frozenset[str]]:
    """The reflexive–transitive closure of syntactic subsumers.

    For every axiom ``A ⊑ C`` (or ``A ≡ C``) with atomic ``A``, each
    atomic top-level conjunct ``B`` of ``C`` is a *told* subsumer of
    ``A``.  Returns name → all told subsumers (including itself).
    """
    from .syntax import And

    direct: dict[str, set[str]] = {n: set() for n in tbox.atomic_names()}
    for gci in tbox.gcis():
        if not isinstance(gci.lhs, Atomic):
            continue
        conjuncts = gci.rhs.operands if isinstance(gci.rhs, And) else (gci.rhs,)
        for conjunct in conjuncts:
            if isinstance(conjunct, Atomic):
                direct[gci.lhs.name].add(conjunct.name)
    closure: dict[str, frozenset[str]] = {}
    for name in direct:
        seen = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for parent in direct.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        closure[name] = frozenset(seen)
    return closure


def classify(tbox: TBox, *, use_told_subsumers: bool = True) -> ConceptHierarchy:
    """Classify ``tbox`` and return its inferred hierarchy."""
    return ConceptHierarchy(tbox, use_told_subsumers=use_told_subsumers)
