"""TBox classification: the inferred concept hierarchy.

Computes the subsumption partial order over the named concepts of a TBox
(plus ⊤ and ⊥) and exposes it as a :class:`repro.order.Poset`.

Four algorithms are available:

``algorithm="auto"`` (the default) resolves to ``"saturation"`` when the
TBox normalizes entirely into the Horn/EL fragment and the run is not
budget-governed or seeded, and to ``"enhanced"`` otherwise.

``algorithm="saturation"`` classifies from the consequence-based
completion of :mod:`repro.dl.saturation`.  With an empty non-Horn
residue the whole hierarchy is read directly off the saturated subsumer
bitsets — zero tableau tests.  With residue present, it runs the
enhanced traversal with the saturation as a *subsumption oracle*:
queries the oracle can answer definitively never open a tableau, the
rest fall back per query (counted as ``saturation.tableau_fallbacks``).

``algorithm="enhanced"`` is insertion-based *enhanced-traversal*
classification in the tradition of Baader, Hollunder, Nebel &
Profitlich: concepts are inserted one at a time, a *top search* from ⊤
finds the most specific subsumers and a *bottom search* from ⊥ finds the
most general subsumees.  Told subsumers seed both searches, and
transitivity of the partial order propagates both positive and negative
answers, so most candidate pairs never reach the tableau — every avoided
test shows up in the ``hierarchy.pruned_tests`` counter (told-seeded
answers keep their own ``hierarchy.told_hits``).  The traversal state is
interned: DAG nodes carry dense int ids, parents/children/closures are
int bitmasks (:mod:`repro.dl.intern`), so the transitivity and
negative-propagation bookkeeping is bitwise.

``algorithm="brute"`` is the original O(n²) pairwise subsumption matrix,
kept as a correctness oracle; Hypothesis property tests assert all
algorithms produce identical hierarchies over random TBoxes.

Equivalent names are grouped before the poset is built, so antisymmetry
holds by construction; a named concept equivalent to ⊤ joins ⊤'s group,
unsatisfiable names join ⊥'s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..obs import recorder as _obs
from ..order import Poset
from ..robust import Budget
from .intern import BOTTOM_ID, TOP_ID, BitSet, InternTable
from .reasoner import Reasoner
from .syntax import And, Atomic, Concept, TOP, _Top
from .tbox import TBox

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .saturation import Saturation

TOP_NAME = "⊤"
BOTTOM_NAME = "⊥"

_ALGORITHMS = ("auto", "enhanced", "brute", "saturation")


@dataclass
class HierarchySeed:
    """Pre-positioned structure for incremental (re)classification.

    Produced by :mod:`repro.dl.incremental` from a previously classified
    hierarchy: the cover DAG, equivalence groups, ⊤-members and
    unsatisfiable names of the *unaffected* portion, plus the ``insert``
    list of names to (re)position via enhanced traversal.  Every edge of
    the seeded DAG is reused verbatim — only inserted names pay tableau
    tests.  ``parents``/``children`` map group representatives (with
    :data:`TOP_NAME` and :data:`BOTTOM_NAME` included) to their direct
    covers, exactly the invariant the insertion algorithm maintains.
    """

    parents: dict[str, set[str]] = field(
        default_factory=lambda: {TOP_NAME: set(), BOTTOM_NAME: {TOP_NAME}}
    )
    children: dict[str, set[str]] = field(
        default_factory=lambda: {TOP_NAME: {BOTTOM_NAME}, BOTTOM_NAME: set()}
    )
    groups: dict[str, list[str]] = field(default_factory=dict)
    top_members: list[str] = field(default_factory=list)
    unsatisfiable: frozenset[str] = frozenset()
    insert: list[str] = field(default_factory=list)


class ConceptHierarchy:
    """The classified hierarchy of a TBox.

    ``poset`` orders equivalence-class representatives (sorted name of
    each group); ``group_of`` maps every name to its representative.
    Satisfied counters: ``told_hits`` (answers seeded from told
    subsumers), ``pruned_tests`` (answers derived from the partial order
    already built, enhanced algorithm only), ``tableau_tests``
    (subsumption questions that actually went to the reasoner),
    ``oracle_hits`` (questions the saturation oracle settled).

    ``algorithm`` records the *resolved* algorithm: a construction with
    ``"auto"`` ends up reading ``"saturation"`` or ``"enhanced"`` here.

    With a :class:`repro.robust.Budget`, every subsumption and
    satisfiability question runs governed under a per-query
    :meth:`~repro.robust.Budget.child` ledger.  An UNKNOWN answer is
    treated conservatively (no subsumption edge is asserted, the name is
    not pushed to ⊥) and the unresolved ``(specific, general)`` name pair
    is recorded in :attr:`incomplete` — classification always finishes
    with a best-effort partial hierarchy instead of raising.
    """

    def __init__(
        self,
        tbox: TBox,
        *,
        reasoner: Reasoner | None = None,
        use_told_subsumers: bool = True,
        algorithm: str = "enhanced",
        budget: Budget | None = None,
        seed: HierarchySeed | None = None,
    ) -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown classification algorithm {algorithm!r}; "
                f"expected one of {_ALGORITHMS}"
            )
        if seed is not None and algorithm not in ("enhanced", "auto"):
            raise ValueError(
                "incremental (seeded) classification requires the "
                "enhanced algorithm"
            )
        self.tbox = tbox
        self.reasoner = reasoner or Reasoner(tbox)
        self.told_hits = 0
        self.pruned_tests = 0
        self.tableau_tests = 0
        self.oracle_hits = 0
        self._budget = budget
        #: (specific, general) name pairs whose subsumption question
        #: exhausted its budget; empty means the hierarchy is definite
        self.incomplete: set[tuple[str, str]] = set()
        self._satisfiable: dict[str, bool] = {}
        self._oracle: Optional["Saturation"] = None

        # "auto" resolves against the TBox shape: saturation classifies
        # a pure-EL TBox outright, but a budgeted run must stay on the
        # governed tableau path (so exhaustion can be reported per pair)
        # and a seeded run is by construction an enhanced insertion.
        if algorithm == "auto":
            if (
                seed is None
                and budget is None
                and self.reasoner.saturation().complete
            ):
                algorithm = "saturation"
            else:
                algorithm = "enhanced"
        self.algorithm = algorithm

        # the saturation oracle serves explicit saturation runs (hybrid
        # when residue remains) and seeded incremental runs; the pure
        # "enhanced" and "brute" baselines stay tableau-driven
        if algorithm == "saturation" or seed is not None:
            self._oracle = self.reasoner.saturation()

        names = sorted(tbox.atomic_names())
        _obs.incr("hierarchy.classifications")
        told_up = _told_subsumers(tbox) if use_told_subsumers else {}

        with _obs.trace(f"hierarchy.classify.{algorithm}"):
            if algorithm == "brute":
                groups, edges, top_members = self._classify_brute(names, told_up)
            elif (
                algorithm == "saturation"
                and self._oracle.complete
                and seed is None
                and budget is None
            ):
                groups, edges, top_members = self._classify_saturation(names)
            else:
                groups, edges, top_members = self._classify_enhanced(
                    names, told_up, seed=seed
                )

        # shared finalization: lexicographic-minimum representatives,
        # group_of for every name (⊤-equivalents to ⊤, unsatisfiable to ⊥),
        # and the poset over representatives
        relabel = {TOP_NAME: TOP_NAME, BOTTOM_NAME: BOTTOM_NAME}
        for node, group in groups.items():
            relabel[node] = min(group)
        self._groups = sorted((sorted(g) for g in groups.values()), key=lambda g: g[0])
        self._top_members = sorted(top_members)
        self.group_of: dict[str, str] = {}
        for group in self._groups:
            for name in group:
                self.group_of[name] = group[0]
        for name in names:
            if not self._satisfiable.get(name, True):
                self.group_of[name] = BOTTOM_NAME
        for name in self._top_members:
            self.group_of[name] = TOP_NAME
        self.group_of[TOP_NAME] = TOP_NAME
        self.group_of[BOTTOM_NAME] = BOTTOM_NAME

        representatives = [g[0] for g in self._groups]
        elements = [BOTTOM_NAME, *representatives, TOP_NAME]
        pairs = [(relabel[low], relabel[high]) for low, high in edges]
        # ⊤ above everything, ⊥ below everything (redundant pairs are
        # harmless: the poset closes transitively)
        pairs += [(BOTTOM_NAME, rep) for rep in representatives]
        pairs += [(rep, TOP_NAME) for rep in representatives]
        pairs.append((BOTTOM_NAME, TOP_NAME))
        self.poset = Poset(elements, pairs)

    # ------------------------------------------------------------------ #
    # subsumption / satisfiability questions (oracle, then tableau)
    # ------------------------------------------------------------------ #

    def _oracle_answer(self, general: Concept, specific: Concept) -> Optional[bool]:
        general_name = _oracle_name(general)
        specific_name = _oracle_name(specific)
        if general_name is None or specific_name is None:
            return None
        return self._oracle.subsumes_names(specific_name, general_name)

    def _tableau_subsumes(self, general: Concept, specific: Concept) -> bool:
        if self._oracle is not None:
            answer = self._oracle_answer(general, specific)
            if answer is not None:
                self.oracle_hits += 1
                _obs.incr("hierarchy.oracle_hits")
                return answer
            _obs.incr("saturation.tableau_fallbacks")
        self.tableau_tests += 1
        _obs.incr("hierarchy.tableau_subsumptions")
        if self._budget is None:
            return self.reasoner.subsumes(general, specific)
        verdict = self.reasoner.subsumes_governed(
            general, specific, self._budget.child()
        )
        if verdict.is_unknown:
            _obs.incr("hierarchy.unknown_edges")
            self.incomplete.add((_name_of(specific), _name_of(general)))
            return False  # conservative: assert no edge we cannot prove
        return verdict.as_bool()

    def _check_satisfiable(self, name: str) -> bool:
        if self._oracle is not None:
            answer = self._oracle.satisfiable(name)
            if answer is not None:
                self.oracle_hits += 1
                _obs.incr("hierarchy.oracle_hits")
                return answer
            _obs.incr("saturation.tableau_fallbacks")
        _obs.incr("hierarchy.sat_checks")
        if self._budget is None:
            return self.reasoner.is_satisfiable(Atomic(name))
        verdict = self.reasoner.is_satisfiable_governed(
            Atomic(name), self._budget.child()
        )
        if verdict.is_unknown:
            _obs.incr("hierarchy.unknown_edges")
            # "is name ⊑ ⊥?" is what exhausted: record it, keep the name live
            self.incomplete.add((name, BOTTOM_NAME))
            return True
        return verdict.as_bool()

    def _told_hit(self) -> None:
        self.told_hits += 1
        _obs.incr("hierarchy.told_hits")

    def _pruned(self) -> None:
        self.pruned_tests += 1
        _obs.incr("hierarchy.pruned_tests")

    # ------------------------------------------------------------------ #
    # classification algorithms
    # ------------------------------------------------------------------ #

    def _classify_saturation(
        self, names: list[str]
    ) -> tuple[dict[str, list[str]], list[tuple[str, str]], list[str]]:
        """Read the hierarchy directly off the saturated subsumer bitsets.

        Only reachable when the non-Horn residue is empty, where the
        saturation is sound *and complete*: ``a ⊑ b`` iff b's bit is in
        S(a).  Equivalence classes are groups with identical named
        subsumer masks, unsatisfiable names carry the ⊥ bit, and
        ⊤-equivalents appear in S(⊤).  No tableau test is ever run.
        """
        sat = self._oracle
        atoms = sat.atoms
        named = sat.named_mask()
        bottom_bit = 1 << BOTTOM_ID
        s_top = sat.subsumers_of(TOP_NAME)

        top_members: list[str] = []
        groups_by_mask: dict[int, list[str]] = {}
        for name in names:  # sorted: group members accumulate sorted
            subsumers = sat.subsumers_of(name) & named
            if subsumers & bottom_bit:
                self._satisfiable[name] = False
                continue
            self._satisfiable[name] = True
            atom = atoms.get(name)
            if atom is not None and s_top >> atom & 1:
                top_members.append(name)
                continue
            groups_by_mask.setdefault(subsumers, []).append(name)

        groups = {members[0]: members for members in groups_by_mask.values()}
        rep_of: dict[int, str] = {}
        for rep, members in groups.items():
            for member in members:
                atom = atoms.get(member)
                if atom is not None:
                    rep_of[atom] = rep
        edges: list[tuple[str, str]] = []
        skip = (1 << TOP_ID) | bottom_bit
        for mask, members in groups_by_mask.items():
            rep = members[0]
            for atom in BitSet.bits(mask & ~skip):
                other = rep_of.get(atom)
                if other is not None and other != rep:
                    edges.append((rep, other))
        return groups, edges, top_members

    def _classify_brute(
        self, names: list[str], told_up: dict[str, frozenset[str]]
    ) -> tuple[dict[str, list[str]], list[tuple[str, str]], list[str]]:
        """The original full pairwise subsumption matrix."""
        for name in names:
            self._satisfiable[name] = self._check_satisfiable(name)

        live = [n for n in names if self._satisfiable[n]]
        subsumes: dict[tuple[str, str], bool] = {}
        for a in live:
            for b in live:
                if a == b:
                    continue
                if a in told_up.get(b, ()):  # told: b ⊑ a
                    subsumes[(a, b)] = True
                    self._told_hit()
                    continue
                subsumes[(a, b)] = self._tableau_subsumes(Atomic(a), Atomic(b))

        # group equivalent names
        grouped: list[list[str]] = []
        for name in live:
            for group in grouped:
                rep = group[0]
                if subsumes.get((rep, name)) and subsumes.get((name, rep)):
                    group.append(name)
                    break
            else:
                grouped.append([name])
        groups = {group[0]: group for group in grouped}
        representatives = list(groups)
        edges = [
            (a, b)
            for a in representatives
            for b in representatives
            if a != b and subsumes[(b, a)]  # b subsumes a: a ≤ b
        ]

        # a representative that subsumes every other one may be ⊤ itself;
        # one extra tableau question settles it
        top_members: list[str] = []
        maxima = [
            r
            for r in representatives
            if all(subsumes[(r, x)] for x in representatives if x != r)
        ]
        if maxima:
            (candidate,) = maxima[:1]
            if self._tableau_subsumes(Atomic(candidate), TOP):
                top_members = groups.pop(candidate)
                edges = [(a, b) for a, b in edges if candidate not in (a, b)]
        return groups, edges, top_members

    def _classify_enhanced(
        self,
        names: list[str],
        told_up: dict[str, frozenset[str]],
        seed: HierarchySeed | None = None,
    ) -> tuple[dict[str, list[str]], list[tuple[str, str]], list[str]]:
        """Insertion classification with top/bottom enhanced traversal.

        DAG nodes are interned to dense ids (⊤ = 0, ⊥ = 1, then group
        representatives in creation order); ``parents``/``children`` and
        every closure/memo structure are int bitmasks, so transitivity
        and negative propagation are single bitwise operations.

        With a :class:`HierarchySeed`, the DAG starts from the seed's
        already-positioned structure and only ``seed.insert`` names are
        (re)inserted; every seeded edge and group membership is reused
        without a tableau call.
        """
        told_down: dict[str, set[str]] = {}
        for name, ups in told_up.items():
            for up in ups:
                if up != name:
                    told_down.setdefault(up, set()).add(name)

        # the growing DAG over interned group nodes, ⊤ at the top (id 0),
        # ⊥ at the bottom (id 1)
        nodes = InternTable()
        top_id = nodes.intern(TOP_NAME)
        bot_id = nodes.intern(BOTTOM_NAME)
        parents: dict[int, int] = {top_id: 0, bot_id: 1 << top_id}
        children: dict[int, int] = {top_id: 1 << bot_id, bot_id: 0}
        groups: dict[int, list[str]] = {}
        node_of: dict[str, int] = {}  # inserted name -> its group's node id
        top_members: list[str] = []
        if seed is None:
            to_insert = names
        else:
            for node in sorted(seed.parents):
                nodes.intern(node)  # deterministic id assignment
            for node, ps in seed.parents.items():
                parents[nodes.intern(node)] = BitSet.of(
                    nodes.intern(p) for p in ps
                )
            for node, cs in seed.children.items():
                children[nodes.intern(node)] = BitSet.of(
                    nodes.intern(c) for c in cs
                )
            for rep, members in seed.groups.items():
                rep_id = nodes.intern(rep)
                groups[rep_id] = list(members)
                for member in members:
                    node_of[member] = rep_id
                    self._satisfiable[member] = True
            top_members = list(seed.top_members)
            for member in top_members:
                node_of[member] = top_id
                self._satisfiable[member] = True
            for name in seed.unsatisfiable:
                node_of[name] = bot_id
                self._satisfiable[name] = False
            insert_set = set(seed.insert)
            to_insert = [n for n in names if n in insert_set]

        def up_closure(mask: int) -> int:
            out = 0
            frontier = mask
            while frontier:
                low = frontier & -frontier
                frontier ^= low
                out |= low
                frontier |= parents[low.bit_length() - 1] & ~out
            return out

        def down_closure(mask: int) -> int:
            out = 0
            frontier = mask
            while frontier:
                low = frontier & -frontier
                frontier ^= low
                out |= low
                frontier |= children[low.bit_length() - 1] & ~out
            return out

        for name in _insertion_order(to_insert, told_up):
            concept = Atomic(name)

            if self.reasoner.known_satisfiability(concept) is False:
                self._satisfiable[name] = False
                node_of[name] = bot_id
                continue
            told_mask = 0
            for t in told_up.get(name, ()):
                if t != name and t in node_of:
                    told_mask |= 1 << node_of[t]
            if told_mask >> bot_id & 1:
                # a told subsumer is unsatisfiable, so this name is too
                self._satisfiable[name] = False
                self._pruned()
                node_of[name] = bot_id
                continue
            # positive information: told subsumers and, by transitivity,
            # everything the DAG already places above them
            known_pos = up_closure(told_mask)

            # --- top search: most specific subsumers ----------------- #
            subsumer_memo: dict[int, bool] = {top_id: True}

            def subsumer(node: int) -> bool:
                """Does ``node`` subsume the concept being inserted?"""
                cached = subsumer_memo.get(node)
                if cached is not None:
                    return cached
                if known_pos >> node & 1:
                    subsumer_memo[node] = True
                    self._told_hit()
                    return True
                # a subsumer's ancestors all subsume too: one negative
                # parent settles this node without a tableau call
                mask = parents[node]
                while mask:
                    low = mask & -mask
                    mask ^= low
                    if not subsumer(low.bit_length() - 1):
                        subsumer_memo[node] = False
                        self._pruned()
                        return False
                result = self._tableau_subsumes(Atomic(nodes[node]), concept)
                subsumer_memo[node] = result
                return result

            most_specific = 0
            visited = 0

            def descend(node: int) -> None:
                nonlocal most_specific, visited
                visited |= 1 << node
                positive = []
                mask = children[node] & ~(1 << bot_id)
                while mask:
                    low = mask & -mask
                    mask ^= low
                    child = low.bit_length() - 1
                    if subsumer(child):
                        positive.append(child)
                if not positive:
                    most_specific |= 1 << node
                    return
                for child in positive:
                    if not visited >> child & 1:
                        descend(child)

            descend(top_id)

            # satisfiability after the top search: a failed subsumption
            # test has already witnessed satisfiability, so this is
            # usually a (cross-seeded) cache hit
            if not self._check_satisfiable(name):
                self._satisfiable[name] = False
                node_of[name] = bot_id
                continue
            self._satisfiable[name] = True

            # --- bottom search: most general subsumees --------------- #
            told_sub_mask = 0
            for d in told_down.get(name, ()):
                if d in node_of and node_of[d] != bot_id:
                    told_sub_mask |= 1 << node_of[d]
            known_sub = down_closure(told_sub_mask)
            # subsumees live below every subsumer of the new concept;
            # -1 is the all-ones mask: no restriction
            allowed = -1
            if most_specific != 1 << top_id:
                mask = most_specific
                while mask:
                    low = mask & -mask
                    mask ^= low
                    allowed &= down_closure(low)
            subsumee_memo: dict[int, bool] = {bot_id: True}

            def subsumee(node: int) -> bool:
                """Is ``node`` subsumed by the concept being inserted?"""
                cached = subsumee_memo.get(node)
                if cached is not None:
                    return cached
                if not allowed >> node & 1:
                    subsumee_memo[node] = False
                    self._pruned()
                    return False
                if known_sub >> node & 1:
                    subsumee_memo[node] = True
                    self._told_hit()
                    return True
                # a subsumee's descendants are all subsumed too: one
                # negative child settles this node without a tableau call
                mask = children[node]
                while mask:
                    low = mask & -mask
                    mask ^= low
                    if not subsumee(low.bit_length() - 1):
                        subsumee_memo[node] = False
                        self._pruned()
                        return False
                node_concept = TOP if node == top_id else Atomic(nodes[node])
                result = self._tableau_subsumes(concept, node_concept)
                subsumee_memo[node] = result
                return result

            most_general = 0
            bottom_visited = 0

            def ascend(node: int) -> None:
                nonlocal most_general, bottom_visited
                bottom_visited |= 1 << node
                positive = []
                mask = parents[node]
                while mask:
                    low = mask & -mask
                    mask ^= low
                    parent = low.bit_length() - 1
                    if subsumee(parent):
                        positive.append(parent)
                if not positive:
                    most_general |= 1 << node
                    return
                for parent in positive:
                    if not bottom_visited >> parent & 1:
                        ascend(parent)

            ascend(bot_id)

            # --- insert ---------------------------------------------- #
            equivalent = most_specific & most_general
            if equivalent:
                node = (equivalent & -equivalent).bit_length() - 1
                if node == top_id:
                    top_members.append(name)
                else:
                    groups[node].append(name)
                node_of[name] = node
                continue
            new_id = nodes.intern(name)
            for parent in BitSet.bits(most_specific):
                children[parent] = (children[parent] & ~most_general) | (
                    1 << new_id
                )
            for child in BitSet.bits(most_general):
                parents[child] = (parents[child] & ~most_specific) | (
                    1 << new_id
                )
            parents[new_id] = most_specific
            children[new_id] = most_general
            groups[new_id] = [name]
            node_of[name] = new_id

        edges = []
        for node, mask in parents.items():
            if node == top_id:
                continue
            node_name = nodes[node]
            for parent in BitSet.bits(mask):
                edges.append((node_name, nodes[parent]))
        return (
            {nodes[node]: members for node, members in groups.items()},
            edges,
            top_members,
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def complete(self) -> bool:
        """True iff no subsumption question exhausted its budget."""
        return not self.incomplete

    def groups(self) -> frozenset[frozenset[str]]:
        """All equivalence classes of satisfiable, non-⊤ names."""
        return frozenset(frozenset(g) for g in self._groups)

    def top_equivalents(self) -> frozenset[str]:
        """Named concepts the TBox forces to be equivalent to ⊤."""
        return frozenset(self._top_members)

    def equivalents(self, name: str) -> frozenset[str]:
        """All names equivalent to ``name`` (including itself).

        ``name`` may be a named concept, ``⊤``, or ``⊥``; the classes of
        the synthetic top/bottom include their marker, so
        ``equivalents("⊤")`` is ``{"⊤"}`` plus any ⊤-equivalent names and
        ``equivalents("⊥")`` is ``{"⊥"}`` plus the unsatisfiable names.
        """
        rep = self.group_of.get(name)
        if rep is None:
            raise KeyError(f"unknown concept name {name!r}")
        if rep == TOP_NAME:
            return frozenset({TOP_NAME, *self._top_members})
        if rep == BOTTOM_NAME:
            return frozenset(
                {BOTTOM_NAME, *(n for n, sat in self._satisfiable.items() if not sat)}
            )
        for group in self._groups:
            if group[0] == rep:
                return frozenset(group)
        raise KeyError(f"unknown concept name {name!r}")  # pragma: no cover

    def parents(self, name: str) -> frozenset[str]:
        """Direct (covering) subsumers of ``name``'s group."""
        rep = self.group_of[name]
        return frozenset(b for a, b in self.poset.covers() if a == rep)

    def children(self, name: str) -> frozenset[str]:
        """Direct (covered) subsumees of ``name``'s group."""
        rep = self.group_of[name]
        return frozenset(a for a, b in self.poset.covers() if b == rep)

    def ancestors(self, name: str) -> frozenset[str]:
        rep = self.group_of[name]
        return self.poset.up_set(rep) - {rep}

    def descendants(self, name: str) -> frozenset[str]:
        rep = self.group_of[name]
        return self.poset.down_set(rep) - {rep}

    def is_subsumed_by(self, specific: str, general: str) -> bool:
        return self.poset.leq(self.group_of[specific], self.group_of[general])

    def pretty(self) -> str:
        """An indented tree rendering (duplicating DAG nodes per parent)."""
        lines: list[str] = []

        def walk(rep: str, depth: int) -> None:
            if rep == TOP_NAME and self._top_members:
                shown = " ≡ ".join([TOP_NAME, *self._top_members])
            else:
                group = [g for g in self._groups if g[0] == rep]
                shown = " ≡ ".join(group[0]) if group else rep
            lines.append("  " * depth + shown)
            for child in sorted(self.children(rep) - {BOTTOM_NAME}):
                walk(child, depth + 1)

        walk(TOP_NAME, 0)
        return "\n".join(lines)


def _name_of(concept: Concept) -> str:
    """The display name of a classification query operand."""
    if isinstance(concept, Atomic):
        return concept.name
    if isinstance(concept, _Top):
        return TOP_NAME
    return str(concept)


def _oracle_name(concept: Concept) -> Optional[str]:
    """The saturation-table name of a query operand, if it has one."""
    if isinstance(concept, Atomic):
        return concept.name
    if isinstance(concept, _Top):
        return TOP_NAME
    return None


def _insertion_order(
    names: list[str], told_up: dict[str, frozenset[str]]
) -> list[str]:
    """Names ordered so told subsumers come before their subsumees.

    Inserting a concept after its told subsumers lets the top search
    start from seeded positives.  Told cycles (mutual told subsumption)
    are broken deterministically at the smallest remaining name.
    """
    remaining = set(names)
    order: list[str] = []
    while remaining:
        ready = sorted(
            name
            for name in remaining
            if not ((told_up.get(name, frozenset()) - {name}) & remaining)
        )
        if not ready:  # told cycle
            ready = [min(remaining)]
        for name in ready:
            order.append(name)
            remaining.discard(name)
    return order


def _told_subsumers(tbox: TBox) -> dict[str, frozenset[str]]:
    """The reflexive–transitive closure of syntactic subsumers.

    For every axiom ``A ⊑ C`` (or ``A ≡ C``) with atomic ``A``, each
    atomic top-level conjunct ``B`` of ``C`` is a *told* subsumer of
    ``A``.  Returns name → all told subsumers (including itself).

    The closure runs over bitmasks: names get dense ids, direct told
    edges become per-name masks, and the fixpoint is pure mask ORing.
    """
    names = sorted(tbox.atomic_names())
    index = {name: i for i, name in enumerate(names)}
    direct = [0] * len(names)
    for gci in tbox.gcis():
        if not isinstance(gci.lhs, Atomic):
            continue
        conjuncts = gci.rhs.operands if isinstance(gci.rhs, And) else (gci.rhs,)
        i = index[gci.lhs.name]
        for conjunct in conjuncts:
            if isinstance(conjunct, Atomic):
                direct[i] |= 1 << index[conjunct.name]
    masks = [direct[i] | (1 << i) for i in range(len(names))]
    changed = True
    while changed:
        changed = False
        for i, mask in enumerate(masks):
            acc = mask
            scan = direct[i]
            while scan:
                low = scan & -scan
                scan ^= low
                acc |= masks[low.bit_length() - 1]
            if acc != mask:
                masks[i] = acc
                changed = True
    return {
        name: frozenset(names[b] for b in BitSet.bits(masks[index[name]]))
        for name in names
    }


def classify(
    tbox: TBox,
    *,
    use_told_subsumers: bool = True,
    algorithm: str = "auto",
    reasoner: Reasoner | None = None,
    budget: Budget | None = None,
) -> ConceptHierarchy:
    """Classify ``tbox`` and return its inferred hierarchy.

    The default ``algorithm="auto"`` reads the whole hierarchy off the
    Horn/EL saturation when the TBox normalizes completely (no tableau
    tests at all) and falls back to enhanced traversal otherwise;
    ``"saturation"`` forces the consequence-based path (hybrid with
    per-query tableau fallback when a non-Horn residue remains);
    ``"brute"`` selects the original pairwise subsumption matrix.  A
    ``budget`` makes classification governed: it never raises on
    exhaustion, recording unresolved edges in
    :attr:`ConceptHierarchy.incomplete` instead.
    """
    return ConceptHierarchy(
        tbox,
        use_told_subsumers=use_told_subsumers,
        algorithm=algorithm,
        reasoner=reasoner,
        budget=budget,
    )
