"""TBox classification: the inferred concept hierarchy.

Computes the subsumption partial order over the named concepts of a TBox
(plus ⊤ and ⊥) and exposes it as a :class:`repro.order.Poset`.

Two algorithms are available:

``algorithm="enhanced"`` (the default) is insertion-based
*enhanced-traversal* classification in the tradition of Baader,
Hollunder, Nebel & Profitlich: concepts are inserted one at a time, a
*top search* from ⊤ finds the most specific subsumers and a *bottom
search* from ⊥ finds the most general subsumees.  Told subsumers seed
both searches, and transitivity of the partial order propagates both
positive and negative answers, so most candidate pairs never reach the
tableau — every avoided test shows up in the ``hierarchy.pruned_tests``
counter (told-seeded answers keep their own ``hierarchy.told_hits``).

``algorithm="brute"`` is the original O(n²) pairwise subsumption matrix,
kept as a correctness oracle; a Hypothesis property test asserts the two
algorithms produce identical hierarchies over random TBoxes.

Equivalent names are grouped before the poset is built, so antisymmetry
holds by construction; a named concept equivalent to ⊤ joins ⊤'s group,
unsatisfiable names join ⊥'s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import recorder as _obs
from ..order import Poset
from ..robust import Budget
from .reasoner import Reasoner
from .syntax import Atomic, Concept, TOP, _Top
from .tbox import TBox

TOP_NAME = "⊤"
BOTTOM_NAME = "⊥"

_ALGORITHMS = ("enhanced", "brute")


@dataclass
class HierarchySeed:
    """Pre-positioned structure for incremental (re)classification.

    Produced by :mod:`repro.dl.incremental` from a previously classified
    hierarchy: the cover DAG, equivalence groups, ⊤-members and
    unsatisfiable names of the *unaffected* portion, plus the ``insert``
    list of names to (re)position via enhanced traversal.  Every edge of
    the seeded DAG is reused verbatim — only inserted names pay tableau
    tests.  ``parents``/``children`` map group representatives (with
    :data:`TOP_NAME` and :data:`BOTTOM_NAME` included) to their direct
    covers, exactly the invariant the insertion algorithm maintains.
    """

    parents: dict[str, set[str]] = field(
        default_factory=lambda: {TOP_NAME: set(), BOTTOM_NAME: {TOP_NAME}}
    )
    children: dict[str, set[str]] = field(
        default_factory=lambda: {TOP_NAME: {BOTTOM_NAME}, BOTTOM_NAME: set()}
    )
    groups: dict[str, list[str]] = field(default_factory=dict)
    top_members: list[str] = field(default_factory=list)
    unsatisfiable: frozenset[str] = frozenset()
    insert: list[str] = field(default_factory=list)


class ConceptHierarchy:
    """The classified hierarchy of a TBox.

    ``poset`` orders equivalence-class representatives (sorted name of
    each group); ``group_of`` maps every name to its representative.
    Satisfied counters: ``told_hits`` (answers seeded from told
    subsumers), ``pruned_tests`` (answers derived from the partial order
    already built, enhanced algorithm only), ``tableau_tests``
    (subsumption questions that actually went to the reasoner).

    With a :class:`repro.robust.Budget`, every subsumption and
    satisfiability question runs governed under a per-query
    :meth:`~repro.robust.Budget.child` ledger.  An UNKNOWN answer is
    treated conservatively (no subsumption edge is asserted, the name is
    not pushed to ⊥) and the unresolved ``(specific, general)`` name pair
    is recorded in :attr:`incomplete` — classification always finishes
    with a best-effort partial hierarchy instead of raising.
    """

    def __init__(
        self,
        tbox: TBox,
        *,
        reasoner: Reasoner | None = None,
        use_told_subsumers: bool = True,
        algorithm: str = "enhanced",
        budget: Budget | None = None,
        seed: HierarchySeed | None = None,
    ) -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown classification algorithm {algorithm!r}; "
                f"expected one of {_ALGORITHMS}"
            )
        if seed is not None and algorithm != "enhanced":
            raise ValueError(
                "incremental (seeded) classification requires the "
                "enhanced algorithm"
            )
        self.tbox = tbox
        self.reasoner = reasoner or Reasoner(tbox)
        self.algorithm = algorithm
        self.told_hits = 0
        self.pruned_tests = 0
        self.tableau_tests = 0
        self._budget = budget
        #: (specific, general) name pairs whose subsumption question
        #: exhausted its budget; empty means the hierarchy is definite
        self.incomplete: set[tuple[str, str]] = set()
        self._satisfiable: dict[str, bool] = {}
        names = sorted(tbox.atomic_names())
        _obs.incr("hierarchy.classifications")
        told_up = _told_subsumers(tbox) if use_told_subsumers else {}

        with _obs.trace(f"hierarchy.classify.{algorithm}"):
            if algorithm == "brute":
                groups, edges, top_members = self._classify_brute(names, told_up)
            else:
                groups, edges, top_members = self._classify_enhanced(
                    names, told_up, seed=seed
                )

        # shared finalization: lexicographic-minimum representatives,
        # group_of for every name (⊤-equivalents to ⊤, unsatisfiable to ⊥),
        # and the poset over representatives
        relabel = {TOP_NAME: TOP_NAME, BOTTOM_NAME: BOTTOM_NAME}
        for node, group in groups.items():
            relabel[node] = min(group)
        self._groups = sorted((sorted(g) for g in groups.values()), key=lambda g: g[0])
        self._top_members = sorted(top_members)
        self.group_of: dict[str, str] = {}
        for group in self._groups:
            for name in group:
                self.group_of[name] = group[0]
        for name in names:
            if not self._satisfiable.get(name, True):
                self.group_of[name] = BOTTOM_NAME
        for name in self._top_members:
            self.group_of[name] = TOP_NAME
        self.group_of[TOP_NAME] = TOP_NAME
        self.group_of[BOTTOM_NAME] = BOTTOM_NAME

        representatives = [g[0] for g in self._groups]
        elements = [BOTTOM_NAME, *representatives, TOP_NAME]
        pairs = [(relabel[low], relabel[high]) for low, high in edges]
        # ⊤ above everything, ⊥ below everything (redundant pairs are
        # harmless: the poset closes transitively)
        pairs += [(BOTTOM_NAME, rep) for rep in representatives]
        pairs += [(rep, TOP_NAME) for rep in representatives]
        pairs.append((BOTTOM_NAME, TOP_NAME))
        self.poset = Poset(elements, pairs)

    # ------------------------------------------------------------------ #
    # classification algorithms
    # ------------------------------------------------------------------ #

    def _tableau_subsumes(self, general: Concept, specific: Concept) -> bool:
        self.tableau_tests += 1
        _obs.incr("hierarchy.tableau_subsumptions")
        if self._budget is None:
            return self.reasoner.subsumes(general, specific)
        verdict = self.reasoner.subsumes_governed(
            general, specific, self._budget.child()
        )
        if verdict.is_unknown:
            _obs.incr("hierarchy.unknown_edges")
            self.incomplete.add((_name_of(specific), _name_of(general)))
            return False  # conservative: assert no edge we cannot prove
        return verdict.as_bool()

    def _check_satisfiable(self, name: str) -> bool:
        _obs.incr("hierarchy.sat_checks")
        if self._budget is None:
            return self.reasoner.is_satisfiable(Atomic(name))
        verdict = self.reasoner.is_satisfiable_governed(
            Atomic(name), self._budget.child()
        )
        if verdict.is_unknown:
            _obs.incr("hierarchy.unknown_edges")
            # "is name ⊑ ⊥?" is what exhausted: record it, keep the name live
            self.incomplete.add((name, BOTTOM_NAME))
            return True
        return verdict.as_bool()

    def _told_hit(self) -> None:
        self.told_hits += 1
        _obs.incr("hierarchy.told_hits")

    def _pruned(self) -> None:
        self.pruned_tests += 1
        _obs.incr("hierarchy.pruned_tests")

    def _classify_brute(
        self, names: list[str], told_up: dict[str, frozenset[str]]
    ) -> tuple[dict[str, list[str]], list[tuple[str, str]], list[str]]:
        """The original full pairwise subsumption matrix."""
        for name in names:
            self._satisfiable[name] = self._check_satisfiable(name)

        live = [n for n in names if self._satisfiable[n]]
        subsumes: dict[tuple[str, str], bool] = {}
        for a in live:
            for b in live:
                if a == b:
                    continue
                if a in told_up.get(b, ()):  # told: b ⊑ a
                    subsumes[(a, b)] = True
                    self._told_hit()
                    continue
                subsumes[(a, b)] = self._tableau_subsumes(Atomic(a), Atomic(b))

        # group equivalent names
        grouped: list[list[str]] = []
        for name in live:
            for group in grouped:
                rep = group[0]
                if subsumes.get((rep, name)) and subsumes.get((name, rep)):
                    group.append(name)
                    break
            else:
                grouped.append([name])
        groups = {group[0]: group for group in grouped}
        representatives = list(groups)
        edges = [
            (a, b)
            for a in representatives
            for b in representatives
            if a != b and subsumes[(b, a)]  # b subsumes a: a ≤ b
        ]

        # a representative that subsumes every other one may be ⊤ itself;
        # one extra tableau question settles it
        top_members: list[str] = []
        maxima = [
            r
            for r in representatives
            if all(subsumes[(r, x)] for x in representatives if x != r)
        ]
        if maxima:
            (candidate,) = maxima[:1]
            if self._tableau_subsumes(Atomic(candidate), TOP):
                top_members = groups.pop(candidate)
                edges = [(a, b) for a, b in edges if candidate not in (a, b)]
        return groups, edges, top_members

    def _classify_enhanced(
        self,
        names: list[str],
        told_up: dict[str, frozenset[str]],
        seed: HierarchySeed | None = None,
    ) -> tuple[dict[str, list[str]], list[tuple[str, str]], list[str]]:
        """Insertion classification with top/bottom enhanced traversal.

        With a :class:`HierarchySeed`, the DAG starts from the seed's
        already-positioned structure and only ``seed.insert`` names are
        (re)inserted; every seeded edge and group membership is reused
        without a tableau call.
        """
        told_down: dict[str, set[str]] = {}
        for name, ups in told_up.items():
            for up in ups:
                if up != name:
                    told_down.setdefault(up, set()).add(name)

        # the growing DAG over group nodes, ⊤ at the top, ⊥ at the bottom
        if seed is None:
            parents: dict[str, set[str]] = {TOP_NAME: set(), BOTTOM_NAME: {TOP_NAME}}
            children: dict[str, set[str]] = {
                TOP_NAME: {BOTTOM_NAME}, BOTTOM_NAME: set()
            }
            groups: dict[str, list[str]] = {}
            node_of: dict[str, str] = {}  # inserted name -> its group's node
            top_members: list[str] = []
            to_insert = names
        else:
            parents = {node: set(ps) for node, ps in seed.parents.items()}
            children = {node: set(cs) for node, cs in seed.children.items()}
            groups = {rep: list(members) for rep, members in seed.groups.items()}
            node_of = {}
            for rep, members in groups.items():
                for member in members:
                    node_of[member] = rep
                    self._satisfiable[member] = True
            top_members = list(seed.top_members)
            for member in top_members:
                node_of[member] = TOP_NAME
                self._satisfiable[member] = True
            for name in seed.unsatisfiable:
                node_of[name] = BOTTOM_NAME
                self._satisfiable[name] = False
            insert_set = set(seed.insert)
            to_insert = [n for n in names if n in insert_set]

        def up_closure(seeds: set[str]) -> set[str]:
            out: set[str] = set()
            stack = list(seeds)
            while stack:
                node = stack.pop()
                if node not in out:
                    out.add(node)
                    stack.extend(parents[node])
            return out

        def down_closure(seeds: set[str]) -> set[str]:
            out: set[str] = set()
            stack = list(seeds)
            while stack:
                node = stack.pop()
                if node not in out:
                    out.add(node)
                    stack.extend(children[node])
            return out

        for name in _insertion_order(to_insert, told_up):
            concept = Atomic(name)

            if self.reasoner.known_satisfiability(concept) is False:
                self._satisfiable[name] = False
                node_of[name] = BOTTOM_NAME
                continue
            told_nodes = {
                node_of[t]
                for t in told_up.get(name, ())
                if t != name and t in node_of
            }
            if BOTTOM_NAME in told_nodes:
                # a told subsumer is unsatisfiable, so this name is too
                self._satisfiable[name] = False
                self._pruned()
                node_of[name] = BOTTOM_NAME
                continue
            # positive information: told subsumers and, by transitivity,
            # everything the DAG already places above them
            known_pos = up_closure(told_nodes)

            # --- top search: most specific subsumers ----------------- #
            subsumer_memo: dict[str, bool] = {TOP_NAME: True}

            def subsumer(node: str) -> bool:
                """Does ``node`` subsume the concept being inserted?"""
                cached = subsumer_memo.get(node)
                if cached is not None:
                    return cached
                if node in known_pos:
                    subsumer_memo[node] = True
                    self._told_hit()
                    return True
                # a subsumer's ancestors all subsume too: one negative
                # parent settles this node without a tableau call
                for parent in sorted(parents[node]):
                    if not subsumer(parent):
                        subsumer_memo[node] = False
                        self._pruned()
                        return False
                result = self._tableau_subsumes(Atomic(node), concept)
                subsumer_memo[node] = result
                return result

            most_specific: set[str] = set()
            visited: set[str] = set()

            def descend(node: str) -> None:
                visited.add(node)
                positive = [
                    child
                    for child in sorted(children[node])
                    if child != BOTTOM_NAME and subsumer(child)
                ]
                if not positive:
                    most_specific.add(node)
                    return
                for child in positive:
                    if child not in visited:
                        descend(child)

            descend(TOP_NAME)

            # satisfiability after the top search: a failed subsumption
            # test has already witnessed satisfiability, so this is
            # usually a (cross-seeded) cache hit
            if not self._check_satisfiable(name):
                self._satisfiable[name] = False
                node_of[name] = BOTTOM_NAME
                continue
            self._satisfiable[name] = True

            # --- bottom search: most general subsumees --------------- #
            known_sub = down_closure(
                {
                    node_of[d]
                    for d in told_down.get(name, ())
                    if d in node_of and node_of[d] != BOTTOM_NAME
                }
            )
            # subsumees live below every subsumer of the new concept
            allowed = (
                None
                if most_specific == {TOP_NAME}
                else set.intersection(
                    *(down_closure({p}) for p in sorted(most_specific))
                )
            )
            subsumee_memo: dict[str, bool] = {BOTTOM_NAME: True}

            def subsumee(node: str) -> bool:
                """Is ``node`` subsumed by the concept being inserted?"""
                cached = subsumee_memo.get(node)
                if cached is not None:
                    return cached
                if allowed is not None and node not in allowed:
                    subsumee_memo[node] = False
                    self._pruned()
                    return False
                if node in known_sub:
                    subsumee_memo[node] = True
                    self._told_hit()
                    return True
                # a subsumee's descendants are all subsumed too: one
                # negative child settles this node without a tableau call
                for child in sorted(children[node]):
                    if not subsumee(child):
                        subsumee_memo[node] = False
                        self._pruned()
                        return False
                node_concept = TOP if node == TOP_NAME else Atomic(node)
                result = self._tableau_subsumes(concept, node_concept)
                subsumee_memo[node] = result
                return result

            most_general: set[str] = set()
            bottom_visited: set[str] = set()

            def ascend(node: str) -> None:
                bottom_visited.add(node)
                positive = [
                    parent for parent in sorted(parents[node]) if subsumee(parent)
                ]
                if not positive:
                    most_general.add(node)
                    return
                for parent in positive:
                    if parent not in bottom_visited:
                        ascend(parent)

            ascend(BOTTOM_NAME)

            # --- insert ---------------------------------------------- #
            equivalent = most_specific & most_general
            if equivalent:
                node = sorted(equivalent)[0]
                if node == TOP_NAME:
                    top_members.append(name)
                else:
                    groups[node].append(name)
                node_of[name] = node
                continue
            for parent in most_specific:
                for child in most_general:
                    children[parent].discard(child)
                    parents[child].discard(parent)
            parents[name] = set(most_specific)
            children[name] = set(most_general)
            for parent in most_specific:
                children[parent].add(name)
            for child in most_general:
                parents[child].add(name)
            groups[name] = [name]
            node_of[name] = name

        edges = [
            (node, parent)
            for node in parents
            if node != TOP_NAME
            for parent in parents[node]
        ]
        return groups, edges, top_members

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def complete(self) -> bool:
        """True iff no subsumption question exhausted its budget."""
        return not self.incomplete

    def groups(self) -> frozenset[frozenset[str]]:
        """All equivalence classes of satisfiable, non-⊤ names."""
        return frozenset(frozenset(g) for g in self._groups)

    def top_equivalents(self) -> frozenset[str]:
        """Named concepts the TBox forces to be equivalent to ⊤."""
        return frozenset(self._top_members)

    def equivalents(self, name: str) -> frozenset[str]:
        """All names equivalent to ``name`` (including itself).

        ``name`` may be a named concept, ``⊤``, or ``⊥``; the classes of
        the synthetic top/bottom include their marker, so
        ``equivalents("⊤")`` is ``{"⊤"}`` plus any ⊤-equivalent names and
        ``equivalents("⊥")`` is ``{"⊥"}`` plus the unsatisfiable names.
        """
        rep = self.group_of.get(name)
        if rep is None:
            raise KeyError(f"unknown concept name {name!r}")
        if rep == TOP_NAME:
            return frozenset({TOP_NAME, *self._top_members})
        if rep == BOTTOM_NAME:
            return frozenset(
                {BOTTOM_NAME, *(n for n, sat in self._satisfiable.items() if not sat)}
            )
        for group in self._groups:
            if group[0] == rep:
                return frozenset(group)
        raise KeyError(f"unknown concept name {name!r}")  # pragma: no cover

    def parents(self, name: str) -> frozenset[str]:
        """Direct (covering) subsumers of ``name``'s group."""
        rep = self.group_of[name]
        return frozenset(b for a, b in self.poset.covers() if a == rep)

    def children(self, name: str) -> frozenset[str]:
        """Direct (covered) subsumees of ``name``'s group."""
        rep = self.group_of[name]
        return frozenset(a for a, b in self.poset.covers() if b == rep)

    def ancestors(self, name: str) -> frozenset[str]:
        rep = self.group_of[name]
        return self.poset.up_set(rep) - {rep}

    def descendants(self, name: str) -> frozenset[str]:
        rep = self.group_of[name]
        return self.poset.down_set(rep) - {rep}

    def is_subsumed_by(self, specific: str, general: str) -> bool:
        return self.poset.leq(self.group_of[specific], self.group_of[general])

    def pretty(self) -> str:
        """An indented tree rendering (duplicating DAG nodes per parent)."""
        lines: list[str] = []

        def walk(rep: str, depth: int) -> None:
            if rep == TOP_NAME and self._top_members:
                shown = " ≡ ".join([TOP_NAME, *self._top_members])
            else:
                group = [g for g in self._groups if g[0] == rep]
                shown = " ≡ ".join(group[0]) if group else rep
            lines.append("  " * depth + shown)
            for child in sorted(self.children(rep) - {BOTTOM_NAME}):
                walk(child, depth + 1)

        walk(TOP_NAME, 0)
        return "\n".join(lines)


def _name_of(concept: Concept) -> str:
    """The display name of a classification query operand."""
    if isinstance(concept, Atomic):
        return concept.name
    if isinstance(concept, _Top):
        return TOP_NAME
    return str(concept)


def _insertion_order(
    names: list[str], told_up: dict[str, frozenset[str]]
) -> list[str]:
    """Names ordered so told subsumers come before their subsumees.

    Inserting a concept after its told subsumers lets the top search
    start from seeded positives.  Told cycles (mutual told subsumption)
    are broken deterministically at the smallest remaining name.
    """
    remaining = set(names)
    order: list[str] = []
    while remaining:
        ready = sorted(
            name
            for name in remaining
            if not ((told_up.get(name, frozenset()) - {name}) & remaining)
        )
        if not ready:  # told cycle
            ready = [min(remaining)]
        for name in ready:
            order.append(name)
            remaining.discard(name)
    return order


def _told_subsumers(tbox: TBox) -> dict[str, frozenset[str]]:
    """The reflexive–transitive closure of syntactic subsumers.

    For every axiom ``A ⊑ C`` (or ``A ≡ C``) with atomic ``A``, each
    atomic top-level conjunct ``B`` of ``C`` is a *told* subsumer of
    ``A``.  Returns name → all told subsumers (including itself).
    """
    from .syntax import And

    direct: dict[str, set[str]] = {n: set() for n in tbox.atomic_names()}
    for gci in tbox.gcis():
        if not isinstance(gci.lhs, Atomic):
            continue
        conjuncts = gci.rhs.operands if isinstance(gci.rhs, And) else (gci.rhs,)
        for conjunct in conjuncts:
            if isinstance(conjunct, Atomic):
                direct[gci.lhs.name].add(conjunct.name)
    closure: dict[str, frozenset[str]] = {}
    for name in direct:
        seen = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for parent in direct.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        closure[name] = frozenset(seen)
    return closure


def classify(
    tbox: TBox,
    *,
    use_told_subsumers: bool = True,
    algorithm: str = "enhanced",
    reasoner: Reasoner | None = None,
    budget: Budget | None = None,
) -> ConceptHierarchy:
    """Classify ``tbox`` and return its inferred hierarchy.

    ``algorithm="brute"`` selects the original pairwise subsumption
    matrix; the default enhanced traversal computes the same hierarchy
    with far fewer tableau calls.  A ``budget`` makes classification
    governed: it never raises on exhaustion, recording unresolved edges
    in :attr:`ConceptHierarchy.incomplete` instead.
    """
    return ConceptHierarchy(
        tbox,
        use_told_subsumers=use_told_subsumers,
        algorithm=algorithm,
        reasoner=reasoner,
        budget=budget,
    )
