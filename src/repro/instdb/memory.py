"""The in-memory reference backend: the ABox structures, indexed.

Semantically this is the list-backed :class:`repro.dl.ABox` the library
always had, re-shaped into the same indexes the SQL backend keeps —
by-individual, by-concept, and both role directions — so the
equivalence property tests can compare the two implementations row for
row.  Derived rows keep a per-``materialized_from`` support count:
invalidating one source decrements support and only drops the (ind,
concept) pair when no other source still justifies it, exactly like
deleting the SQL rows does.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..dl.intern import InternTable
from ..obs import recorder as _obs
from .backend import InstanceBackend


class MemoryBackend(InstanceBackend):
    """Dict-and-set indexes over interned ids; no durability."""

    kind = "memory"

    def __init__(self) -> None:
        self._individuals = InternTable()
        self._concepts = InternTable()
        self._roles = InternTable()
        # told concept assertions, both directions
        self._told_by_ind: dict[int, set[int]] = {}
        self._told_by_concept: dict[int, set[int]] = {}
        # derived rows: per-source row sets plus support-counted indexes
        self._derived_rows: dict[int, set[tuple[int, int]]] = {}
        self._support: dict[tuple[int, int], int] = {}
        self._derived_by_ind: dict[int, set[int]] = {}
        self._derived_by_concept: dict[int, set[int]] = {}
        # role assertions: (subject, role) -> objects and (object, role) -> subjects
        self._succ: dict[tuple[int, int], set[int]] = {}
        self._pred: dict[tuple[int, int], set[int]] = {}
        self._role_rows: set[tuple[int, int, int]] = set()

    # -- writes ---------------------------------------------------------- #

    def add_individual(self, name: str) -> int:
        known = self._individuals.get(name)
        if known is not None:
            return known
        _obs.incr("instdb.individuals")
        return self._individuals.intern(name)

    def assert_type(self, individual: str, concept: str) -> None:
        ind = self.add_individual(individual)
        cid = self._concepts.intern(concept)
        told = self._told_by_ind.setdefault(ind, set())
        if cid in told:
            return
        told.add(cid)
        self._told_by_concept.setdefault(cid, set()).add(ind)
        _obs.incr("instdb.told_assertions")

    def assert_role(self, subject: str, role: str, object: str) -> None:
        s = self.add_individual(subject)
        o = self.add_individual(object)
        r = self._roles.intern(role)
        if (s, r, o) in self._role_rows:
            return
        self._role_rows.add((s, r, o))
        self._succ.setdefault((s, r), set()).add(o)
        self._pred.setdefault((o, r), set()).add(s)
        _obs.incr("instdb.role_assertions")

    def insert_derived(self, source: str, derived: Iterable[str]) -> int:
        src = self._concepts.intern(source)
        members = self._told_by_concept.get(src, ())
        if not members:
            return 0
        rows = self._derived_rows.setdefault(src, set())
        added = 0
        for name in derived:
            cid = self._concepts.intern(name)
            for ind in members:
                row = (ind, cid)
                if row in rows:
                    continue
                rows.add(row)
                added += 1
                count = self._support.get(row, 0)
                self._support[row] = count + 1
                if count == 0:
                    self._derived_by_ind.setdefault(ind, set()).add(cid)
                    self._derived_by_concept.setdefault(cid, set()).add(ind)
        if added:
            _obs.incr("instdb.derived_rows", added)
        return added

    def delete_derived(self, sources: Optional[Iterable[str]] = None) -> int:
        if sources is None:
            src_ids = list(self._derived_rows)
        else:
            src_ids = [
                sid
                for name in sources
                if (sid := self._concepts.get(name)) is not None
            ]
        removed = 0
        for sid in src_ids:
            for row in self._derived_rows.pop(sid, ()):
                removed += 1
                remaining = self._support[row] - 1
                if remaining:
                    self._support[row] = remaining
                    continue
                del self._support[row]
                ind, cid = row
                self._derived_by_ind[ind].discard(cid)
                self._derived_by_concept[cid].discard(ind)
        if removed:
            _obs.incr("instdb.invalidated_rows", removed)
        return removed

    # -- indexed reads --------------------------------------------------- #

    def individuals(
        self, *, limit: Optional[int] = None, offset: int = 0
    ) -> list[str]:
        names = self._individuals.items()
        stop = None if limit is None else offset + limit
        return names[offset:stop]

    def individual_count(self) -> int:
        return len(self._individuals)

    def types(self, individual: str, *, derived: bool = True) -> frozenset[str]:
        _obs.incr("instdb.queries.types")
        ind = self._individuals.get(individual)
        if ind is None:
            return frozenset()
        ids = set(self._told_by_ind.get(ind, ()))
        if derived:
            ids |= self._derived_by_ind.get(ind, set())
        return frozenset(self._concepts[cid] for cid in ids)

    def instances(self, concept: str, *, limit: Optional[int] = None) -> list[str]:
        _obs.incr("instdb.queries.instances")
        cid = self._concepts.get(concept)
        if cid is None:
            return []
        ids = set(self._told_by_concept.get(cid, ()))
        ids |= self._derived_by_concept.get(cid, set())
        ordered = sorted(ids)
        if limit is not None:
            ordered = ordered[:limit]
        return [self._individuals[i] for i in ordered]

    def successors(self, subject: str, role: str) -> list[str]:
        _obs.incr("instdb.queries.roles")
        s = self._individuals.get(subject)
        r = self._roles.get(role)
        if s is None or r is None:
            return []
        return [self._individuals[o] for o in sorted(self._succ.get((s, r), ()))]

    def predecessors(self, object: str, role: str) -> list[str]:
        _obs.incr("instdb.queries.roles")
        o = self._individuals.get(object)
        r = self._roles.get(role)
        if o is None or r is None:
            return []
        return [self._individuals[s] for s in sorted(self._pred.get((o, r), ()))]

    def role_assertions(
        self, role: Optional[str] = None
    ) -> Iterator[tuple[str, str, str]]:
        rid = None if role is None else self._roles.get(role)
        if role is not None and rid is None:
            return
        for s, r, o in sorted(self._role_rows):
            if rid is not None and r != rid:
                continue
            yield self._individuals[s], self._roles[r], self._individuals[o]

    def told_concepts(self) -> list[str]:
        return [
            self._concepts[cid]
            for cid in sorted(self._told_by_concept)
            if self._told_by_concept[cid]
        ]

    def derived_sources(self) -> list[str]:
        return [
            self._concepts[sid]
            for sid in sorted(self._derived_rows)
            if self._derived_rows[sid]
        ]

    def counts(self) -> dict[str, int]:
        return {
            "individuals": len(self._individuals),
            "told": sum(len(v) for v in self._told_by_ind.values()),
            "derived": sum(len(v) for v in self._derived_rows.values()),
            "roles": len(self._role_rows),
        }
