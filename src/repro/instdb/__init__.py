"""Pluggable DB-backed instance store (``repro.instdb``).

Individuals, concept assertions, and role assertions behind a backend
ABC with indexed ``instances()`` / ``types()`` / role-neighbor reads,
hierarchy-propagated materialization with ``materialized_from``
provenance, and delta-bounded refresh after a TBox swap.  See
:mod:`repro.instdb.backend` for the contract, README "Instance store"
for the operator view.
"""

from .backend import (
    DERIVED,
    NO_SOURCE,
    TOLD,
    InstanceBackend,
    InstDBError,
    open_backend,
)
from .materialize import (
    TOP_SOURCE,
    MaterializeResult,
    closure_map,
    closure_of,
    materialize,
    refresh,
)
from .memory import MemoryBackend
from .sqlite import SqliteBackend
from .view import BackendTripleView

__all__ = [
    "InstanceBackend", "InstDBError", "open_backend",
    "MemoryBackend", "SqliteBackend", "BackendTripleView",
    "MaterializeResult", "materialize", "refresh",
    "closure_map", "closure_of",
    "TOLD", "DERIVED", "NO_SOURCE", "TOP_SOURCE",
]
