"""Hierarchy-propagated materialization into an instance backend.

The store-level materializer (:mod:`repro.store.materialize`) walks the
classified hierarchy *per individual*, with a tableau check per
undecided candidate — the right tool for small, role-rich ABoxes, and
a dead end at 10⁶ individuals.  At instance-store scale the workload
inverts: there are millions of individuals but only tens of distinct
*told* concepts, and every derived type of an individual whose
assertions are atomic told types is exactly the upward closure of those
told types in the hierarchy (told subsumption is free — the same
observation the store materializer exploits before its tableau walk).

So this materializer propagates **per told concept**, not per
individual: for each distinct told concept ``C`` it computes
``closure(C)`` — the equivalents of ``C`` and of every ancestor, minus
``C`` itself and ⊤/⊥ — once, and asks the backend for one set-based
``insert_derived(C, closure(C))``.  The sqlite backend turns that into
indexed ``INSERT .. SELECT`` statements; a million individuals cost as
many *row inserts*, but only ``(told concepts × closure size)``
statements.  The whole delta runs inside ONE backend transaction, in
per-source batches, so a crash mid-materialization leaves zero derived
rows, never a torso.

Every derived row records its ``materialized_from`` source, which is
what makes TBox swaps cheap: :func:`refresh` compares each told
concept's closure under the new hierarchy against the closure map the
previous materialization returned and re-derives **only the changed
sources** — the incremental-reclassify delta bounds which sources can
change, everything else is untouched rows.  ⊤-equivalent names (which
hold of *every* individual regardless of told types) are folded into
every source's closure, so they need no per-individual pass either.

Counters: ``instdb.materialize_runs``, ``instdb.refresh_runs``,
``instdb.refresh_sources`` (changed sources re-derived),
``instdb.refresh_skipped_sources`` (sources proven untouched).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dl import BOTTOM_NAME, TOP_NAME, ConceptHierarchy
from ..obs import recorder as _obs
from .backend import InstanceBackend

#: closure-map key for the ⊤-equivalent names every individual receives;
#: not a concept name (it cannot collide with one)
TOP_SOURCE = "⊤*"


@dataclass
class MaterializeResult:
    """One materialization (or refresh) delta, plus the closure map the
    *next* refresh diffs against."""

    derived_rows: int
    removed_rows: int = 0
    sources: list[str] = field(default_factory=list)
    skipped_sources: list[str] = field(default_factory=list)
    #: told concept -> the names derived from it (the provenance map);
    #: keep it with the backend's owner and hand it to :func:`refresh`
    closures: dict[str, frozenset[str]] = field(default_factory=dict)


def closure_of(hierarchy: ConceptHierarchy, name: str) -> frozenset[str]:
    """The names entailed for an individual told to be a ``name``.

    Equivalents of ``name`` and of every strict ancestor, minus the
    told name itself and the ⊤/⊥ sentinels.  Unknown names (told data
    ahead of the terminology) derive nothing.
    """
    rep = hierarchy.group_of.get(name)
    if rep is None or rep == BOTTOM_NAME:
        return frozenset()
    out: set[str] = set(hierarchy.equivalents(rep)) if rep != TOP_NAME else set()
    if rep != TOP_NAME:
        for ancestor in hierarchy.ancestors(rep):
            if ancestor not in (TOP_NAME, BOTTOM_NAME):
                out |= hierarchy.equivalents(ancestor)
    out |= hierarchy.top_equivalents()
    out.discard(name)
    out.discard(TOP_NAME)
    out.discard(BOTTOM_NAME)
    return frozenset(out)


def closure_map(
    hierarchy: ConceptHierarchy, told: list[str]
) -> dict[str, frozenset[str]]:
    """Per-source closures for ``told`` concepts, plus the ⊤ entry."""
    closures = {name: closure_of(hierarchy, name) for name in told}
    closures[TOP_SOURCE] = frozenset(
        hierarchy.top_equivalents() - {TOP_NAME, BOTTOM_NAME}
    )
    return closures


def materialize(
    backend: InstanceBackend, hierarchy: ConceptHierarchy
) -> MaterializeResult:
    """Full (re)materialization: drop every derived row, re-derive all.

    One transaction end to end; the per-source inserts are the delta
    batches inside it.
    """
    _obs.incr("instdb.materialize_runs")
    told = backend.told_concepts()
    closures = closure_map(hierarchy, told)
    result = MaterializeResult(0, closures=closures)
    with _obs.trace("instdb.materialize"), backend.transaction():
        result.removed_rows = backend.delete_derived()
        for source in told:
            derived = closures[source]
            if not derived:
                continue
            result.derived_rows += backend.insert_derived(source, sorted(derived))
            result.sources.append(source)
    return result


def refresh(
    backend: InstanceBackend,
    hierarchy: ConceptHierarchy,
    previous: dict[str, frozenset[str]],
    *,
    affected: frozenset[str] | None = None,
) -> MaterializeResult:
    """Re-derive only the sources the TBox swap actually moved.

    ``previous`` is the closure map of the materialization currently in
    the backend (``result.closures``); a source whose new closure equals
    its recorded one keeps all its rows untouched.  ``affected`` — the
    name set from the incremental-reclassify delta — is an optional
    pre-filter: a source absent from it whose old closure is disjoint
    from it cannot have moved (reclassification leaves every unaffected
    concept's ancestry alone), so its closure is not even recomputed.
    New told concepts (data loaded since the last run) are always
    candidates.
    """
    _obs.incr("instdb.refresh_runs")
    told = backend.told_concepts()
    new_top = frozenset(hierarchy.top_equivalents() - {TOP_NAME, BOTTOM_NAME})
    top_changed = previous.get(TOP_SOURCE) != new_top
    known = hierarchy.group_of.keys()

    result = MaterializeResult(0)
    changed: dict[str, frozenset[str]] = {}
    for source in told:
        old = previous.get(source)
        if (
            old is not None
            and not top_changed
            and affected is not None
            and source not in affected
            and not (old & affected)
            # the reclassify delta omits names *removed* from the
            # vocabulary — a closure referencing one must be recomputed
            and source in known
            and old <= known
        ):
            result.skipped_sources.append(source)
            result.closures[source] = old
            continue
        new = closure_of(hierarchy, source)
        result.closures[source] = new
        if new == old:
            result.skipped_sources.append(source)
        else:
            changed[source] = new
    result.closures[TOP_SOURCE] = new_top

    if changed:
        with _obs.trace("instdb.refresh"), backend.transaction():
            result.removed_rows = backend.delete_derived(sorted(changed))
            for source in sorted(changed):
                if changed[source]:
                    result.derived_rows += backend.insert_derived(
                        source, sorted(changed[source])
                    )
                result.sources.append(source)
    _obs.incr("instdb.refresh_sources", len(result.sources))
    _obs.incr("instdb.refresh_skipped_sources", len(result.skipped_sources))
    return result
