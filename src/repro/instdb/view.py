"""A triple-pattern view over an instance backend.

:func:`repro.store.query.match` only ever calls two methods on its
store — ``triples(s, p, o)`` and ``estimate(s, p, o)`` — so a backend
can serve basic graph patterns by presenting its indexed reads behind
that same duck type.  Concept assertions surface as ``(individual,
type, concept)`` triples (told *and* derived: the whole point of
materializing into the backend is that queries see the inferred types);
role assertions surface as ``(subject, role, object)``.

Every pattern with a bound position routes to an indexed backend read;
only the all-wildcard pattern enumerates (and a join almost never asks
for it — the selectivity planner orders it last).  ``estimate`` keeps
the planner honest with index-backed cardinalities.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from ..obs import recorder as _obs
from ..store.triples import Triple
from .backend import InstanceBackend


class BackendTripleView:
    """Read-only TripleStore duck type over an :class:`InstanceBackend`."""

    def __init__(
        self, backend: InstanceBackend, *, type_predicate: str = "type"
    ) -> None:
        self.backend = backend
        self.type_predicate = type_predicate

    def triples(
        self,
        subject: Optional[Hashable] = None,
        predicate: Optional[Hashable] = None,
        object: Optional[Hashable] = None,
    ) -> Iterator[Triple]:
        _obs.incr("instdb.view_lookups")
        type_p = self.type_predicate
        if predicate == type_p or predicate is None:
            yield from self._type_triples(subject, object)
        if predicate == type_p:
            return
        yield from self._role_triples(subject, predicate, object)

    def _type_triples(
        self, subject: Optional[Hashable], object: Optional[Hashable]
    ) -> Iterator[Triple]:
        type_p = self.type_predicate
        if subject is not None:
            names = self.backend.types(str(subject))
            if object is not None:
                if str(object) in names:
                    yield Triple(subject, type_p, object)
                return
            for name in sorted(names):
                yield Triple(subject, type_p, name)
            return
        if object is not None:
            for individual in self.backend.instances(str(object)):
                yield Triple(individual, type_p, object)
            return
        for individual in self.backend.individuals():
            for name in sorted(self.backend.types(individual)):
                yield Triple(individual, type_p, name)

    def _role_triples(
        self,
        subject: Optional[Hashable],
        predicate: Optional[Hashable],
        object: Optional[Hashable],
    ) -> Iterator[Triple]:
        if predicate is not None:
            if subject is not None:
                for o in self.backend.successors(str(subject), str(predicate)):
                    if object is None or o == object:
                        yield Triple(subject, predicate, o)
                return
            if object is not None:
                for s in self.backend.predecessors(str(object), str(predicate)):
                    yield Triple(s, predicate, object)
                return
            for s, r, o in self.backend.role_assertions(str(predicate)):
                yield Triple(s, r, o)
            return
        for s, r, o in self.backend.role_assertions():
            if subject is not None and s != subject:
                continue
            if object is not None and o != object:
                continue
            yield Triple(s, r, o)

    def estimate(
        self,
        subject: Optional[Hashable] = None,
        predicate: Optional[Hashable] = None,
        object: Optional[Hashable] = None,
    ) -> int:
        """Cheap cardinality bound for the selectivity planner."""
        counts = self.backend.counts()
        if predicate == self.type_predicate:
            if subject is not None:
                return len(self.backend.types(str(subject)))
            if object is not None:
                return len(self.backend.instances(str(object)))
            return counts["told"] + counts["derived"]
        if predicate is not None:
            if subject is not None:
                return len(self.backend.successors(str(subject), str(predicate)))
            if object is not None:
                return len(self.backend.predecessors(str(object), str(predicate)))
            return counts["roles"]
        return counts["told"] + counts["derived"] + counts["roles"]
