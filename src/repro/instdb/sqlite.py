"""The SQL instance backend: stdlib ``sqlite3`` in WAL mode.

The schema is three name dictionaries (``individuals`` / ``concepts`` /
``roles`` — id ↔ name, where the ids are the same dense first-seen
interned ids :mod:`repro.dl.intern` assigns, reloaded in id order on
open) plus two assertion tables::

    concept_assertions(individual_id, concept_id, source, materialized_from)
        PRIMARY KEY (individual_id, concept_id, source, materialized_from)
        INDEX       (concept_id, individual_id)
        INDEX       (materialized_from) WHERE source = 'derived'
    role_assertions(subject_id, role_id, object_id)
        PRIMARY KEY (subject_id, role_id, object_id)
        INDEX       (role_id, object_id, subject_id)

Everything is INTEGER/TEXT with composite B-tree indexes — the schema
is deliberately postgres-shaped (a drop-in swap needs only the
connection layer and ``INSERT OR IGNORE`` → ``ON CONFLICT DO
NOTHING``).  The point-lookup and range-read paths the interface
promises map one-to-one:

* ``types(i)`` — primary-key prefix seek on ``individual_id``;
* ``instances(C)`` — range read on ``(concept_id, individual_id)``,
  already in output order, so ``LIMIT`` stops after ``limit`` index
  entries no matter how many millions of rows the table holds;
* role neighbors — primary-key prefix / ``(role_id, object_id)`` seeks.

:meth:`SqliteBackend.instances_plan` exposes ``EXPLAIN QUERY PLAN`` so
the B12 bench can *assert* the no-full-scan claim instead of inferring
it from timings.

Durability: file-backed stores run ``journal_mode=WAL`` with
``synchronous=NORMAL``; a transaction is atomic across ``kill -9`` — a
materialization killed mid-delta leaves zero derived rows behind
(property-tested in ``tests/instdb/test_crash_safety.py``).  Writes
outside an explicit :meth:`~InstanceBackend.transaction` autocommit per
call.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from contextlib import contextmanager

from ..dl.intern import InternTable
from ..obs import recorder as _obs
from .backend import DERIVED, NO_SOURCE, TOLD, InstanceBackend, InstDBError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS individuals (
    id   INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS concepts (
    id   INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS roles (
    id   INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS concept_assertions (
    individual_id     INTEGER NOT NULL,
    concept_id        INTEGER NOT NULL,
    source            TEXT    NOT NULL,
    materialized_from INTEGER NOT NULL,
    PRIMARY KEY (individual_id, concept_id, source, materialized_from)
);
CREATE INDEX IF NOT EXISTS ix_assertions_by_concept
    ON concept_assertions (concept_id, individual_id);
CREATE INDEX IF NOT EXISTS ix_derived_by_source
    ON concept_assertions (materialized_from) WHERE source = 'derived';
CREATE TABLE IF NOT EXISTS role_assertions (
    subject_id INTEGER NOT NULL,
    role_id    INTEGER NOT NULL,
    object_id  INTEGER NOT NULL,
    PRIMARY KEY (subject_id, role_id, object_id)
);
CREATE INDEX IF NOT EXISTS ix_roles_by_object
    ON role_assertions (role_id, object_id, subject_id);
"""


class SqliteBackend(InstanceBackend):
    """Indexed SQL tables keyed by the reasoner's interned ids."""

    kind = "sqlite"

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = None if path is None else Path(path)
        target = ":memory:" if self.path is None else str(self.path)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # isolation_level=None -> true autocommit; transactions are
        # explicit BEGIN/COMMIT so their extent is ours, not the driver's.
        # check_same_thread=False because the serve layer refreshes the
        # store from a worker thread while reads stay on the event loop;
        # callers serialize access (the server holds a lock around every
        # backend call, and sqlite3 itself is compiled serialized).
        self._raw_conn = sqlite3.connect(
            target, isolation_level=None, check_same_thread=False
        )
        # an sqlite connection must never cross a fork: the child would
        # share the parent's file descriptors and WAL/shm mappings, and
        # either side's writes can silently corrupt the database.  Pin
        # the opening pid and refuse loudly from any other process.
        self._pid = os.getpid()
        if self.path is not None:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._depth = 0
        for statement in _SCHEMA.strip().split(";\n"):
            if statement.strip():
                self._conn.execute(statement)
        self._individuals = InternTable()
        self._concepts = InternTable()
        self._roles = InternTable()
        self._reload_dictionaries()

    @property
    def _conn(self) -> sqlite3.Connection:
        """The live connection — every db touch funnels through here."""
        if os.getpid() != self._pid:
            raise InstDBError(
                f"sqlite backend opened in pid {self._pid} used from pid "
                f"{os.getpid()}: sqlite connections must not be inherited "
                "across fork — reopen the backend in the child process"
            )
        return self._raw_conn

    def _reload_dictionaries(self) -> None:
        """Rebuild the intern tables from the name dictionaries, id order."""
        for table, intern in (
            ("individuals", self._individuals),
            ("concepts", self._concepts),
            ("roles", self._roles),
        ):
            for row_id, name in self._conn.execute(
                f"SELECT id, name FROM {table} ORDER BY id"
            ):
                if intern.intern(name) != row_id:
                    raise InstDBError(
                        f"{table} ids are not dense first-seen ids "
                        f"(name {name!r} at id {row_id})"
                    )

    # -- transactions ----------------------------------------------------- #

    @contextmanager
    def transaction(self) -> Iterator[None]:
        if self._depth:
            # nested scopes join the outer transaction (SQL has no
            # cheap nesting; the materializer never needs partial undo)
            self._depth += 1
            try:
                yield
            finally:
                self._depth -= 1
            return
        self._conn.execute("BEGIN IMMEDIATE")
        self._depth = 1
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            _obs.incr("instdb.tx_rollbacks")
            raise
        else:
            self._conn.execute("COMMIT")
            _obs.incr("instdb.tx_commits")
        finally:
            self._depth = 0

    @contextmanager
    def _atomic(self) -> Iterator[None]:
        """One write call: its own transaction unless already inside one."""
        if self._depth:
            yield
            return
        with self.transaction():
            yield

    # -- interning -------------------------------------------------------- #

    def _intern(self, table: str, intern: InternTable, name: str) -> int:
        known = intern.get(name)
        if known is not None:
            return known
        new = intern.intern(name)
        self._conn.execute(
            f"INSERT INTO {table} (id, name) VALUES (?, ?)", (new, name)
        )
        return new

    # -- writes ----------------------------------------------------------- #

    def add_individual(self, name: str) -> int:
        with self._atomic():
            known = self._individuals.get(name)
            if known is not None:
                return known
            _obs.incr("instdb.individuals")
            return self._intern("individuals", self._individuals, name)

    def assert_type(self, individual: str, concept: str) -> None:
        with self._atomic():
            ind = self.add_individual(individual)
            cid = self._intern("concepts", self._concepts, concept)
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO concept_assertions VALUES (?, ?, ?, ?)",
                (ind, cid, TOLD, NO_SOURCE),
            )
            if cursor.rowcount:
                _obs.incr("instdb.told_assertions")

    def assert_role(self, subject: str, role: str, object: str) -> None:
        with self._atomic():
            s = self.add_individual(subject)
            o = self.add_individual(object)
            r = self._intern("roles", self._roles, role)
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO role_assertions VALUES (?, ?, ?)",
                (s, r, o),
            )
            if cursor.rowcount:
                _obs.incr("instdb.role_assertions")

    def bulk_assert(
        self,
        types: Iterable[tuple[str, str]] = (),
        roles: Iterable[tuple[str, str, str]] = (),
    ) -> None:
        """The executemany load path the B12 scale depends on."""
        with self._atomic():
            type_rows = [
                (
                    self.add_individual(individual),
                    self._intern("concepts", self._concepts, concept),
                    TOLD,
                    NO_SOURCE,
                )
                for individual, concept in types
            ]
            role_rows = [
                (
                    self.add_individual(subject),
                    self._intern("roles", self._roles, role),
                    self.add_individual(object),
                )
                for subject, role, object in roles
            ]
            if type_rows:
                before = self._conn.total_changes
                self._conn.executemany(
                    "INSERT OR IGNORE INTO concept_assertions VALUES (?, ?, ?, ?)",
                    type_rows,
                )
                _obs.incr(
                    "instdb.told_assertions", self._conn.total_changes - before
                )
            if role_rows:
                before = self._conn.total_changes
                self._conn.executemany(
                    "INSERT OR IGNORE INTO role_assertions VALUES (?, ?, ?)",
                    role_rows,
                )
                _obs.incr(
                    "instdb.role_assertions", self._conn.total_changes - before
                )

    def insert_derived(self, source: str, derived: Iterable[str]) -> int:
        added = 0
        with self._atomic():
            src = self._concepts.get(source)
            if src is None:
                return 0
            for name in derived:
                cid = self._intern("concepts", self._concepts, name)
                # set-based: one indexed INSERT..SELECT per derived
                # concept, never a per-individual Python loop
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO concept_assertions "
                    "SELECT individual_id, ?, ?, ? FROM concept_assertions "
                    "WHERE concept_id = ? AND source = ?",
                    (cid, DERIVED, src, src, TOLD),
                )
                added += cursor.rowcount
        if added:
            _obs.incr("instdb.derived_rows", added)
        return added

    def delete_derived(self, sources: Optional[Iterable[str]] = None) -> int:
        with self._atomic():
            if sources is None:
                cursor = self._conn.execute(
                    "DELETE FROM concept_assertions WHERE source = ?", (DERIVED,)
                )
            else:
                src_ids = [
                    sid
                    for name in sources
                    if (sid := self._concepts.get(name)) is not None
                ]
                if not src_ids:
                    return 0
                marks = ",".join("?" * len(src_ids))
                cursor = self._conn.execute(
                    "DELETE FROM concept_assertions WHERE source = ? "
                    f"AND materialized_from IN ({marks})",
                    (DERIVED, *src_ids),
                )
            removed = cursor.rowcount
        if removed:
            _obs.incr("instdb.invalidated_rows", removed)
        return removed

    # -- indexed reads ----------------------------------------------------- #

    def individuals(
        self, *, limit: Optional[int] = None, offset: int = 0
    ) -> list[str]:
        rows = self._conn.execute(
            "SELECT name FROM individuals ORDER BY id LIMIT ? OFFSET ?",
            (-1 if limit is None else limit, offset),
        )
        return [name for (name,) in rows]

    def individual_count(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM individuals").fetchone()
        return count

    def types(self, individual: str, *, derived: bool = True) -> frozenset[str]:
        _obs.incr("instdb.queries.types")
        ind = self._individuals.get(individual)
        if ind is None:
            return frozenset()
        if derived:
            rows = self._conn.execute(
                "SELECT DISTINCT concept_id FROM concept_assertions "
                "WHERE individual_id = ?",
                (ind,),
            )
        else:
            rows = self._conn.execute(
                "SELECT DISTINCT concept_id FROM concept_assertions "
                "WHERE individual_id = ? AND source = ?",
                (ind, TOLD),
            )
        return frozenset(self._concepts[cid] for (cid,) in rows)

    def instances(self, concept: str, *, limit: Optional[int] = None) -> list[str]:
        _obs.incr("instdb.queries.instances")
        cid = self._concepts.get(concept)
        if cid is None:
            return []
        rows = self._conn.execute(
            "SELECT DISTINCT individual_id FROM concept_assertions "
            "WHERE concept_id = ? ORDER BY individual_id LIMIT ?",
            (cid, -1 if limit is None else limit),
        )
        return [self._individuals[ind] for (ind,) in rows]

    def instances_plan(self, concept: str) -> str:
        """The ``EXPLAIN QUERY PLAN`` text behind :meth:`instances`."""
        cid = self._concepts.get(concept)
        rows = self._conn.execute(
            "EXPLAIN QUERY PLAN "
            "SELECT DISTINCT individual_id FROM concept_assertions "
            "WHERE concept_id = ? ORDER BY individual_id LIMIT ?",
            (cid if cid is not None else 0, 10),
        )
        return "; ".join(str(row[-1]) for row in rows)

    def successors(self, subject: str, role: str) -> list[str]:
        _obs.incr("instdb.queries.roles")
        s = self._individuals.get(subject)
        r = self._roles.get(role)
        if s is None or r is None:
            return []
        rows = self._conn.execute(
            "SELECT object_id FROM role_assertions "
            "WHERE subject_id = ? AND role_id = ? ORDER BY object_id",
            (s, r),
        )
        return [self._individuals[o] for (o,) in rows]

    def predecessors(self, object: str, role: str) -> list[str]:
        _obs.incr("instdb.queries.roles")
        o = self._individuals.get(object)
        r = self._roles.get(role)
        if o is None or r is None:
            return []
        rows = self._conn.execute(
            "SELECT subject_id FROM role_assertions "
            "WHERE role_id = ? AND object_id = ? ORDER BY subject_id",
            (r, o),
        )
        return [self._individuals[s] for (s,) in rows]

    def role_assertions(
        self, role: Optional[str] = None
    ) -> Iterator[tuple[str, str, str]]:
        if role is None:
            rows = self._conn.execute(
                "SELECT subject_id, role_id, object_id FROM role_assertions "
                "ORDER BY subject_id, role_id, object_id"
            )
        else:
            rid = self._roles.get(role)
            if rid is None:
                return
            rows = self._conn.execute(
                "SELECT subject_id, role_id, object_id FROM role_assertions "
                "WHERE role_id = ? ORDER BY subject_id, object_id",
                (rid,),
            )
        for s, r, o in rows:
            yield self._individuals[s], self._roles[r], self._individuals[o]

    def told_concepts(self) -> list[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT concept_id FROM concept_assertions WHERE source = ? "
            "ORDER BY concept_id",
            (TOLD,),
        )
        return [self._concepts[cid] for (cid,) in rows]

    def derived_sources(self) -> list[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT materialized_from FROM concept_assertions "
            "WHERE source = ? ORDER BY materialized_from",
            (DERIVED,),
        )
        return [self._concepts[sid] for (sid,) in rows]

    def counts(self) -> dict[str, int]:
        def one(sql: str, *args) -> int:
            (count,) = self._conn.execute(sql, args).fetchone()
            return count

        return {
            "individuals": one("SELECT COUNT(*) FROM individuals"),
            "told": one(
                "SELECT COUNT(*) FROM concept_assertions WHERE source = ?", TOLD
            ),
            "derived": one(
                "SELECT COUNT(*) FROM concept_assertions WHERE source = ?", DERIVED
            ),
            "roles": one("SELECT COUNT(*) FROM role_assertions"),
        }

    def db_bytes(self) -> int:
        """On-disk footprint (main db + WAL); 0 for a memory-resident db."""
        if self.path is None:
            return 0
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.path) + suffix)
            if candidate.exists():
                total += os.path.getsize(candidate)
        return total

    def close(self) -> None:
        if os.getpid() != self._pid:
            # a forked child tearing down inherited objects must not
            # close (and checkpoint) the parent's live connection
            return
        self._raw_conn.close()
