"""The instance-store backend contract.

The ABox machinery of :mod:`repro.dl` keeps every assertion in Python
lists — fine for the tableau's working sets, hopeless for the
"millions of users" the serving layer targets.  :class:`InstanceBackend`
is the seam between the two worlds: individuals, concept assertions,
and role assertions live behind a narrow indexed-query interface, and
the reasoner only ever sees the (small) told slice it actually needs.

Two implementations ship:

* :class:`repro.instdb.MemoryBackend` — the existing in-memory ABox
  structures behind the same interface; the reference semantics every
  other backend is property-tested against;
* :class:`repro.instdb.SqliteBackend` — indexed SQL tables in WAL mode,
  keyed by the same dense interned ids (:mod:`repro.dl.intern`) the
  reasoning core uses, with a schema portable to postgres.

Design decisions the interface bakes in:

* **Interned ids are the keys.**  Every backend owns three
  :class:`~repro.dl.intern.InternTable`\\ s (individuals, concepts,
  roles); names cross the boundary, ids never leak out.  The id tables
  double as the SQL name dictionaries, so a persistent backend reloads
  them in id order on open and the dense first-seen numbering survives
  restarts.
* **Told and derived rows coexist.**  A concept-assertion row carries a
  ``source`` (``"told"`` / ``"derived"``) and, for derived rows, a
  ``materialized_from`` provenance: the *told* concept whose upward
  closure produced the row.  A derived type supported by two told types
  keeps two rows — so invalidating one source (after a TBox swap moved
  it) never deletes evidence contributed by another.
* **Queries are pushed down.**  ``instances()`` / ``types()`` /
  role-neighbor queries answer from indexes (dict or B-tree), never a
  scan over the assertion list; ``limit`` pages large answers.

Counters: ``instdb.individuals``, ``instdb.told_assertions``,
``instdb.role_assertions``, ``instdb.derived_rows``,
``instdb.invalidated_rows``, ``instdb.queries.instances``,
``instdb.queries.types``, ``instdb.queries.roles``,
``instdb.tx_commits``, ``instdb.tx_rollbacks``.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from ..dl import ABox, Atomic, ConceptAssertion, Role, RoleAssertion

#: ``source`` values of a concept-assertion row
TOLD = "told"
DERIVED = "derived"

#: ``materialized_from`` of a told row (no derivation to invalidate)
NO_SOURCE = -1


class InstDBError(Exception):
    """Backend misuse or an unusable database."""


class InstanceBackend(abc.ABC):
    """One instance store: individuals + concept/role assertions.

    All methods speak *names*; the backend interns them to dense ids
    internally.  Writes outside :meth:`transaction` are autocommitted
    per call; the materializer wraps its whole delta in one transaction
    so a crash can never leave a partial derivation visible.
    """

    #: short backend identifier for health blocks ("memory", "sqlite")
    kind: str = "abstract"

    # -- writes ---------------------------------------------------------- #

    @abc.abstractmethod
    def add_individual(self, name: str) -> int:
        """Ensure ``name`` exists; returns its interned id."""

    @abc.abstractmethod
    def assert_type(self, individual: str, concept: str) -> None:
        """Add a told concept assertion ``individual : concept``."""

    @abc.abstractmethod
    def assert_role(self, subject: str, role: str, object: str) -> None:
        """Add a role assertion ``(subject, object) : role``."""

    @abc.abstractmethod
    def insert_derived(self, source: str, derived: Iterable[str]) -> int:
        """Add derived rows ``(i, D, derived, source)`` for every
        individual told to be a ``source`` and every ``D`` in
        ``derived``; returns the number of rows added.  Set-based: the
        backends answer this from the by-concept index, not a scan."""

    @abc.abstractmethod
    def delete_derived(self, sources: Optional[Iterable[str]] = None) -> int:
        """Drop derived rows whose ``materialized_from`` is in
        ``sources`` (all derived rows when ``None``); returns the row
        count removed.  The told rows are never touched."""

    # -- transactions ---------------------------------------------------- #

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """All-or-nothing scope for a batch of writes.

        The sqlite backend maps this onto a real ``BEGIN``/``COMMIT``;
        the in-memory reference backend has no durability to protect
        and treats it as a grouping no-op (its crash-safety story *is*
        the process lifetime).
        """
        yield

    # -- indexed reads --------------------------------------------------- #

    @abc.abstractmethod
    def individuals(
        self, *, limit: Optional[int] = None, offset: int = 0
    ) -> list[str]:
        """Individual names in interned-id (= first-seen) order."""

    @abc.abstractmethod
    def individual_count(self) -> int: ...

    @abc.abstractmethod
    def types(self, individual: str, *, derived: bool = True) -> frozenset[str]:
        """Concept names asserted (and, by default, derived) for one
        individual — a point lookup on the by-individual index."""

    @abc.abstractmethod
    def instances(
        self, concept: str, *, limit: Optional[int] = None
    ) -> list[str]:
        """Individuals with a (told or derived) ``concept`` assertion,
        in interned-id order — a range read on the by-concept index."""

    @abc.abstractmethod
    def successors(self, subject: str, role: str) -> list[str]:
        """Objects ``o`` with ``(subject, o) : role``."""

    @abc.abstractmethod
    def predecessors(self, object: str, role: str) -> list[str]:
        """Subjects ``s`` with ``(s, object) : role``."""

    @abc.abstractmethod
    def role_assertions(
        self, role: Optional[str] = None
    ) -> Iterator[tuple[str, str, str]]:
        """``(subject, role, object)`` rows, optionally one role only."""

    @abc.abstractmethod
    def told_concepts(self) -> list[str]:
        """Distinct concept names with at least one told assertion."""

    @abc.abstractmethod
    def derived_sources(self) -> list[str]:
        """Distinct ``materialized_from`` concepts of the derived rows."""

    @abc.abstractmethod
    def counts(self) -> dict[str, int]:
        """Row counts: individuals, told, derived, roles."""

    # -- interop --------------------------------------------------------- #

    def load_abox(self, abox: ABox) -> None:
        """Bulk-load a :class:`~repro.dl.ABox` (told facts only).

        Non-atomic concept assertions are refused: an instance *store*
        holds data, not complex terminology."""
        with self.transaction():
            for assertion in abox:
                if isinstance(assertion, ConceptAssertion):
                    if not isinstance(assertion.concept, Atomic):
                        raise InstDBError(
                            f"only atomic told types can be stored, got "
                            f"{assertion.concept}"
                        )
                    self.assert_type(assertion.individual, assertion.concept.name)
                elif isinstance(assertion, RoleAssertion):
                    self.assert_role(
                        assertion.subject, assertion.role.name, assertion.object
                    )

    def to_abox(self) -> ABox:
        """Export the told slice as an in-memory ABox for the reasoner."""
        assertions: list = []
        for individual in self.individuals():
            for name in sorted(self.types(individual, derived=False)):
                assertions.append(ConceptAssertion(individual, Atomic(name)))
        for subject, role, object in self.role_assertions():
            assertions.append(RoleAssertion(subject, object, Role(role)))
        return ABox(assertions)

    def stats(self) -> dict:
        """JSON-ready block for ``/v1/health`` and ``/v1/metrics``."""
        block: dict = {"backend": self.kind}
        block.update(self.counts())
        return block

    def close(self) -> None:  # pragma: no cover - overridden where needed
        """Release any underlying resources (idempotent)."""


def open_backend(
    kind: str, path: Optional[Union[str, Path]] = None
) -> InstanceBackend:
    """Factory behind every ``--abox-backend`` flag.

    ``memory`` ignores ``path``; ``sqlite`` stores at ``path`` (a fresh
    private in-memory database when omitted — useful for tests and for
    serving without a pre-built store)."""
    from .memory import MemoryBackend
    from .sqlite import SqliteBackend

    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        return SqliteBackend(path)
    raise InstDBError(f"unknown instance backend {kind!r}; expected memory|sqlite")
