"""Instrumented B1–B12 substrate benches with a JSON snapshot per bench.

Each bench runs a fixed, seeded workload under a fresh
:class:`repro.obs.Recorder` and produces one record::

    {
      "schema_version": 2,
      "bench": "B1",
      "description": "...",
      "params": {...},            # the workload's knobs, for reproduction
      "wall_time_s": 0.41,
      "counters": {...},          # repro.obs counter snapshot
      "timers": {...},            # {name: {count, total, min, max, mean}}
      "histograms": {...}         # same summary + p50/p99 quantiles
    }

Schema v2: measurement *distributions* (request latencies, batch sizes,
per-swap costs) live in ``histograms`` — with p50/p99 from the recorder's
sample rings — instead of being stashed under ``params``; ``params``
holds only the workload's reproduction knobs and scalar summaries.

``run_suite`` writes ``BENCH_B1.json`` … ``BENCH_B11.json`` — the perf
trajectory later PRs are compared against.  Counters are deterministic
for the seeded inputs (two runs differ only in ``wall_time_s`` and timer
values); the test suite asserts exactly that, so any nondeterminism
introduced into a hot path is caught here.  The exceptions are B7, B9,
and B11, which measure live servers (see :class:`BenchSpec.deterministic`).
B8's default edit-stream scale is controlled by ``REPRO_B8_SCALE``
(``tiny`` / ``small`` / ``full``) so CI smoke runs stay cheap while the
committed record measures the full stream; B9 — the B7/B8 fusion into
mixed edit+query traffic with a durable edit log and a kill-and-recover
scenario — follows the same pattern via ``REPRO_B9_SCALE``, as does
B10 — saturation vs enhanced classification — via ``REPRO_B10_SCALE``,
and B12 — the DB-backed instance store at 10⁵–10⁶ individuals — via
``REPRO_B12_SCALE``.

The pytest benches under ``benchmarks/`` still measure *time* with
pytest-benchmark statistics; this harness complements them with *work*
counts (expansions, cache hits, index hits) that are comparable across
machines.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from ..obs import Recorder, use_recorder
from ..robust import faults as _faults

SCHEMA_VERSION = 2

#: keys every BENCH_*.json record must carry, with their types
RECORD_SCHEMA: dict[str, type] = {
    "schema_version": int,
    "bench": str,
    "description": str,
    "params": dict,
    "wall_time_s": float,
    "counters": dict,
    "timers": dict,
    "histograms": dict,
}


@dataclass(frozen=True)
class BenchSpec:
    """One bench: an id, a description, and a workload returning its params.

    ``deterministic`` marks whether two runs over the seeded inputs
    produce identical counters.  B1–B6 are; B7 drives a live server
    through real sockets and a timing-based batch window, so its batch
    sizes and latencies are load-dependent by nature (the determinism
    test skips it, the *invariants* — batched-hit reduction, all-200
    statuses — are asserted inside the workload itself).
    """

    bench_id: str
    description: str
    workload: Callable[[], dict[str, Any]]
    deterministic: bool = True


# ---------------------------------------------------------------------- #
# workloads
# ---------------------------------------------------------------------- #


def _b1_tableau() -> dict[str, Any]:
    """Tableau reasoning + classification (hierarchy/reasoner/tableau counters)."""
    from ..corpora.generators import branching_tbox, chain_tbox, random_tbox
    from ..dl import Atomic, Reasoner, classify

    chain_depth, branch_depth, classify_depth = 32, 4, 12
    reasoner = Reasoner(chain_tbox(chain_depth))
    assert reasoner.subsumes(Atomic(f"C{chain_depth}"), Atomic("C0"))
    assert not reasoner.subsumes(Atomic("C0"), Atomic(f"C{chain_depth}"))
    # a second identical query exercises the subsumption cache
    assert reasoner.subsumes(Atomic(f"C{chain_depth}"), Atomic("C0"))

    tree = Reasoner(branching_tbox(branch_depth))
    assert tree.is_satisfiable(Atomic("N" + "0" * branch_depth))

    classify(chain_tbox(classify_depth))
    classify(random_tbox(11, n_defined=6, n_primitive=4, n_roles=3))
    # the large told-structured TBox (30 named concepts).  The auto
    # default classifies this Horn/EL corpus by consequence-based
    # saturation — zero tableau tests on the classification path (B10
    # measures the reduction against the enhanced-traversal baseline;
    # see EXPERIMENTS.md)
    big = random_tbox(0, n_defined=22, n_primitive=8, n_roles=3)
    hierarchy = classify(big)
    assert not hierarchy.incomplete
    assert hierarchy.tableau_tests == 0
    return {
        "chain_depth": chain_depth,
        "branching_depth": branch_depth,
        "classify_chain_depth": classify_depth,
        "classify_random_seed": 11,
        "big_classify": {"seed": 0, "n_defined": 22, "n_primitive": 8, "n_roles": 3},
    }


def _b2_isomorphism() -> dict[str, Any]:
    """VF2 with the WL prefilter on isomorphic and non-isomorphic pairs."""
    from ..core import confusable_sibling
    from ..corpora.generators import random_tbox
    from ..dl import definition_graph, rename_roles
    from ..graphs import find_isomorphism

    seeds = [0, 1, 2]
    for seed in seeds:
        tbox = random_tbox(seed, n_defined=6, n_primitive=4, n_roles=2)
        g1 = definition_graph(tbox).anonymized()
        sibling, _, role_map = confusable_sibling(tbox)
        g2 = definition_graph(sibling).anonymized()
        g2 = rename_roles(g2, {v: k for k, v in role_map.items()})
        assert find_isomorphism(g1, g2, respect_node_labels=False) is not None
        other = random_tbox(seed + 100, n_defined=6, n_primitive=4, n_roles=2)
        g3 = definition_graph(other).anonymized()
        find_isomorphism(g1, g3, respect_node_labels=False)
        # labeled comparison exercises the WL prefilter path
        find_isomorphism(definition_graph(tbox), definition_graph(other))
    return {"seeds": seeds, "n_defined": 6, "n_primitive": 4, "n_roles": 2}


def _b3_store() -> dict[str, Any]:
    """Index lookups, join evaluation, and DL-backed materialization."""
    from ..corpora.generators import random_tbox as random_tbox_gen
    from ..corpora.generators import random_triples
    from ..corpora.vehicles import vehicle_tbox
    from ..store import Pattern, Query, TripleStore, Var, materialize

    rows = random_triples(
        7, count=3000, n_subjects=300, n_predicates=12, n_objects=150
    )
    indexed = TripleStore()
    indexed.update(rows)
    scan = TripleStore(use_indexes=False)
    scan.update(rows)

    subjects = [f"s{i}" for i in range(0, 300, 7)]
    hits_indexed = sum(indexed.count(subject=s) for s in subjects)
    hits_scan = sum(scan.count(subject=s) for s in subjects)
    assert hits_indexed == hits_scan

    x, y = Var("x"), Var("y")
    for order in ("selectivity", "most-bound"):
        query = Query(
            [Pattern(x, "p1", y), Pattern(y, "p2", "o3")], select=[x], order=order
        )
        query.run(indexed)

    typed = TripleStore()
    for i in range(8):
        typed.add(f"car{i}", "type", "car")
        typed.add(f"truck{i}", "type", "pickup")
    materialized = materialize(typed, vehicle_tbox())
    assert ("car0", "type", "motorvehicle") in materialized

    # hierarchy-propagated materialization over a larger told-structured
    # TBox: told types close upward for free, negative answers prune
    # whole subtrees (materialize.pruned_checks)
    big_tbox = random_tbox_gen(5, n_defined=12, n_primitive=6, n_roles=2)
    big_typed = TripleStore()
    for i in range(24):
        big_typed.add(f"x{i}", "type", f"C{i % 12}")
    big_materialized = materialize(big_typed, big_tbox)
    assert len(big_materialized) >= len(big_typed)
    return {
        "rows": len(rows),
        "seed": 7,
        "point_lookup_subjects": len(subjects),
        "join_orders": ["selectivity", "most-bound"],
        "materialized_individuals": 16,
        "big_materialize": {
            "seed": 5,
            "n_defined": 12,
            "n_primitive": 6,
            "individuals": 24,
        },
    }


def _b4_grammar() -> dict[str, Any]:
    """CYK and Earley scaling plus the regular-language DFA crossover."""
    from ..grammar import (
        Grammar,
        Production,
        compile_regular,
        cyk_recognizes,
        earley_recognizes,
        to_cnf,
    )

    n = 24
    anbn = Grammar(
        {"S"},
        {"a", "b"},
        "S",
        [Production(("S",), ("a", "S", "b")), Production(("S",), ())],
    )
    word = ["a"] * n + ["b"] * n
    cnf = to_cnf(anbn)
    assert cyk_recognizes(cnf, word)
    assert earley_recognizes(anbn, word)

    ab_star = Grammar(
        {"S", "B"},
        {"a", "b"},
        "S",
        [
            Production(("S",), ("a", "B")),
            Production(("B",), ("b", "S")),
            Production(("S",), ()),
        ],
    )
    dfa = compile_regular(ab_star)
    assert dfa.accepts(["a", "b"] * 30)
    assert cyk_recognizes(to_cnf(ab_star), ["a", "b"] * 30)
    return {"anbn_n": n, "ab_star_repeats": 30}


def _b5_rewriting() -> dict[str, Any]:
    """Peano normalization and matching over an order-sorted signature."""
    from ..order import Poset
    from ..osa import (
        Equation,
        EquationalTheory,
        OpDecl,
        OrderSortedSignature,
        OSApp,
        OSVar,
        RewriteSystem,
        constant,
        match,
    )

    sig = OrderSortedSignature(
        Poset(["Nat"], []),
        [
            OpDecl("zero", (), "Nat"),
            OpDecl("s", ("Nat",), "Nat"),
            OpDecl("plus", ("Nat", "Nat"), "Nat"),
        ],
    )
    x, y = OSVar("x", "Nat"), OSVar("y", "Nat")
    system = RewriteSystem(
        EquationalTheory(
            sig,
            [
                Equation(OSApp("plus", (constant("zero"), y)), y),
                Equation(
                    OSApp("plus", (OSApp("s", (x,)), y)),
                    OSApp("s", (OSApp("plus", (x, y)),)),
                ),
            ],
        ),
        max_steps=100_000,
    )

    def numeral(k: int) -> OSApp:
        term = constant("zero")
        for _ in range(k):
            term = OSApp("s", (term,))
        return term

    n = 24
    assert system.normalize(OSApp("plus", (numeral(n), numeral(n)))) == numeral(2 * n)
    pattern = OSApp("s", (x,))
    matched = sum(
        1 for k in range(1, 40) if match(pattern, numeral(k), sig) is not None
    )
    assert matched == 39
    return {"addition_n": n, "match_targets": 39}


def _b6_escalation() -> dict[str, Any]:
    """Governed reasoning: budget exhaustion, escalation overhead (robust.*)."""
    from ..corpora.generators import random_tbox
    from ..dl import Atomic, Reasoner, classify
    from ..dl.syntax import at_least
    from ..obs import trace
    from ..robust import Budget, DEFAULT_MAX_ROUNDS, retry_with_escalation

    initial_nodes = 10
    tbox = random_tbox(0, n_defined=22, n_primitive=8, n_roles=3)
    with trace("bench.b6.ungoverned_classify"):
        baseline = classify(tbox)

    # governed classification from a deliberately starved budget, whole-run
    # escalation until the hierarchy is definite: the overhead vs. the
    # ungoverned baseline is the cost of degrading gracefully
    reasoner = Reasoner(tbox)
    budget = Budget(max_nodes=initial_nodes)
    rounds = 0
    with trace("bench.b6.escalating_classify"):
        hierarchy = classify(tbox, reasoner=reasoner, budget=budget)
        assert hierarchy.incomplete  # the starved budget must actually starve
        while hierarchy.incomplete and rounds < DEFAULT_MAX_ROUNDS:
            rounds += 1
            budget = budget.escalated()
            hierarchy = classify(tbox, reasoner=reasoner, budget=budget)
    assert not hierarchy.incomplete
    assert hierarchy.groups() == baseline.groups()

    # per-query escalation: ≥12 successors cannot fit a 10-node budget
    probe = Reasoner(tbox)
    outcome = retry_with_escalation(
        lambda b: probe.is_satisfiable_governed(
            at_least(12, "r0", Atomic("P0")), b
        ),
        Budget(max_nodes=initial_nodes),
    )
    assert outcome.verdict.is_definite and outcome.rounds >= 1
    return {
        "tbox": {"seed": 0, "n_defined": 22, "n_primitive": 8, "n_roles": 3},
        "initial_max_nodes": initial_nodes,
        "classify_escalation_rounds": rounds,
        "probe_escalation_rounds": outcome.rounds,
    }


def _b7_serve() -> dict[str, Any]:
    """Batched serving vs one-shot calls: throughput, latency, tableau work.

    A 500-request mixed subsumption/satisfiability workload over one
    seeded TBox, twice:

    * **one-shot baseline** — a fresh :class:`Reasoner` per request, the
      CLI invocation model (every call re-pays classification-grade
      tableau work);
    * **served** — the same workload through ``repro.serve``'s closed-loop
      load generator against a live batched server, where named checks
      are answered from the one pre-classified snapshot hierarchy.

    The acceptance invariant (asserted here, not just recorded): serving
    answers the workload with **≥ 3×** fewer tableau tests than the
    one-shot baseline.
    """
    import random

    from ..corpora.generators import random_tbox
    from ..dl import Atomic, Reasoner
    from ..obs import Recorder, get_recorder, use_recorder
    from ..serve import ServeConfig, ServerThread, closed_loop

    n_requests, concurrency, window_ms = 500, 8, 5.0
    tbox = random_tbox(0, n_defined=22, n_primitive=8, n_roles=3)
    names = sorted(tbox.atomic_names())
    rng = random.Random(42)
    checks: list[tuple[str, str, str]] = []
    for _ in range(n_requests):
        if rng.random() < 0.8:
            checks.append(("subsumes", rng.choice(names), rng.choice(names)))
        else:
            checks.append(("satisfiable", rng.choice(names), ""))

    # one-shot baseline: fresh reasoner per request, counters kept aside
    baseline = Recorder()
    with use_recorder(baseline):
        for kind, a, b in checks:
            reasoner = Reasoner(tbox)
            if kind == "subsumes":
                reasoner.subsumes(Atomic(a), Atomic(b))
            else:
                reasoner.is_satisfiable(Atomic(a))
    one_shot_tests = baseline.counters.get("tableau.solve_calls", 0)

    # served: boot (snapshot pre-classification, off the serving path)
    # and the serving window are recorded separately — boot is a one-time
    # cost amortized over the server's lifetime, not per-workload work
    boot = Recorder()
    config = ServeConfig(
        port=0, batch_window_ms=window_ms, batch_max=64, soft_limit=64
    )
    with use_recorder(boot):
        server = ServerThread(tbox, config)
    served = Recorder()
    with use_recorder(served):
        with server:
            requests = [
                (
                    "POST",
                    f"/v1/{kind}",
                    {"general": a, "specific": b}
                    if kind == "subsumes"
                    else {"concept": a},
                )
                for kind, a, b in checks
            ]
            report = closed_loop(server, requests, concurrency=concurrency)
            _status, metrics = server.request("GET", "/v1/metrics")
    boot_tests = boot.counters.get("tableau.solve_calls", 0)
    served_tests = served.counters.get("tableau.solve_calls", 0)

    assert not report.errors, report.errors[:3]
    assert report.status_counts == {200: n_requests}, report.status_counts
    assert served.counters.get("serve.batched_hits", 0) > 0
    # the acceptance criterion: the serving path answers the workload with
    # ≥ 3x fewer tableau tests than 500 isolated one-shot calls ...
    assert served_tests * 3 <= one_shot_tests, (served_tests, one_shot_tests)
    # ... and even charging the server its whole boot-time classification,
    # the total still beats paying per call
    assert boot_tests + served_tests < one_shot_tests, (
        boot_tests, served_tests, one_shot_tests,
    )

    # fold the whole serve-side recorder — counters, timers, and the
    # batch-size histogram with its sample ring — into the bench record
    # (schema v2: distributions land in "histograms", not "params"),
    # and route the client-observed latencies in as a histogram too
    recorder = get_recorder()
    recorder.merge(served)
    for latency in report.latencies_ms:
        recorder.observe("serve.request_latency_ms", latency)
    recorder.incr("bench.b7.one_shot_tableau_tests", one_shot_tests)
    recorder.incr("bench.b7.boot_tableau_tests", boot_tests)
    recorder.incr("bench.b7.served_tableau_tests", served_tests)
    assert metrics["metrics"]["histograms"].get("serve.batch_size", {}).get(
        "count", 0
    ) > 0, "server recorded no batch sizes"
    return {
        "requests": n_requests,
        "concurrency": concurrency,
        "batch_window_ms": window_ms,
        "mix": {"subsumes": 0.8, "satisfiable": 0.2},
        "tbox": {"seed": 0, "n_defined": 22, "n_primitive": 8, "n_roles": 3},
        "workload_seed": 42,
        "one_shot_tableau_tests": one_shot_tests,
        "boot_tableau_tests": boot_tests,
        "served_tableau_tests": served_tests,
        "tableau_test_reduction": one_shot_tests / max(1, served_tests),
        "throughput_rps": report.throughput_rps(),
    }


#: B8 edit-stream scales: (n_defined, n_primitive, edits, full-baseline
#: sampling stride, acceptance floor on the tableau-test reduction).
#: ``tiny`` is the CI smoke scale — a ~30-name TBox leaves little room
#: between a few affected names and the whole vocabulary, so it only has
#: to beat 2× — ``small`` keeps the test suite fast, ``full`` is what
#: the committed BENCH_B8.json measures (a ~200-name TBox, 50 edits, ≥5×).
B8_SCALES: dict[str, tuple[int, int, int, int, int]] = {
    "tiny": (20, 8, 4, 2, 2),
    "small": (40, 12, 10, 3, 5),
    "full": (150, 50, 50, 10, 5),
}


def _b8_incremental() -> dict[str, Any]:
    """Incremental vs full reclassification over a stream of TBox edits.

    One seeded TBox evolves through a chain of random definitorial edits
    (:func:`repro.corpora.generators.random_tbox_edit`).  Every edit is
    absorbed by the delta-driven incremental path
    (:func:`repro.dl.incremental.reclassify`); every Nth edit the same
    successor TBox is *also* classified from scratch as the baseline, and
    the two hierarchies are asserted identical (the correctness oracle).

    The acceptance invariant (asserted here and re-checked from the
    committed record): the incremental path pays **≥ 5×** fewer tableau
    tests per swap than full classification.  Per-swap distributions land
    in the ``histograms`` section (``bench.b8.incremental_swap_ms``,
    ``bench.b8.tableau_tests_per_swap``, ``bench.b8.full_swap_ms``).
    """
    import os
    import random as _random

    from ..corpora.generators import random_tbox, random_tbox_edit
    from ..dl import ConceptHierarchy, Reasoner
    from ..obs import Recorder, get_recorder, use_recorder

    scale = os.environ.get("REPRO_B8_SCALE", "small")
    if scale not in B8_SCALES:
        raise ValueError(
            f"REPRO_B8_SCALE={scale!r}; expected one of {sorted(B8_SCALES)}"
        )
    n_defined, n_primitive, n_edits, sample_every, min_reduction = B8_SCALES[scale]

    recorder = get_recorder()
    tbox = random_tbox(0, n_defined=n_defined, n_primitive=n_primitive, n_roles=3)
    boot = Recorder()
    with use_recorder(boot):
        hierarchy = Reasoner(tbox).classify()
    recorder.merge(boot)
    boot_tests = boot.counters.get("tableau.solve_calls", 0)

    rng = _random.Random(1234)
    incremental_tests = full_tests = 0
    incremental_modes: dict[str, int] = {}
    full_samples = 0
    for edit in range(n_edits):
        successor = random_tbox_edit(rng, tbox)

        swap = Recorder()
        t0 = time.perf_counter()
        with use_recorder(swap):
            result = Reasoner(successor).reclassify(hierarchy)
        swap_ms = (time.perf_counter() - t0) * 1000.0
        recorder.merge(swap)
        tests = swap.counters.get("tableau.solve_calls", 0)
        incremental_tests += tests
        incremental_modes[result.mode] = incremental_modes.get(result.mode, 0) + 1
        recorder.observe("bench.b8.incremental_swap_ms", swap_ms)
        recorder.observe("bench.b8.tableau_tests_per_swap", tests)

        if edit % sample_every == 0:
            baseline = Recorder()
            t0 = time.perf_counter()
            with use_recorder(baseline):
                full_hierarchy = ConceptHierarchy(successor)
            full_ms = (time.perf_counter() - t0) * 1000.0
            full_tests += baseline.counters.get("tableau.solve_calls", 0)
            full_samples += 1
            recorder.observe("bench.b8.full_swap_ms", full_ms)
            # the correctness oracle: the incremental hierarchy IS the
            # full hierarchy, group for group and edge for edge
            assert result.hierarchy.groups() == full_hierarchy.groups()
            for group in full_hierarchy.groups():
                rep = sorted(group)[0]
                assert result.hierarchy.parents(rep) == full_hierarchy.parents(rep)

        tbox, hierarchy = successor, result.hierarchy

    mean_incremental = incremental_tests / n_edits
    mean_full = full_tests / max(1, full_samples)
    recorder.incr("bench.b8.edits", n_edits)
    recorder.incr("bench.b8.boot_tableau_tests", boot_tests)
    recorder.incr("bench.b8.incremental_tableau_tests", incremental_tests)
    recorder.incr("bench.b8.full_tableau_tests", full_tests)
    recorder.incr("bench.b8.full_baseline_samples", full_samples)
    # the acceptance criterion: per swap, the incremental path pays >= 5x
    # fewer tableau tests than classifying the successor from scratch
    # (relaxed to the scale's floor at the tiny CI-smoke size)
    assert mean_incremental * min_reduction <= mean_full, (
        mean_incremental,
        mean_full,
        min_reduction,
    )
    return {
        "scale": scale,
        "tbox": {
            "seed": 0,
            "n_defined": n_defined,
            "n_primitive": n_primitive,
            "n_roles": 3,
        },
        "edit_seed": 1234,
        "edits": n_edits,
        "full_baseline_every": sample_every,
        "full_baseline_samples": full_samples,
        "boot_tableau_tests": boot_tests,
        "incremental_modes": incremental_modes,
        "mean_tableau_tests_per_swap": {
            "incremental": mean_incremental,
            "full": mean_full,
        },
        "tableau_test_reduction": mean_full / max(1.0, mean_incremental),
    }


#: B9 mixed edit+query scales: (n_defined, n_primitive, queries, edits,
#: query concurrency, edit interval s, swap throttle ms, p99 factor).
#: The acceptance factor — mixed-traffic query p99 within ``factor`` ×
#: the same run's pure-query p99 — is 2 at ``full`` (the committed
#: record's claim); the CI scales are small enough that one scheduler
#: hiccup moves a sub-millisecond p99, so they get generous headroom.
B9_SCALES: dict[str, tuple[int, int, int, int, int, float, float, float]] = {
    "tiny": (20, 8, 120, 5, 4, 0.02, 10.0, 12.0),
    "small": (40, 12, 300, 10, 6, 0.03, 20.0, 8.0),
    # full: edits arrive faster than the swap throttle allows, so the
    # committed record shows the degradation policy actually coalescing —
    # the throttle is what keeps query p99 inside the 2x acceptance bound
    "full": (60, 20, 1500, 30, 8, 0.03, 250.0, 2.0),
}


def _b9_mixed() -> dict[str, Any]:
    """Closed-loop mixed edit+query traffic, plus kill-and-recover.

    The B7/B8 fusion over one live server (:mod:`repro.serve`) in three
    phases:

    1. **pure-query baseline** — the closed-loop query workload alone,
       yielding this machine's p50/p99 floor;
    2. **mixed** — a fresh server with a durable edit log and a swap
       throttle, the same query workload racing a paced
       :func:`repro.serve.edit_stream` of ``random_tbox_edit``
       successors.  Asserts: every query 200, every edit acked 200 with
       monotonically increasing logged versions, swap-visibility
       latencies recorded, queries drained while edits published —
       and the mixed p99 stays within the scale's factor of the
       baseline p99 (**2× at full scale**, the acceptance criterion);
    3. **kill-and-recover** — a real ``python -m repro serve`` child
       with ``--edit-log`` and a huge swap throttle (so acknowledged
       edits are deliberately *unpublished*), SIGKILLed mid-pending and
       restarted.  Asserts the restarted server reports the last
       *acknowledged* version and serves exactly the hierarchy of the
       last acknowledged TBox: zero lost acknowledged edits.

    Scale via ``REPRO_B9_SCALE`` (``tiny``/``small``/``full``), like B8.
    """
    import os
    import random as _random
    import re
    import signal
    import subprocess
    import sys
    import tempfile
    import threading

    from ..corpora.generators import random_tbox, random_tbox_edit
    from ..dl import Reasoner, parse_tbox
    from ..dl.serialize import tbox_to_text
    from ..obs import Recorder, get_recorder, use_recorder
    from ..serve import (
        ServeClient,
        ServeConfig,
        ServerThread,
        closed_loop,
        edit_stream,
    )

    scale = os.environ.get("REPRO_B9_SCALE", "small")
    if scale not in B9_SCALES:
        raise ValueError(
            f"REPRO_B9_SCALE={scale!r}; expected one of {sorted(B9_SCALES)}"
        )
    (
        n_defined,
        n_primitive,
        n_queries,
        n_edits,
        concurrency,
        edit_interval_s,
        throttle_ms,
        p99_factor,
    ) = B9_SCALES[scale]

    tbox = random_tbox(0, n_defined=n_defined, n_primitive=n_primitive, n_roles=3)
    names = sorted(tbox.atomic_names())
    rng = _random.Random(99)
    queries = []
    for _ in range(n_queries):
        if rng.random() < 0.8:
            queries.append(
                (
                    "POST",
                    "/v1/subsumes",
                    {"general": rng.choice(names), "specific": rng.choice(names)},
                )
            )
        else:
            queries.append(
                ("POST", "/v1/satisfiable", {"concept": rng.choice(names)})
            )

    # the edit chain: successive random edits, shipped as full TBox texts
    edit_rng = _random.Random(4321)
    chain_tbox, edit_texts = tbox, []
    for _ in range(n_edits):
        chain_tbox = random_tbox_edit(edit_rng, chain_tbox)
        edit_texts.append(tbox_to_text(chain_tbox))
    final_tbox = chain_tbox

    # -- phase 1: pure-query baseline ------------------------------------ #
    config = ServeConfig(port=0, soft_limit=64)
    with ServerThread(tbox, config) as server:
        baseline = closed_loop(server, queries, concurrency=concurrency)
    assert not baseline.errors, baseline.errors[:3]
    assert baseline.status_counts == {200: n_queries}, baseline.status_counts
    p99_baseline = baseline.percentile(0.99)

    # -- phase 2: mixed edit+query traffic ------------------------------- #
    recorder = get_recorder()
    mixed_recorder = Recorder()
    with tempfile.TemporaryDirectory() as log_dir:
        mixed_config = ServeConfig(
            port=0,
            soft_limit=64,
            edit_log=log_dir,
            min_swap_interval_ms=throttle_ms,
        )
        with use_recorder(mixed_recorder):
            with ServerThread(tbox, mixed_config) as server:
                edit_report = None

                def editor() -> None:
                    nonlocal edit_report
                    edit_report = edit_stream(
                        server, edit_texts, interval_s=edit_interval_s
                    )

                editor_thread = threading.Thread(target=editor, daemon=True)
                editor_thread.start()
                mixed = closed_loop(server, queries, concurrency=concurrency)
                editor_thread.join(timeout=120)
                assert edit_report is not None, "edit stream never finished"
                # drain: the last deferred/coalesced edit must publish
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    _status, health = server.request("GET", "/v1/health")
                    if (
                        not health["pending_swap"]
                        and health["tbox_version"] == health["logged_version"]
                    ):
                        break
                    time.sleep(0.02)
                else:  # pragma: no cover - drain timeout
                    raise AssertionError(f"pending swap never drained: {health}")
                _status, classify_body = server.request("POST", "/v1/classify", {})
                _status, metrics = server.request("GET", "/v1/metrics")
    recorder.merge(mixed_recorder)

    assert not mixed.errors, mixed.errors[:3]
    assert mixed.status_counts == {200: n_queries}, mixed.status_counts
    assert not edit_report.errors, edit_report.errors[:3]
    assert edit_report.edits == n_edits
    # acked (logged) versions are assigned in stream order, no gaps lost:
    # version N+1 follows version N even when publication coalesces
    assert edit_report.acked_versions == list(range(2, n_edits + 2))
    # zero lost acknowledged edits on the live path: the drained server
    # serves exactly the hierarchy of the final acknowledged TBox
    expected = Reasoner(final_tbox).classify()
    assert classify_body["groups"] == sorted(
        sorted(g) for g in expected.groups()
    ), "drained server diverges from the final acknowledged TBox"
    visibility = metrics["metrics"]["histograms"].get(
        "serve.swap_visibility_ms", {}
    )
    assert visibility.get("count", 0) == n_edits, visibility

    p99_mixed = mixed.percentile(0.99)
    for latency in mixed.latencies_ms:
        recorder.observe("bench.b9.mixed_query_latency_ms", latency)
    for latency in baseline.latencies_ms:
        recorder.observe("bench.b9.baseline_query_latency_ms", latency)
    for latency in edit_report.ack_latencies_ms:
        recorder.observe("bench.b9.edit_ack_ms", latency)
    recorder.incr("bench.b9.queries", n_queries)
    recorder.incr("bench.b9.edits", n_edits)
    for status, count in edit_report.swap_statuses.items():
        recorder.incr(f"bench.b9.edits_{status}", count)
    # the acceptance criterion: a continuous edit stream costs queries at
    # most the scale's factor in p99 (2x at full scale); the 1ms floor
    # keeps sub-millisecond baselines from amplifying scheduler noise
    assert p99_mixed <= p99_factor * max(p99_baseline, 1.0), (
        p99_mixed,
        p99_baseline,
        p99_factor,
    )

    # -- phase 3: kill-and-recover under a real process ------------------ #
    # only torn-write survives into the child: exhaustion/deadline faults
    # would make its answers legitimately nondeterministic
    env = dict(os.environ, PYTHONPATH="src")
    armed = {
        kind.strip()
        for kind in env.get("REPRO_FAULTS", "").split(",")
        if kind.strip()
    }
    env["REPRO_FAULTS"] = ",".join(sorted(armed & {"torn-write"}))
    recover_edits = edit_texts[: max(2, min(4, n_edits))]

    def spawn(log_dir: str, tbox_path: str) -> tuple[subprocess.Popen, int]:
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--tbox",
                tbox_path,
                "--port",
                "0",
                "--edit-log",
                log_dir,
                "--min-swap-interval-ms",
                "600000",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        port = None
        for _ in range(20):  # the recovery banner precedes the address line
            line = process.stdout.readline()
            if not line:
                break
            match = re.search(r"http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "serve child printed no address banner"
        return process, port

    with tempfile.TemporaryDirectory() as work_dir:
        tbox_path = os.path.join(work_dir, "boot.tbox")
        with open(tbox_path, "w", encoding="utf-8") as handle:
            handle.write(tbox_to_text(tbox))
        log_dir = os.path.join(work_dir, "editlog")
        process, port = spawn(log_dir, tbox_path)
        try:
            with ServeClient("127.0.0.1", port) as client:
                acked = 0
                for text in recover_edits:
                    status, body = client.request(
                        "POST", "/v1/tbox", {"tbox": text}
                    )
                    assert status == 200, (status, body)
                    # the huge throttle defers/coalesces every edit: each
                    # ack is durable but deliberately unpublished
                    assert body["swap_status"] in {"deferred", "coalesced"}
                    acked = body["tbox_version"]
        finally:
            # SIGKILL mid-pending: no flush, no graceful anything
            process.kill()
            process.wait(timeout=30)
        process, port = spawn(log_dir, tbox_path)
        try:
            with ServeClient("127.0.0.1", port) as client:
                status, health = client.request("GET", "/v1/health")
                assert status == 200
                # zero lost acknowledged edits across the crash
                assert health["tbox_version"] == acked, (health, acked)
                status, classify_body = client.request(
                    "POST", "/v1/classify", {}
                )
                assert status == 200
                expected = Reasoner(
                    parse_tbox(recover_edits[-1])
                ).classify()
                assert classify_body["groups"] == sorted(
                    sorted(g) for g in expected.groups()
                ), "recovered hierarchy diverges from last acknowledged TBox"
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=30)
    recorder.incr("bench.b9.recover_acked_edits", len(recover_edits))
    recorder.incr("bench.b9.recovered_version", acked)

    return {
        "scale": scale,
        "tbox": {
            "seed": 0,
            "n_defined": n_defined,
            "n_primitive": n_primitive,
            "n_roles": 3,
        },
        "workload_seed": 99,
        "edit_seed": 4321,
        "queries": n_queries,
        "edits": n_edits,
        "concurrency": concurrency,
        "edit_interval_s": edit_interval_s,
        "min_swap_interval_ms": throttle_ms,
        "mix": {"subsumes": 0.8, "satisfiable": 0.2},
        "baseline_p50_ms": baseline.percentile(0.5),
        "baseline_p99_ms": p99_baseline,
        "mixed_p50_ms": mixed.percentile(0.5),
        "mixed_p99_ms": p99_mixed,
        "p99_factor_limit": p99_factor,
        "p99_ratio": p99_mixed / max(p99_baseline, 1e-9),
        "baseline_throughput_rps": baseline.throughput_rps(),
        "mixed_throughput_rps": mixed.throughput_rps(),
        "edit_ack_p99_ms": edit_report.percentile(0.99),
        "swap_statuses": edit_report.swap_statuses,
        "kill_and_recover": {
            "acked_edits": len(recover_edits),
            "recovered_version": acked,
            "lost_acknowledged_edits": 0,
        },
    }


#: B10 scales: (n_defined, n_primitive, wall-clock reduction floor).
#: ``tiny`` is the CI smoke scale — it still asserts the ≥5× tableau-test
#: reduction but skips the wall-clock claim (sub-millisecond runs are
#: scheduler-noise-bound); ``full`` is the committed record's B1-scale
#: workload (the same 30-name TBox B1 classifies) with the ≥5× wall floor.
B10_SCALES: dict[str, tuple[int, int, int]] = {
    "tiny": (6, 4, 0),
    "full": (22, 8, 5),
}


def _b10_saturation() -> dict[str, Any]:
    """Consequence-based saturation vs the enhanced tableau traversal.

    Classifies one seeded Horn/EL TBox twice: once with the enhanced
    told-seeded tableau traversal (the pre-saturation default), once with
    the interned consequence-based saturation fast path the auto default
    now resolves to.  The two hierarchies are asserted identical (the
    correctness oracle), and the acceptance invariant is asserted here
    and re-checked from the committed record: saturation classifies the
    B1-scale workload with **≥ 5×** fewer tableau tests — at full scale
    also ≥ 5× less wall-clock (``bench.b10.*_classify_ms`` histograms).

    Scale via ``REPRO_B10_SCALE`` (``tiny``/``full``), like B8/B9.
    """
    import os

    from ..corpora.generators import random_tbox
    from ..dl import Reasoner
    from ..obs import Recorder, get_recorder, use_recorder

    scale = os.environ.get("REPRO_B10_SCALE", "tiny")
    if scale not in B10_SCALES:
        raise ValueError(
            f"REPRO_B10_SCALE={scale!r}; expected one of {sorted(B10_SCALES)}"
        )
    n_defined, n_primitive, min_wall_reduction = B10_SCALES[scale]

    recorder = get_recorder()
    tbox = random_tbox(0, n_defined=n_defined, n_primitive=n_primitive, n_roles=3)

    enhanced_rec = Recorder()
    t0 = time.perf_counter()
    with use_recorder(enhanced_rec):
        enhanced = Reasoner(tbox).classify(algorithm="enhanced")
    enhanced_ms = (time.perf_counter() - t0) * 1000.0
    recorder.merge(enhanced_rec)
    enhanced_tests = enhanced_rec.counters.get("tableau.solve_calls", 0)

    saturation_rec = Recorder()
    t0 = time.perf_counter()
    with use_recorder(saturation_rec):
        fast = Reasoner(tbox).classify()  # auto resolves to saturation
    saturation_ms = (time.perf_counter() - t0) * 1000.0
    recorder.merge(saturation_rec)
    saturation_tests = saturation_rec.counters.get("tableau.solve_calls", 0)

    # the correctness oracle: saturation IS the enhanced hierarchy,
    # group for group and edge for edge
    assert fast.groups() == enhanced.groups()
    assert fast.group_of == enhanced.group_of
    assert fast.poset == enhanced.poset
    assert saturation_rec.counters.get("saturation.rules_fired", 0) > 0
    assert saturation_rec.counters.get("saturation.tableau_fallbacks", 0) == 0

    recorder.observe("bench.b10.enhanced_classify_ms", enhanced_ms)
    recorder.observe("bench.b10.saturation_classify_ms", saturation_ms)
    recorder.incr("bench.b10.enhanced_tableau_tests", enhanced_tests)
    recorder.incr("bench.b10.saturation_tableau_tests", saturation_tests)

    # the acceptance criterion: >= 5x fewer tableau tests at every scale;
    # the wall-clock floor applies at full scale only
    assert saturation_tests * 5 <= enhanced_tests, (
        saturation_tests,
        enhanced_tests,
    )
    if min_wall_reduction:
        assert saturation_ms * min_wall_reduction <= enhanced_ms, (
            saturation_ms,
            enhanced_ms,
            min_wall_reduction,
        )
    return {
        "scale": scale,
        "tbox": {
            "seed": 0,
            "n_defined": n_defined,
            "n_primitive": n_primitive,
            "n_roles": 3,
        },
        "enhanced_tableau_tests": enhanced_tests,
        "saturation_tableau_tests": saturation_tests,
        "tableau_test_reduction": enhanced_tests / max(1, saturation_tests),
        "wall_reduction_floor": min_wall_reduction,
    }


#: B11 failover scales: (n_defined, n_primitive, edits, edit interval s,
#: reader concurrency, assert the gap beats a cold classification).
#: ``tiny`` is the CI smoke scale; ``full`` is the committed record,
#: whose TBox is big enough that a cold classification rebuild costs
#: visibly more than the warm promotion gap — the acceptance criterion.
B11_SCALES: dict[str, tuple[int, int, int, float, int, bool]] = {
    "tiny": (20, 8, 4, 0.02, 3, False),
    "full": (300, 80, 10, 0.05, 6, True),
}


def _b11_failover() -> dict[str, Any]:
    """Warm-standby failover under steady traffic: kill the primary,
    promote the follower, measure the gap, lose nothing.

    One primary and one follower, both real ``python -m repro serve``
    child processes (:class:`repro.serve.ServeProcess` — only a real
    process can be SIGKILLed meaningfully):

    1. **steady mixed traffic** — a paced edit stream acks against the
       primary while closed-loop readers hammer the follower; the
       follower replicates each sealed record through the incremental
       publication path (reads stay on warm snapshots throughout);
    2. **kill -9 mid-traffic** — once the follower reports zero lag,
       the primary dies with no flush and no goodbye, readers still
       running; ``POST /v1/promote`` flips the follower under a fresh
       fencing epoch and the bench measures the **promotion gap**: the
       wall time from the promote request to the first served query
       (and to the first acked write).  Asserts the promote response's
       ``logged_version`` equals the last version the dead primary
       acked — zero lost acknowledged edits — and, at full scale, that
       the gap undercuts a cold full classification of the same TBox
       (the rebuild a standby-less restart would pay);
    3. **fenced resurrection** — the ex-primary restarts on its old
       port and must come back already read-only: the new primary's
       fence retry lands, a write attempt gets 503 + the new primary's
       location, and the reader thread reports zero dropped reads
       across the whole failover.

    Scale via ``REPRO_B11_SCALE`` (``tiny``/``full``), like B9/B10.
    """
    import os
    import random as _random
    import tempfile
    import threading

    from ..corpora.generators import random_tbox, random_tbox_edit
    from ..dl import Reasoner, parse_tbox
    from ..dl.serialize import tbox_to_text
    from ..obs import get_recorder
    from ..serve import ServeProcess

    scale = os.environ.get("REPRO_B11_SCALE", "tiny")
    if scale not in B11_SCALES:
        raise ValueError(
            f"REPRO_B11_SCALE={scale!r}; expected one of {sorted(B11_SCALES)}"
        )
    (
        n_defined,
        n_primitive,
        n_edits,
        edit_interval_s,
        concurrency,
        assert_gap,
    ) = B11_SCALES[scale]

    tbox = random_tbox(0, n_defined=n_defined, n_primitive=n_primitive, n_roles=3)
    names = sorted(tbox.atomic_names())
    query_rng = _random.Random(99)

    edit_rng = _random.Random(4321)
    chain_tbox, edit_texts = tbox, []
    for _ in range(n_edits + 1):  # the last one is the post-promotion write
        chain_tbox = random_tbox_edit(edit_rng, chain_tbox)
        edit_texts.append(tbox_to_text(chain_tbox))
    edit_texts, post_promotion_text = edit_texts[:-1], edit_texts[-1]
    final_text = edit_texts[-1]

    # the cost a standby-less restart would pay: parse + classify the
    # final acked TBox from scratch (fresh Reasoner, no warm caches)
    t0 = time.perf_counter()
    Reasoner(parse_tbox(final_text)).classify()
    cold_classify_s = time.perf_counter() - t0

    # children keep durability/replication faults; exhaustion/deadline
    # would make their answers legitimately nondeterministic
    env = dict(os.environ, PYTHONPATH="src")
    armed = {
        kind.strip()
        for kind in env.get("REPRO_FAULTS", "").split(",")
        if kind.strip()
    }
    env["REPRO_FAULTS"] = ",".join(
        sorted(armed & {"torn-write", "repl-drop", "repl-dup", "repl-truncate"})
    )

    recorder = get_recorder()
    read_report = {"served": 0, "errors": [], "statuses": {}}
    readers_stop = threading.Event()

    def reader(follower: ServeProcess) -> None:
        """Closed-loop reads against the follower until told to stop."""
        with follower.client() as client:
            while not readers_stop.is_set():
                general = query_rng.choice(names)
                specific = query_rng.choice(names)
                try:
                    status, _body = client.request(
                        "POST",
                        "/v1/subsumes",
                        {"general": general, "specific": specific},
                    )
                except OSError as exc:  # pragma: no cover - read dropped
                    read_report["errors"].append(f"{type(exc).__name__}: {exc}")
                    return
                with readers_lock:
                    read_report["served"] += 1
                    read_report["statuses"][status] = (
                        read_report["statuses"].get(status, 0) + 1
                    )

    readers_lock = threading.Lock()

    def wait_for(probe, timeout_s=60.0, what="condition"):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                if probe():
                    return
            except OSError:
                pass
            time.sleep(0.02)
        raise AssertionError(f"B11: timed out waiting for {what}")

    with tempfile.TemporaryDirectory() as work_dir:
        boot_path = os.path.join(work_dir, "boot.tbox")
        with open(boot_path, "w", encoding="utf-8") as handle:
            handle.write(tbox_to_text(tbox))
        primary_log = os.path.join(work_dir, "primary-log")
        follower_log = os.path.join(work_dir, "follower-log")

        primary = ServeProcess(
            ["--tbox", boot_path, "--edit-log", primary_log], env=env
        ).start()
        follower = ServeProcess(
            [
                "--edit-log",
                follower_log,
                "--follow",
                primary.url,
                "--probe-interval-ms",
                "40",
            ],
            env=env,
        ).start()
        try:
            wait_for(
                lambda: follower.request("GET", "/v1/health")[1]["tbox_version"]
                >= 1,
                what="follower base install",
            )
            threads = [
                threading.Thread(target=reader, args=(follower,), daemon=True)
                for _ in range(concurrency)
            ]
            for thread in threads:
                thread.start()

            # -- phase 1: steady mixed traffic --------------------------- #
            acked = 1
            with primary.client() as editor:
                for text in edit_texts:
                    status, body = editor.request(
                        "POST", "/v1/tbox", {"tbox": text}
                    )
                    assert status == 200, (status, body)
                    acked = body["tbox_version"]
                    time.sleep(edit_interval_s)
            assert acked == 1 + n_edits, acked
            wait_for(
                lambda: follower.request("GET", "/v1/health")[1]["replication"][
                    "last_applied_version"
                ]
                == acked,
                what="follower catch-up",
            )

            # -- phase 2: kill -9, promote, measure the gap -------------- #
            primary.kill()
            t_promote = time.perf_counter()
            status, promoted = follower.request("POST", "/v1/promote", {})
            assert (status, promoted["promoted"]) == (200, True), promoted
            # zero lost acknowledged edits across the failover
            assert promoted["logged_version"] == acked, (promoted, acked)
            status, _body = follower.request(
                "POST",
                "/v1/subsumes",
                {"general": names[0], "specific": names[-1]},
            )
            gap_query_s = time.perf_counter() - t_promote
            assert status == 200
            status, swap = follower.request(
                "POST", "/v1/tbox", {"tbox": post_promotion_text}
            )
            gap_write_s = time.perf_counter() - t_promote
            assert status == 200, (status, swap)
            assert swap["tbox_version"] == acked + 1, swap

            readers_stop.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not read_report["errors"], read_report["errors"][:3]
            assert set(read_report["statuses"]) == {200}, read_report["statuses"]
            assert read_report["served"] > 0

            # the promoted server serves the post-promotion TBox exactly
            status, classify_body = follower.request("POST", "/v1/classify", {})
            expected = Reasoner(parse_tbox(post_promotion_text)).classify()
            assert classify_body["groups"] == sorted(
                sorted(g) for g in expected.groups()
            ), "promoted follower diverges from the acked edit chain"

            # -- phase 3: the resurrected ex-primary is fenced ----------- #
            resurrected = ServeProcess(
                [
                    "--tbox",
                    boot_path,
                    "--edit-log",
                    primary_log,
                    "--port",
                    str(primary.port),
                ],
                env=env,
            ).start()
            try:
                wait_for(
                    lambda: resurrected.request("GET", "/v1/health")[1][
                        "replication"
                    ]["fenced"],
                    what="fence to land on the ex-primary",
                )
                status, refused = resurrected.request(
                    "POST", "/v1/tbox", {"tbox": "dog [= animal"}
                )
                assert status == 503, (status, refused)
                assert refused["primary"] == follower.url, refused
                _status, ex_health = resurrected.request("GET", "/v1/health")
            finally:
                resurrected.terminate()
        finally:
            readers_stop.set()
            primary.kill()
            follower.terminate()

    recorder.observe("bench.b11.promotion_gap_ms", gap_query_s * 1000.0)
    recorder.observe("bench.b11.write_gap_ms", gap_write_s * 1000.0)
    recorder.incr("bench.b11.edits_acked", n_edits)
    recorder.incr("bench.b11.reads_served", read_report["served"])
    if assert_gap:
        assert gap_query_s < cold_classify_s, (
            f"promotion gap {gap_query_s * 1000:.1f}ms did not beat a cold "
            f"classification ({cold_classify_s * 1000:.1f}ms)"
        )

    return {
        "scale": scale,
        "tbox": {
            "seed": 0,
            "n_defined": n_defined,
            "n_primitive": n_primitive,
            "n_roles": 3,
        },
        "workload_seed": 99,
        "edit_seed": 4321,
        "edits": n_edits,
        "edit_interval_s": edit_interval_s,
        "reader_concurrency": concurrency,
        "reads_served": read_report["served"],
        "dropped_reads": 0,
        "acked_version_at_kill": acked,
        "lost_acknowledged_edits": 0,
        "promotion_gap_ms": gap_query_s * 1000.0,
        "write_gap_ms": gap_write_s * 1000.0,
        "cold_classification_ms": cold_classify_s * 1000.0,
        "gap_vs_cold_ratio": gap_query_s / max(cold_classify_s, 1e-9),
        "gap_beats_cold_required": assert_gap,
        "ex_primary": {
            "fenced": bool(ex_health["replication"]["fenced"]),
            "epoch": ex_health["replication"]["epoch"],
            "writes_refused_to": follower.url,
        },
    }


#: B12 instance-store scales: (common_n, big_n, point lookups, instance
#: queries, flatness factor).  ``common_n`` individuals load into BOTH
#: backends — the in-memory reference and sqlite — and every read is
#: cross-checked between them; ``big_n`` runs sqlite alone, which at
#: ``full`` is the 10⁶-individual scale where holding the materialized
#: store as Python objects stops being an option (the bench records the
#: tracemalloc-extrapolated estimate next to the actual on-disk bytes).
#: The flatness factor (full scale only) is the acceptance criterion:
#: the mean indexed ``instances()`` latency over 10× more rows must stay
#: within that factor — an index seek, not a scan.
B12_SCALES: dict[str, tuple[int, int, int, int, int]] = {
    "tiny": (400, 2_000, 100, 20, 0),
    "small": (5_000, 50_000, 400, 40, 0),
    "full": (100_000, 1_000_000, 1_000, 50, 5),
}


def _b12_instance_store() -> dict[str, Any]:
    """DB-backed instance store vs in-memory at 10⁵–10⁶ individuals.

    One B1-shape TBox (:func:`repro.corpora.generators.random_tbox`,
    seed 0) governs a seeded individual stream
    (:func:`repro.corpora.generators.random_individuals`).  Three
    phases:

    1. **common scale, both backends** — load, hierarchy-propagated
       materialization (:func:`repro.instdb.materialize`), point
       ``types()`` lookups, and ``instances()`` retrievals run against
       the in-memory backend and a file-backed sqlite store; every
       answer is asserted identical (the reference-backend oracle);
    2. **big scale, sqlite only** — the same workload 10× larger (10⁶
       individuals at full scale), with the load streamed through
       batched ``executemany`` inserts and the whole materialization in
       one transaction.  ``EXPLAIN QUERY PLAN`` is asserted to show an
       index seek for ``instances()`` — no full scan — at every scale;
    3. **the crossover accounting** — tracemalloc measures the
       in-memory backend's peak bytes at common scale; the record holds
       its big-scale extrapolation next to sqlite's actual file bytes,
       and (full scale) asserts the mean indexed ``instances()``
       latency stayed within the flatness factor across the 10× growth.

    Scale via ``REPRO_B12_SCALE`` (``tiny``/``small``/``full``).
    """
    import os
    import random as _random
    import tempfile
    import tracemalloc

    from ..corpora.generators import random_individuals, random_tbox
    from ..dl import Reasoner
    from ..instdb import MemoryBackend, SqliteBackend
    from ..instdb import materialize as instdb_materialize
    from ..obs import get_recorder

    scale = os.environ.get("REPRO_B12_SCALE", "small")
    if scale not in B12_SCALES:
        raise ValueError(
            f"REPRO_B12_SCALE={scale!r}; expected one of {sorted(B12_SCALES)}"
        )
    common_n, big_n, n_lookups, n_queries, flat_factor = B12_SCALES[scale]

    tbox = random_tbox(0, n_defined=22, n_primitive=8, n_roles=3)
    hierarchy = Reasoner(tbox).classify()
    concepts = sorted(tbox.atomic_names())
    roles = sorted(tbox.role_names())
    recorder = get_recorder()

    def load(backend, count: int) -> float:
        """Stream ``count`` individuals in; returns the wall seconds."""
        t0 = time.perf_counter()
        stream = random_individuals(7, count, concepts=concepts, roles=roles)
        with backend.transaction():
            if isinstance(backend, SqliteBackend):
                types: list[tuple[str, str]] = []
                role_rows: list[tuple[str, str, str]] = []
                for name, told, edges in stream:
                    types.append((name, told))
                    role_rows.extend((name, r, t) for r, t in edges)
                    if len(types) >= 20_000:
                        backend.bulk_assert(types, role_rows)
                        types, role_rows = [], []
                backend.bulk_assert(types, role_rows)
            else:
                for name, told, edges in stream:
                    backend.assert_type(name, told)
                    for r, t in edges:
                        backend.assert_role(name, r, t)
        return time.perf_counter() - t0

    def measure_reads(backend, count: int, label: str) -> dict[str, float]:
        """Point lookups + limited retrievals, per-call latencies observed."""
        rng = _random.Random(13)
        lookup_ms = []
        for _ in range(n_lookups):
            name = f"i{rng.randrange(count)}"
            t0 = time.perf_counter()
            backend.types(name)
            lookup_ms.append((time.perf_counter() - t0) * 1000.0)
            recorder.observe(f"bench.b12.{label}_point_lookup_ms", lookup_ms[-1])
        instance_ms = []
        for _ in range(n_queries):
            concept = concepts[rng.randrange(len(concepts))]
            t0 = time.perf_counter()
            backend.instances(concept, limit=100)
            instance_ms.append((time.perf_counter() - t0) * 1000.0)
            recorder.observe(f"bench.b12.{label}_instances_ms", instance_ms[-1])
        return {
            "point_lookup_mean_ms": sum(lookup_ms) / len(lookup_ms),
            "instances_mean_ms": sum(instance_ms) / len(instance_ms),
        }

    with tempfile.TemporaryDirectory() as work_dir:
        # -- phase 1: common scale, both backends, cross-checked -------- #
        tracemalloc.start()
        memory = MemoryBackend()
        memory_load_s = load(memory, common_n)
        memory_mat_s = time.perf_counter()
        memory_result = instdb_materialize(memory, hierarchy)
        memory_mat_s = time.perf_counter() - memory_mat_s
        _current, memory_peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        common = SqliteBackend(os.path.join(work_dir, "common.db"))
        common_load_s = load(common, common_n)
        common_mat_s = time.perf_counter()
        common_result = instdb_materialize(common, hierarchy)
        common_mat_s = time.perf_counter() - common_mat_s

        # the reference-backend oracle: identical counts, types, members
        assert memory.counts() == common.counts(), (
            memory.counts(), common.counts(),
        )
        assert memory_result.derived_rows == common_result.derived_rows
        check_rng = _random.Random(29)
        for _ in range(25):
            name = f"i{check_rng.randrange(common_n)}"
            assert memory.types(name) == common.types(name), name
            assert memory.types(name, derived=False) == common.types(
                name, derived=False
            ), name
        for concept in concepts[::3]:
            assert memory.instances(concept) == common.instances(concept), concept

        memory_reads = measure_reads(memory, common_n, "memory")
        common_reads = measure_reads(common, common_n, "sqlite_common")

        # indexed pushdown, deterministically: an index seek, not a scan
        plan = common.instances_plan(concepts[0])
        assert "ix_assertions_by_concept" in plan, plan
        assert "SCAN concept_assertions" not in plan, plan
        common_bytes = common.db_bytes()
        common.close()

        # -- phase 2: big scale, sqlite alone --------------------------- #
        big = SqliteBackend(os.path.join(work_dir, "big.db"))
        big_load_s = load(big, big_n)
        big_mat_s = time.perf_counter()
        big_result = instdb_materialize(big, hierarchy)
        big_mat_s = time.perf_counter() - big_mat_s
        big_reads = measure_reads(big, big_n, "sqlite_big")
        plan = big.instances_plan(concepts[0])
        assert "SCAN concept_assertions" not in plan, plan
        assert big.individual_count() == big_n
        big_bytes = big.db_bytes()
        big.close()

    recorder.observe("bench.b12.memory_load_s", memory_load_s)
    recorder.observe("bench.b12.sqlite_common_load_s", common_load_s)
    recorder.observe("bench.b12.sqlite_big_load_s", big_load_s)
    recorder.observe("bench.b12.memory_materialize_s", memory_mat_s)
    recorder.observe("bench.b12.sqlite_common_materialize_s", common_mat_s)
    recorder.observe("bench.b12.sqlite_big_materialize_s", big_mat_s)
    recorder.incr("bench.b12.common_individuals", common_n)
    recorder.incr("bench.b12.big_individuals", big_n)
    recorder.incr("bench.b12.common_derived_rows", common_result.derived_rows)
    recorder.incr("bench.b12.big_derived_rows", big_result.derived_rows)

    # the acceptance criterion (full scale): 10x the rows, (near-)flat
    # indexed retrieval — the whole point of pushing instances() down
    flatness = big_reads["instances_mean_ms"] / max(
        common_reads["instances_mean_ms"], 1e-9
    )
    if flat_factor:
        assert flatness <= flat_factor, (
            f"instances() latency grew {flatness:.1f}x from {common_n} to "
            f"{big_n} individuals (limit {flat_factor}x): not indexed?"
        )

    # the in-memory estimate at big scale vs what sqlite actually used
    memory_big_estimate = int(memory_peak_bytes * (big_n / common_n))
    return {
        "scale": scale,
        "tbox": {"seed": 0, "n_defined": 22, "n_primitive": 8, "n_roles": 3},
        "individual_seed": 7,
        "lookup_seed": 13,
        "common_individuals": common_n,
        "big_individuals": big_n,
        "point_lookups": n_lookups,
        "instance_queries": n_queries,
        "derived_rows": {
            "common": common_result.derived_rows,
            "big": big_result.derived_rows,
        },
        "load_s": {
            "memory": memory_load_s,
            "sqlite_common": common_load_s,
            "sqlite_big": big_load_s,
        },
        "materialize_s": {
            "memory": memory_mat_s,
            "sqlite_common": common_mat_s,
            "sqlite_big": big_mat_s,
        },
        "reads": {
            "memory": memory_reads,
            "sqlite_common": common_reads,
            "sqlite_big": big_reads,
        },
        "instances_latency_ratio_big_vs_common": flatness,
        "flatness_factor_limit": flat_factor,
        "bytes": {
            "memory_peak_at_common": memory_peak_bytes,
            "memory_estimated_at_big": memory_big_estimate,
            "sqlite_common_file": common_bytes,
            "sqlite_big_file": big_bytes,
        },
    }


#: B13 scaling scales: (worker counts swept, requests per count, reader
#: concurrency, n_defined, n_primitive).  ``tiny`` is the CI smoke scale
#: (2 workers, a small workload); ``full`` is the committed record's
#: 1/2/4/8 sweep under saturation.
B13_SCALES: dict[str, tuple[tuple[int, ...], int, int, int, int]] = {
    "tiny": ((1, 2), 150, 6, 20, 8),
    "full": ((1, 2, 4, 8), 600, 16, 45, 15),
}


def _b13_workers() -> dict[str, Any]:
    """Multi-worker scaling: rps/p99 vs worker count, swap propagation,
    and worker-death restart — all against real ``--workers N`` children.

    Three phases per the ISSUE's acceptance criteria:

    1. **throughput sweep** — the B7-shape mixed workload (80% subsumes
       / 20% satisfiable, closed loop) against ``--workers N`` for each
       N in the scale, plus a ``--workers 0`` single-process baseline;
       records rps and p50/p99 per worker count.  The ≥3×-at-4-workers
       speedup assertion is **core-gated**: on a box with fewer than 4
       usable CPUs the workers time-slice one core and no fork can
       manufacture parallel speedup, so the bench instead asserts a
       no-collapse floor (scaling out must not cost more than ~60% of
       single-worker throughput to routing overhead) and records
       ``available_cpus`` so the committed record is honest about why;
    2. **swap propagation** — one hot edit per worker count, measuring
       the ack latency (the front classifies once and ships the sealed
       record, so the ack already covers every live worker) and the
       time until ``/v1/health`` reports zero version skew; asserts the
       per-worker skew bound (≤ 1 pending swap at ack, 0 after);
    3. **worker death under load** — at N=2, SIGKILL one worker pid
       mid-load; asserts **zero** non-200 responses across the kill
       (acked requests are never lost — the front retries a dying
       worker's in-flight proxies on its sibling) and that the
       supervisor restarts the dead worker at the current version.

    Scale via ``REPRO_B13_SCALE`` (``tiny``/``full``), like B9/B10/B11.
    """
    import os
    import random as _random
    import signal as _signal
    import tempfile
    import threading

    from ..corpora.generators import random_tbox, random_tbox_edit
    from ..dl.serialize import tbox_to_text
    from ..obs import get_recorder
    from ..serve import ServeProcess, closed_loop

    scale = os.environ.get("REPRO_B13_SCALE", "tiny")
    if scale not in B13_SCALES:
        raise ValueError(
            f"REPRO_B13_SCALE={scale!r}; expected one of {sorted(B13_SCALES)}"
        )
    worker_counts, n_requests, concurrency, n_defined, n_primitive = B13_SCALES[
        scale
    ]
    try:
        available_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available_cpus = os.cpu_count() or 1

    tbox = random_tbox(0, n_defined=n_defined, n_primitive=n_primitive, n_roles=3)
    names = sorted(tbox.atomic_names())
    rng = _random.Random(42)
    requests = []
    for _ in range(n_requests):
        if rng.random() < 0.8:
            requests.append(
                (
                    "POST",
                    "/v1/subsumes",
                    {"general": rng.choice(names), "specific": rng.choice(names)},
                )
            )
        else:
            requests.append(
                ("POST", "/v1/satisfiable", {"concept": rng.choice(names)})
            )
    edited = random_tbox_edit(_random.Random(4321), tbox)
    edited_text = tbox_to_text(edited)

    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_FAULTS", None)  # measure serving, not injected faults
    recorder = get_recorder()

    def wait_for(probe, timeout_s=30.0, what="condition"):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                if probe():
                    return
            except OSError:
                pass
            time.sleep(0.02)
        raise AssertionError(f"B13: timed out waiting for {what}")

    def boot(extra_args):
        return ServeProcess(
            ["--tbox", boot_path, "--soft-limit", "64", *extra_args],
            env=env,
            startup_timeout_s=300.0,
        ).start()

    with tempfile.TemporaryDirectory() as work_dir:
        boot_path = os.path.join(work_dir, "boot.tbox")
        with open(boot_path, "w", encoding="utf-8") as handle:
            handle.write(tbox_to_text(tbox))

        # ---- phase 1+2: throughput and swap propagation per N -------- #
        sweep: dict[str, dict[str, Any]] = {}
        for workers in (0, *worker_counts):
            server = boot([] if workers == 0 else ["--workers", str(workers)])
            try:
                # a short warmup primes worker caches and front routing
                warm = closed_loop(
                    server, requests[: max(10, len(requests) // 10)],
                    concurrency=concurrency,
                )
                assert not warm.errors, warm.errors[:3]
                report = closed_loop(server, requests, concurrency=concurrency)
                assert not report.errors, report.errors[:3]
                assert report.status_counts == {200: n_requests}, (
                    workers, report.status_counts,
                )
                # one hot swap: ack latency covers classify-once plus
                # shipping the sealed record to every live worker
                t0 = time.perf_counter()
                status, body = server.request(
                    "POST", "/v1/tbox", {"tbox": edited_text}
                )
                swap_ack_ms = (time.perf_counter() - t0) * 1000.0
                assert (status, body["swap_status"]) == (200, "applied")
                propagation_ms = 0.0
                if workers:
                    _status, health = server.request("GET", "/v1/health")
                    block = health["workers"]
                    assert block["max_version_skew"] <= 1, block
                    t1 = time.perf_counter()
                    wait_for(
                        lambda: server.request("GET", "/v1/health")[1][
                            "workers"
                        ]["max_version_skew"]
                        == 0,
                        what=f"swap propagation at N={workers}",
                    )
                    propagation_ms = swap_ack_ms + (
                        (time.perf_counter() - t1) * 1000.0
                    )
                    # aggregated metrics must merge every worker's
                    # recorder: each applied the shipped delta once
                    _status, metrics = server.request("GET", "/v1/metrics")
                    counters = metrics["metrics"]["counters"]
                    assert counters.get("serve.delta_swaps", 0) >= workers, (
                        workers, counters.get("serve.delta_swaps"),
                    )
                else:
                    propagation_ms = swap_ack_ms
                key = str(workers)
                sweep[key] = {
                    "throughput_rps": report.throughput_rps(),
                    "p50_ms": report.percentile(0.50),
                    "p99_ms": report.percentile(0.99),
                    "swap_ack_ms": swap_ack_ms,
                    "swap_propagation_ms": propagation_ms,
                }
                recorder.incr(f"bench.b13.requests_n{key}", report.requests)
            finally:
                server.kill()

        # ---- scaling acceptance (core-gated, see docstring) ----------- #
        base_rps = sweep[str(worker_counts[0])]["throughput_rps"]
        peak_workers = max(worker_counts)
        peak_rps = sweep[str(peak_workers)]["throughput_rps"]
        speedup = peak_rps / max(1e-9, base_rps)
        gate_met = available_cpus >= 4 and peak_workers >= 4
        if gate_met:
            four_rps = sweep["4"]["throughput_rps"]
            assert four_rps >= 3.0 * base_rps, (
                f"B13: expected >=3x rps at 4 workers, got "
                f"{four_rps / max(1e-9, base_rps):.2f}x"
            )
        else:
            # single-core boxes time-slice the pool: demand that the
            # multi-process plumbing does not collapse throughput
            assert speedup >= 0.4, (
                f"B13: scaling out collapsed throughput to "
                f"{speedup:.2f}x of one worker"
            )

        # ---- phase 3: worker death under load at N=2 ------------------ #
        kill_report: dict[str, Any] = {}
        server = boot(["--workers", "2"])
        try:
            statuses: dict[int, int] = {}
            errors: list[str] = []
            stop = threading.Event()
            lock = threading.Lock()

            def hammer():
                with server.client() as client:
                    position = 0
                    while not stop.is_set():
                        method, path, body = requests[position % len(requests)]
                        position += 1
                        try:
                            status, _ = client.request(method, path, body)
                        except OSError as exc:
                            with lock:
                                errors.append(f"{type(exc).__name__}: {exc}")
                            return
                        with lock:
                            statuses[status] = statuses.get(status, 0) + 1

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            wait_for(
                lambda: sum(statuses.values()) >= 20, what="load to ramp up"
            )
            _status, health = server.request("GET", "/v1/health")
            victim = health["workers"]["workers"][0]["pid"]
            os.kill(victim, _signal.SIGKILL)
            t0 = time.perf_counter()
            wait_for(
                lambda: (
                    lambda block: block["up"] == 2
                    and block["restarts"] >= 1
                    and block["max_version_skew"] == 0
                )(server.request("GET", "/v1/health")[1]["workers"]),
                what="worker restart after SIGKILL",
            )
            restart_ms = (time.perf_counter() - t0) * 1000.0
            # let traffic keep flowing across the freshly restarted pool
            time.sleep(0.3)
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            # the acceptance bar: zero dropped acked requests — every
            # response across the kill was a 200, no transport errors
            assert not errors, errors[:3]
            assert set(statuses) == {200}, statuses
            _status, health = server.request("GET", "/v1/health")
            assert victim not in {
                w["pid"] for w in health["workers"]["workers"]
            }
            kill_report = {
                "requests_across_kill": sum(statuses.values()),
                "restart_ms": restart_ms,
                "restarts": health["workers"]["restarts"],
            }
            recorder.incr(
                "bench.b13.kill_requests", kill_report["requests_across_kill"]
            )
        finally:
            server.kill()

    return {
        "scale": scale,
        "available_cpus": available_cpus,
        "worker_counts": list(worker_counts),
        "requests_per_count": n_requests,
        "concurrency": concurrency,
        "mix": {"subsumes": 0.8, "satisfiable": 0.2},
        "tbox": {
            "seed": 0,
            "n_defined": n_defined,
            "n_primitive": n_primitive,
            "n_roles": 3,
        },
        "workload_seed": 42,
        "sweep": sweep,
        "speedup_at_peak": speedup,
        "speedup_gate": "3x-at-4-workers" if gate_met else "no-collapse-floor",
        "worker_kill": kill_report,
    }


BENCHES: dict[str, BenchSpec] = {
    "B1": BenchSpec(
        "B1", "tableau reasoning + TBox classification (chain, tree, random)", _b1_tableau
    ),
    "B2": BenchSpec(
        "B2", "VF2 isomorphism with WL prefilter on definition graphs", _b2_isomorphism
    ),
    "B3": BenchSpec(
        "B3", "triple store lookups, joins, and DL materialization", _b3_store
    ),
    "B4": BenchSpec("B4", "CYK/Earley recognition and the DFA crossover", _b4_grammar),
    "B5": BenchSpec("B5", "order-sorted rewriting to normal form", _b5_rewriting),
    "B6": BenchSpec(
        "B6", "budget-governed reasoning and escalation overhead", _b6_escalation
    ),
    "B7": BenchSpec(
        "B7",
        "batched serving throughput/latency vs one-shot reasoning calls",
        _b7_serve,
        deterministic=False,
    ),
    "B8": BenchSpec(
        "B8",
        "incremental vs full reclassification over a TBox edit stream",
        _b8_incremental,
    ),
    "B9": BenchSpec(
        "B9",
        "mixed edit+query serving with a durable edit log and kill-and-recover",
        _b9_mixed,
        deterministic=False,
    ),
    "B10": BenchSpec(
        "B10",
        "consequence-based saturation vs enhanced tableau classification",
        _b10_saturation,
    ),
    "B11": BenchSpec(
        "B11",
        "warm-standby failover: kill the primary under load, promote, lose nothing",
        _b11_failover,
        deterministic=False,
    ),
    "B12": BenchSpec(
        "B12",
        "DB-backed instance store vs in-memory at 1e5-1e6 individuals",
        _b12_instance_store,
        # counters ARE deterministic (row/derivation counts over seeded
        # data — asserted in the harness tests); params carry wall-clock
        # load/materialize timings, which are not
        deterministic=False,
    ),
    "B13": BenchSpec(
        "B13",
        "multi-worker scaling: rps/p99 vs worker count, swap propagation, worker death",
        _b13_workers,
        deterministic=False,
    ),
}


# ---------------------------------------------------------------------- #
# running and writing
# ---------------------------------------------------------------------- #


def run_bench(bench_id: str) -> dict[str, Any]:
    """Run one bench under a fresh recorder; return its JSON-ready record."""
    spec = BENCHES.get(bench_id)
    if spec is None:
        raise KeyError(
            f"unknown bench {bench_id!r}; expected one of {sorted(BENCHES)}"
        )
    from ..dl.nnf import nnf_cache_clear

    recorder = Recorder()
    t0 = time.perf_counter()
    # benches measure real work, not injected faults, and their counters
    # must stay deterministic even under REPRO_FAULTS; the process-global
    # NNF interning cache is reset so nnf.cache_hits is run-order
    # independent
    nnf_cache_clear()
    with use_recorder(recorder), _faults.suspended():
        params = spec.workload()
    wall = time.perf_counter() - t0
    snapshot = recorder.snapshot()
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": spec.bench_id,
        "description": spec.description,
        "params": params,
        "wall_time_s": wall,
        "counters": snapshot["counters"],
        "timers": snapshot["timers"],
        "histograms": snapshot["histograms"],
    }


def write_record(record: dict[str, Any], out_dir: str | Path) -> Path:
    """Write one record as ``BENCH_<id>.json`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{record['bench']}.json"
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def run_suite(
    out_dir: str | Path, *, only: Optional[Iterable[str]] = None
) -> list[Path]:
    """Run benches (all by default) and write one JSON file each."""
    ids = list(only) if only else sorted(BENCHES)
    paths = []
    for bench_id in ids:
        record = run_bench(bench_id)
        paths.append(write_record(record, out_dir))
    return paths


def validate_record(record: Any) -> list[str]:
    """Schema check for one bench record; returns a list of problems.

    Empty list = valid.  Used by the test suite and by consumers that
    read the ``BENCH_*.json`` trajectory across PRs.
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    for key, expected in RECORD_SCHEMA.items():
        if key not in record:
            problems.append(f"missing key {key!r}")
        elif expected is float:
            if not isinstance(record[key], (int, float)) or isinstance(
                record[key], bool
            ):
                problems.append(f"{key!r} is not a number")
        elif not isinstance(record[key], expected):
            problems.append(f"{key!r} is not a {expected.__name__}")
    if not problems:
        if record["schema_version"] != SCHEMA_VERSION:
            problems.append(
                f"schema_version {record['schema_version']} != {SCHEMA_VERSION}"
            )
        if record["bench"] not in BENCHES:
            problems.append(f"unknown bench id {record['bench']!r}")
        if record["wall_time_s"] < 0:
            problems.append("wall_time_s is negative")
        for name, value in record["counters"].items():
            if not isinstance(name, str) or not isinstance(value, int):
                problems.append(f"counter {name!r} is not str -> int")
        for section in ("timers", "histograms"):
            for name, cell in record[section].items():
                if not isinstance(cell, dict) or not {
                    "count",
                    "total",
                    "min",
                    "max",
                    "mean",
                } <= set(cell):
                    problems.append(f"{section} entry {name!r} malformed")
    return problems
