"""The JSON bench harness: the perf trajectory every later PR is judged by.

``python -m repro bench`` runs the B1–B5 substrate workloads under an
:class:`repro.obs.Recorder` and writes one ``BENCH_<id>.json`` per bench
(wall time + the full counter/timer snapshot).  See
:mod:`repro.bench.harness`.
"""

from .harness import (
    BENCHES,
    SCHEMA_VERSION,
    run_bench,
    run_suite,
    validate_record,
    write_record,
)

__all__ = [
    "BENCHES",
    "SCHEMA_VERSION",
    "run_bench",
    "run_suite",
    "validate_record",
    "write_record",
]
