"""summa — an executable reproduction of *Summa Contra Ontologiam*.

Santini's EDBT 2006 position paper argues that computational "ontology"
(1) lacks a structural definition, (2) presupposes an untenable theory of
meaning, and (3) may harm the disciplines it is sold to.  This library
operationalizes each argument: it implements the formal frameworks the
paper analyzes — description logic (``repro.dl``), order-sorted algebras
and the Bench-Capon & Malcolm formalism (``repro.osa``), Guarino's
intensional semantics (``repro.intensional``), formal grammars
(``repro.grammar``), structuralist semantic fields (``repro.semiotics``),
a hermeneutic interpreter (``repro.hermeneutics``), and a triple-store
database substrate (``repro.store``) — and a critique engine
(``repro.core``) that mechanically reproduces the paper's demonstrations.

Quickstart::

    from repro import parse_tbox, critique
    tbox = parse_tbox("car [= motorvehicle & some size.small")
    print(critique(tbox, label="my ontonomy").render())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-experiment reproduction record.
"""

__version__ = "1.0.0"

# the paper's contribution
from .core import (
    CritiqueReport,
    Finding,
    Section,
    Severity,
    Verdict,
    confusable_sibling,
    critique,
    decidability_table,
    differentiation_regress,
    find_collisions,
    find_cross_collisions,
    imposition_loss,
    pragmatic_profile,
)

# description logic
from .dl import (
    ABox,
    Atomic,
    BOTTOM,
    Concept,
    ConceptAssertion,
    Equivalence,
    Reasoner,
    Role,
    RoleAssertion,
    Subsumption,
    TBox,
    TOP,
    at_least,
    at_most,
    classify,
    definition_graph,
    meaning_isomorphic,
    meanings_identical,
    only,
    parse_concept,
    parse_tbox,
    some,
    structural_meaning,
)

# grammars
from .grammar import Grammar, Production, chomsky_type, cyk_recognizes, is_formal_grammar

# graphs
from .graphs import DiGraph, are_isomorphic, find_isomorphism

# Guarino's framework
from .intensional import (
    IntensionalRelation,
    OntologicalCommitment,
    WorldSpace,
    approximation_report,
    guarino_circularity,
    is_ontonomy_per_guarino,
)

# order-sorted algebra / BCM
from .osa import (
    DataDomain,
    OntologySignature,
    Ontonomy,
    OrderSortedSignature,
    SignatureModel,
    is_ontology_signature,
    is_ontonomy,
)

# semiotics
from .semiotics import (
    Lexicalization,
    SemanticField,
    correspondence_table,
    overlap_matrix,
    translation_report,
)

# hermeneutics
from .hermeneutics import Interpreter, Reader, Situation, Text, run_circle

# store
from .store import Pattern, Query, TripleStore, Var, instances_of, materialize

__all__ = [
    "__version__",
    # core
    "critique", "CritiqueReport", "Finding", "Section", "Severity", "Verdict",
    "decidability_table", "find_collisions", "find_cross_collisions",
    "confusable_sibling", "differentiation_regress", "pragmatic_profile",
    "imposition_loss",
    # dl
    "Concept", "Atomic", "TOP", "BOTTOM", "Role", "some", "only",
    "at_least", "at_most", "TBox", "Subsumption", "Equivalence",
    "ABox", "ConceptAssertion", "RoleAssertion", "Reasoner", "classify",
    "parse_concept", "parse_tbox", "definition_graph", "structural_meaning",
    "meaning_isomorphic", "meanings_identical",
    # grammar
    "Grammar", "Production", "chomsky_type", "cyk_recognizes",
    "is_formal_grammar",
    # graphs
    "DiGraph", "find_isomorphism", "are_isomorphic",
    # intensional
    "WorldSpace", "IntensionalRelation", "OntologicalCommitment",
    "approximation_report", "is_ontonomy_per_guarino", "guarino_circularity",
    # osa
    "OrderSortedSignature", "DataDomain", "OntologySignature",
    "SignatureModel", "Ontonomy", "is_ontology_signature", "is_ontonomy",
    # semiotics
    "SemanticField", "Lexicalization", "overlap_matrix",
    "correspondence_table", "translation_report",
    # hermeneutics
    "Text", "Situation", "Reader", "Interpreter", "run_circle",
    # store
    "TripleStore", "Var", "Pattern", "Query", "materialize", "instances_of",
]
