"""Resource budgets: node, branch, and wall-clock limits for reasoning.

A :class:`Budget` is the mutable ledger one governed query charges
against.  Exhaustion raises :class:`BudgetExhausted` (an internal control
signal — governed entry points catch it and return an ``UNKNOWN``
:class:`repro.robust.Verdict`, they never let it escape to callers).

Budgets compose across a run:

* :meth:`Budget.child` — a fresh per-query ledger *sharing the parent's
  wall-clock deadline*, so ``classify()`` can give every subsumption test
  its own node allowance while the whole run still honors one deadline;
* :meth:`Budget.escalated` — a geometrically larger budget for retrying
  an UNKNOWN query (see :func:`repro.robust.retry_with_escalation`);
  escalated budgets carry ``generation > 0`` and are exempt from injected
  faults, so escalation recovers deterministically.
"""

from __future__ import annotations

import time
from typing import Optional

from . import faults as _faults


class BudgetExhausted(Exception):
    """A governed computation ran out of budget; ``reason`` says which."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class Budget:
    """Node / branch / wall-clock limits with deadline checks.

    ``None`` for any limit means unlimited on that axis.  ``max_ms``
    fixes a deadline at construction time; :meth:`child` budgets inherit
    the *same* deadline rather than restarting the clock.

    >>> b = Budget(max_nodes=10)
    >>> b.note_nodes(7); b.nodes
    7
    >>> b.escalated(4).max_nodes
    40
    """

    __slots__ = ("max_nodes", "max_branches", "max_ms", "generation",
                 "nodes", "branches", "_deadline")

    def __init__(
        self,
        *,
        max_nodes: Optional[int] = None,
        max_branches: Optional[int] = None,
        max_ms: Optional[float] = None,
        generation: int = 0,
        _deadline: Optional[float] = None,
    ) -> None:
        for name, limit in (
            ("max_nodes", max_nodes),
            ("max_branches", max_branches),
            ("max_ms", max_ms),
        ):
            if limit is not None and limit < 0:
                raise ValueError(f"{name} must be non-negative, got {limit!r}")
        self.max_nodes = max_nodes
        self.max_branches = max_branches
        self.max_ms = max_ms
        self.generation = generation
        self.nodes = 0
        self.branches = 0
        if _deadline is not None:
            self._deadline = _deadline
        elif max_ms is not None:
            self._deadline = time.monotonic() + max_ms / 1000.0
        else:
            self._deadline = None

    @classmethod
    def unlimited(cls) -> "Budget":
        return cls()

    # -- charging ------------------------------------------------------- #

    def note_nodes(self, count: int) -> None:
        """Record the completion graph's node high-water mark."""
        if count > self.nodes:
            self.nodes = count
        if self.generation == 0 and _faults.should_fire("exhaustion"):
            raise BudgetExhausted("injected: forced exhaustion")
        if self.max_nodes is not None and count > self.max_nodes:
            raise BudgetExhausted(f"nodes: {count} > max_nodes={self.max_nodes}")

    def charge_branch(self, n: int = 1) -> None:
        """Charge ``n`` nondeterministic branch explorations."""
        self.branches += n
        if self.generation == 0 and _faults.should_fire("exhaustion"):
            raise BudgetExhausted("injected: forced exhaustion")
        if self.max_branches is not None and self.branches > self.max_branches:
            raise BudgetExhausted(
                f"branches: {self.branches} > max_branches={self.max_branches}"
            )

    def check_deadline(self) -> None:
        if self.generation == 0 and _faults.should_fire("deadline"):
            raise BudgetExhausted("injected: deadline expiry")
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise BudgetExhausted(f"deadline: exceeded max_ms={self.max_ms}")

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds until the deadline (``None`` when unbounded).

        Never negative: an expired deadline reads as ``0.0``.  Servers use
        this to size ``Retry-After`` hints and to decide whether a queued
        request still has enough runway to be worth starting.
        """
        if self._deadline is None:
            return None
        return max(0.0, (self._deadline - time.monotonic()) * 1000.0)

    # -- composition ---------------------------------------------------- #

    def child(self) -> "Budget":
        """A fresh per-query ledger sharing this budget's deadline."""
        return Budget(
            max_nodes=self.max_nodes,
            max_branches=self.max_branches,
            max_ms=self.max_ms,
            generation=self.generation,
            _deadline=self._deadline,
        )

    def escalated(self, factor: int = 4) -> "Budget":
        """A ``factor``-times-larger budget with a restarted deadline."""
        if factor < 1:
            raise ValueError(f"escalation factor must be >= 1, got {factor}")

        def scale(limit):
            return None if limit is None else limit * factor

        return Budget(
            max_nodes=scale(self.max_nodes),
            max_branches=scale(self.max_branches),
            max_ms=scale(self.max_ms),
            generation=self.generation + 1,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        def show(limit):
            return "∞" if limit is None else limit

        return (
            f"Budget(nodes={self.nodes}/{show(self.max_nodes)}, "
            f"branches={self.branches}/{show(self.max_branches)}, "
            f"max_ms={show(self.max_ms)}, gen={self.generation})"
        )
