"""Geometric budget escalation for UNKNOWN verdicts.

An anytime reasoner answers cheap questions cheaply and retries the
expensive ones with more resources, in the spirit of RACER's and Pellet's
timeout handling: start small, and when a query comes back UNKNOWN,
re-run it under a geometrically larger budget until it resolves or the
round cap is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..obs import recorder as _obs
from .budget import Budget
from .verdict import Verdict

#: defaults shared by the library, the CLI, and the B6 bench
DEFAULT_FACTOR = 4
DEFAULT_MAX_ROUNDS = 4


@dataclass(frozen=True)
class Escalation:
    """The outcome of :func:`retry_with_escalation`.

    ``rounds`` counts *retries* (0 = the first attempt already resolved);
    ``budget`` is the budget that produced the final verdict.
    """

    verdict: Verdict
    rounds: int
    budget: Budget


def retry_with_escalation(
    query: Callable[[Budget], Verdict],
    budget: Budget,
    *,
    factor: int = DEFAULT_FACTOR,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> Escalation:
    """Run ``query`` under ``budget``, escalating while it answers UNKNOWN.

    Each retry multiplies every finite limit by ``factor`` (and restarts
    the deadline clock); after ``max_rounds`` retries the last verdict is
    returned as-is, UNKNOWN or not.  Retries are counted in the
    ``robust.escalations`` obs counter.

    >>> from repro.robust import Budget, Verdict, PROVED
    >>> calls = []
    >>> def q(b):
    ...     calls.append(b.max_nodes)
    ...     return PROVED if b.max_nodes >= 40 else Verdict.unknown("too small")
    >>> retry_with_escalation(q, Budget(max_nodes=10)).verdict is PROVED
    True
    >>> calls
    [10, 40]
    """
    verdict = query(budget)
    rounds = 0
    while verdict.is_unknown and rounds < max_rounds:
        rounds += 1
        budget = budget.escalated(factor)
        _obs.incr("robust.escalations")
        verdict = query(budget)
    return Escalation(verdict, rounds, budget)
