"""Deterministic, seeded fault injection for the robustness layer.

Production failure modes — budget exhaustion, deadline expiry, torn
writes — are rare in tests unless injected.  This module installs one
*current* :class:`FaultPlan`, mirroring the ``NullRecorder`` pattern of
:mod:`repro.obs`: the default :data:`NULL_PLAN` makes every fault point a
single global load plus an identity check, so instrumented hot paths pay
(almost) nothing until a caller (or the ``REPRO_FAULTS`` environment
variable) arms a plan.

Fault kinds and the points that consult them:

``exhaustion``
    :meth:`repro.robust.Budget` charge points — a firing forces a
    ``BudgetExhausted`` as if the node/branch budget had run out.
``deadline``
    :meth:`Budget.check_deadline` — a firing simulates wall-clock expiry.
``torn-write``
    :func:`repro.store.persistence.save_jsonl` /
    :func:`~repro.store.persistence.atomic_write_text` — a firing
    truncates the temp-file payload mid-write, exercising the
    verify-and-rewrite recovery path — and
    :func:`~repro.store.persistence.append_verified_bytes` — a firing
    truncates an edit-log record mid-append, exercising the
    truncate-and-rewrite recovery that keeps acknowledged edits durable.
``repl-drop``
    :meth:`repro.serve.replication.FollowerChannel.poll_once` — a firing
    discards a fetched record batch before it is applied, as if the
    response were lost in flight; the follower re-requests it next poll.
``repl-dup``
    The same point — a firing applies a fetched batch *twice*,
    exercising the stale-record skip that makes delivery idempotent.
``repl-truncate``
    The same point — a firing cuts a fetched batch to a prefix,
    simulating a connection dropped mid-stream; the remainder arrives
    on a later poll.

Injection targets *first attempts only*: escalated budgets
(``Budget.generation > 0``) and persistence rewrite attempts bypass the
plan, so recovery paths converge deterministically — a suite run under
``REPRO_FAULTS=exhaustion,torn-write`` must stay green by absorbing the
faults, not by dodging them.

Schedules are deterministic: each kind keeps an activation counter and
fires when ``(count + crc32(kind) + seed) % period == 0``.  Two plans
built with the same arguments fire at exactly the same activations.
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from typing import Iterable, Iterator

from ..obs import recorder as _obs

__all__ = [
    "FaultPlan",
    "NULL_PLAN",
    "KINDS",
    "get_plan",
    "set_plan",
    "use_faults",
    "suspended",
    "should_fire",
    "plan_from_env",
]

#: every fault kind a point may consult
KINDS = frozenset(
    {"exhaustion", "deadline", "torn-write", "repl-drop", "repl-dup",
     "repl-truncate"}
)


class FaultPlan:
    """A seeded schedule deciding which fault-point activations fire."""

    __slots__ = ("kinds", "period", "seed", "_counts")

    def __init__(
        self, kinds: Iterable[str], *, period: int = 5, seed: int = 0
    ) -> None:
        kinds = frozenset(kinds)
        unknown = kinds - KINDS
        if unknown:
            raise ValueError(
                f"unknown fault kinds {sorted(unknown)}; expected a subset of "
                f"{sorted(KINDS)}"
            )
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.kinds = kinds
        self.period = period
        self.seed = seed
        self._counts: dict[str, int] = {}

    @classmethod
    def always(cls, *kinds: str) -> "FaultPlan":
        """A plan whose armed kinds fire on every activation."""
        return cls(kinds, period=1)

    def fires(self, kind: str) -> bool:
        """Advance ``kind``'s activation counter; True when this one fires."""
        if kind not in self.kinds:
            return False
        count = self._counts.get(kind, 0)
        self._counts[kind] = count + 1
        return (count + zlib.crc32(kind.encode("utf-8")) + self.seed) % self.period == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(kinds={sorted(self.kinds)}, period={self.period}, "
            f"seed={self.seed})"
        )


#: the disabled default; identity-compared on every fault point
NULL_PLAN = FaultPlan(frozenset())

_current: FaultPlan = NULL_PLAN


def get_plan() -> FaultPlan:
    """The plan fault points currently consult (NULL_PLAN when disarmed)."""
    return _current


def set_plan(plan: FaultPlan | None) -> FaultPlan:
    """Install ``plan`` as current (``None`` restores the null default)."""
    global _current
    _current = plan if plan is not None else NULL_PLAN
    return _current


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the block."""
    global _current
    previous = _current
    _current = plan
    try:
        yield plan
    finally:
        _current = previous


def suspended() -> "contextmanager":
    """Disarm all fault injection inside the block.

    Tests asserting exact definite outcomes use this so they stay
    deterministic when the suite runs with ``REPRO_FAULTS`` armed.
    """
    return use_faults(NULL_PLAN)


def should_fire(kind: str) -> bool:
    """Consult the current plan at a fault point (free when disarmed)."""
    plan = _current
    if plan is NULL_PLAN:
        return False
    if plan.fires(kind):
        _obs.incr(f"faults.fired.{kind}")
        return True
    return False


def plan_from_env(environ: "os._Environ | dict[str, str] | None" = None) -> FaultPlan:
    """Build a plan from ``REPRO_FAULTS`` (comma-separated kinds).

    ``REPRO_FAULTS_PERIOD`` and ``REPRO_FAULTS_SEED`` tune the schedule.
    Unknown kind names are ignored so a typo'd environment cannot crash
    imports; an unset or empty variable yields :data:`NULL_PLAN`.
    """
    environ = os.environ if environ is None else environ
    raw = environ.get("REPRO_FAULTS", "")
    kinds = {k.strip() for k in raw.split(",") if k.strip()} & KINDS
    if not kinds:
        return NULL_PLAN
    return FaultPlan(
        kinds,
        period=int(environ.get("REPRO_FAULTS_PERIOD", "5")),
        seed=int(environ.get("REPRO_FAULTS_SEED", "0")),
    )


# arm from the environment once, at import: `REPRO_FAULTS=exhaustion,torn-write
# python -m pytest` runs the whole suite under injection
set_plan(plan_from_env())
