"""Three-valued verdicts for resource-governed reasoning.

A governed query answers ``PROVED``, ``DISPROVED``, or ``UNKNOWN`` — the
third value carries the *reason* the engine gave up (node budget,
deadline, injected fault) so that callers can report it, retry with a
bigger budget (:func:`repro.robust.retry_with_escalation`), or degrade
gracefully.  Definite verdicts are exactly the answers the ungoverned
boolean services would have produced: a completed tableau run is a
completed tableau run, whichever API asked for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

_PROVED = "proved"
_DISPROVED = "disproved"
_UNKNOWN = "unknown"


@dataclass(frozen=True)
class Verdict:
    """One of ``PROVED`` / ``DISPROVED`` / ``UNKNOWN(reason)``.

    >>> PROVED.as_bool()
    True
    >>> Verdict.unknown("nodes: 11 > max_nodes=10").is_definite
    False
    """

    value: str
    reason: Optional[str] = None

    # -- constructors --------------------------------------------------- #

    @classmethod
    def unknown(cls, reason: str) -> "Verdict":
        return cls(_UNKNOWN, reason)

    @classmethod
    def from_bool(cls, answer: bool) -> "Verdict":
        return PROVED if answer else DISPROVED

    # -- inspection ----------------------------------------------------- #

    @property
    def is_definite(self) -> bool:
        return self.value != _UNKNOWN

    @property
    def is_unknown(self) -> bool:
        return self.value == _UNKNOWN

    def as_bool(self) -> bool:
        """The boolean answer; raises ``ValueError`` on UNKNOWN."""
        if self.value == _PROVED:
            return True
        if self.value == _DISPROVED:
            return False
        raise ValueError(f"no boolean answer for UNKNOWN verdict ({self.reason})")

    def negated(self) -> "Verdict":
        """PROVED ↔ DISPROVED; UNKNOWN stays UNKNOWN (same reason)."""
        if self.value == _PROVED:
            return DISPROVED
        if self.value == _DISPROVED:
            return PROVED
        return self

    def __str__(self) -> str:
        if self.is_unknown and self.reason:
            return f"UNKNOWN ({self.reason})"
        return self.value.upper()


#: the two definite verdicts (``UNKNOWN`` carries a reason, so it has a
#: factory rather than a constant)
PROVED = Verdict(_PROVED)
DISPROVED = Verdict(_DISPROVED)
