"""Resource governance and graceful degradation.

The tableau procedure is worst-case exponential; a production service
cannot let one pathological query take the whole run down.  This package
supplies the governance layer the reasoning services thread through:

* :class:`Budget` — node / branch / wall-clock limits with deadline
  checks, per-query :meth:`~Budget.child` ledgers, and geometric
  :meth:`~Budget.escalated` retries;
* :class:`Verdict` — three-valued ``PROVED`` / ``DISPROVED`` /
  ``UNKNOWN(reason)`` answers, so exhaustion is an expected outcome
  instead of an exception;
* :func:`retry_with_escalation` — re-run an UNKNOWN query under
  geometrically escalated budgets up to a cap;
* :mod:`repro.robust.faults` — deterministic, seeded fault injection
  (forced exhaustion, deadline expiry, torn writes) behind a
  zero-cost-when-disabled null plan, armable via ``REPRO_FAULTS``.

Counters: ``robust.exhaustions`` (budget trips), ``robust.escalations``
(retry rounds), ``robust.unknown_verdicts`` (UNKNOWNs returned to
callers), ``faults.fired.<kind>``.
"""

from . import faults
from .budget import Budget, BudgetExhausted
from .escalate import (
    DEFAULT_FACTOR,
    DEFAULT_MAX_ROUNDS,
    Escalation,
    retry_with_escalation,
)
from .verdict import DISPROVED, PROVED, Verdict

__all__ = [
    "Budget",
    "BudgetExhausted",
    "Verdict",
    "PROVED",
    "DISPROVED",
    "Escalation",
    "retry_with_escalation",
    "DEFAULT_FACTOR",
    "DEFAULT_MAX_ROUNDS",
    "faults",
]
