"""BCM ontonomies: ``(Σ, A)`` pairs and their models.

"An ontonomy is then simply a pair (Σ, A), where Σ is an ontology
signature and A a set of axioms.  A model of such an ontonomy is a model
of Σ that satisfies the axioms of A." (paper §2, after Definition 1)

A model of an ontology signature assigns a finite extent to every class —
monotone along ≤, so subclass extents are included in superclass extents —
and a total interpretation to every attribute symbol, mapping each member
of the owning class into the value type's extent or carrier.  Axioms are
then checked against that interpretation.

The axiom language is deliberately small but non-trivial: subset-,
disjointness-, coverage- and attribute-range constraints — enough to
state the vehicle corpus and to exercise model checking, while remaining
decidable on finite extents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from .ontology_signature import OntologySignature, OntologySignatureError


class OntonomyError(Exception):
    """Raised on ill-formed ontonomies or interpretations."""


# ---------------------------------------------------------------------- #
# axioms
# ---------------------------------------------------------------------- #


class Axiom:
    """Base class for ontonomy axioms (immutable, hashable)."""

    def holds_in(self, model: "SignatureModel") -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class SubclassAxiom(Axiom):
    """Extent inclusion: ``sub ⊑ sup`` beyond what the hierarchy forces."""

    sub: str
    sup: str

    def holds_in(self, model: "SignatureModel") -> bool:
        return model.extent(self.sub) <= model.extent(self.sup)

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"


@dataclass(frozen=True)
class DisjointAxiom(Axiom):
    """Extent disjointness of two classes."""

    left: str
    right: str

    def holds_in(self, model: "SignatureModel") -> bool:
        return not (model.extent(self.left) & model.extent(self.right))

    def __str__(self) -> str:
        return f"{self.left} ⊓ {self.right} = ∅"


@dataclass(frozen=True)
class CoverageAxiom(Axiom):
    """The parts jointly exhaust the whole: ``whole ⊆ ∪ parts``."""

    whole: str
    parts: tuple[str, ...]

    def holds_in(self, model: "SignatureModel") -> bool:
        union: set = set()
        for part in self.parts:
            union |= model.extent(part)
        return model.extent(self.whole) <= union

    def __str__(self) -> str:
        return f"{self.whole} ⊑ {' ⊔ '.join(self.parts)}"


@dataclass(frozen=True)
class AttributeValueAxiom(Axiom):
    """Every member of ``owner`` has attribute ``attribute`` valued in ``allowed``."""

    owner: str
    attribute: str
    allowed: frozenset

    def holds_in(self, model: "SignatureModel") -> bool:
        table = model.attribute_table(self.owner, self.attribute)
        return all(value in self.allowed for value in table.values())

    def __str__(self) -> str:
        return f"∀x∈{self.owner}. {self.attribute}(x) ∈ {set(self.allowed)!r}"


# ---------------------------------------------------------------------- #
# models of an ontology signature
# ---------------------------------------------------------------------- #


class SignatureModel:
    """A finite interpretation of an :class:`OntologySignature`.

    ``extents`` maps classes to finite sets of individuals; ``attributes``
    maps ``(class, attribute-name)`` to a table individual → value.
    Construction enforces:

    * extent monotonicity: ``c ≤ c′`` implies ``extent(c) ⊆ extent(c′)``;
    * attribute totality: every declared attribute of ``c`` is defined on
      every member of ``c``'s extent;
    * attribute typing: values land in the value type's extent (class) or
      carrier (sort).
    """

    def __init__(
        self,
        signature: OntologySignature,
        extents: Mapping[str, Iterable[Hashable]],
        attributes: Mapping[tuple[str, str], Mapping[Hashable, Hashable]] | None = None,
    ) -> None:
        self.signature = signature
        self._extents: dict[str, frozenset] = {
            c: frozenset(extents.get(c, ())) for c in signature.classes.elements
        }
        self._attributes: dict[tuple[str, str], dict[Hashable, Hashable]] = {
            key: dict(table) for key, table in (attributes or {}).items()
        }
        self._validate()

    def _validate(self) -> None:
        sig = self.signature
        for c1 in sig.classes.elements:
            for c2 in sig.classes.elements:
                if sig.classes.leq(c1, c2) and not self._extents[c1] <= self._extents[c2]:
                    raise OntonomyError(
                        f"extent of {c1!r} not included in extent of {c2!r} "
                        f"despite {c1!r} ≤ {c2!r}"
                    )
        for (owner, value_type), names in sig.attributes.items():
            for name in names:
                table = self._attributes.get((owner, name))
                if table is None:
                    raise OntonomyError(
                        f"attribute {name!r} of class {owner!r} has no interpretation"
                    )
                for individual in self._extents[owner]:
                    if individual not in table:
                        raise OntonomyError(
                            f"attribute {name!r} undefined on {individual!r} ∈ {owner!r}"
                        )
                    value = table[individual]
                    if value_type in sig.classes:
                        if value not in self._extents[value_type]:
                            raise OntonomyError(
                                f"attribute {name!r} maps {individual!r} to {value!r}, "
                                f"outside the extent of class {value_type!r}"
                            )
                    else:
                        carrier = sig.data_domain.model.carriers.get(value_type, frozenset())
                        if value not in carrier:
                            raise OntonomyError(
                                f"attribute {name!r} maps {individual!r} to {value!r}, "
                                f"outside the carrier of sort {value_type!r}"
                            )

    def extent(self, class_name: str) -> frozenset:
        if class_name not in self._extents:
            raise OntonomyError(f"unknown class {class_name!r}")
        return self._extents[class_name]

    def attribute_table(self, owner: str, attribute: str) -> dict[Hashable, Hashable]:
        table = self._attributes.get((owner, attribute))
        if table is None:
            raise OntonomyError(f"no interpretation for {attribute!r} on {owner!r}")
        return dict(table)

    def individuals(self) -> frozenset:
        out: set = set()
        for extent in self._extents.values():
            out |= extent
        return frozenset(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignatureModel(individuals={len(self.individuals())})"


class Ontonomy:
    """The pair ``(Σ, A)``: an ontology signature plus axioms.

    This is the artifact the paper says the BCM theory — alone among the
    definitions it surveys — actually *defines*.  Membership is decidable
    (:func:`is_ontonomy`), and model-hood of a candidate interpretation is
    decidable (:meth:`is_model`).
    """

    def __init__(self, signature: OntologySignature, axioms: Iterable[Axiom] = ()) -> None:
        self.signature = signature
        self.axioms = list(axioms)
        for axiom in self.axioms:
            if not isinstance(axiom, Axiom):
                raise OntonomyError(f"not an axiom: {axiom!r}")

    def is_model(self, model: SignatureModel) -> bool:
        """True iff ``model`` interprets this signature and satisfies all axioms."""
        if model.signature is not self.signature:
            raise OntonomyError("model was built for a different signature")
        return all(axiom.holds_in(model) for axiom in self.axioms)

    def failing_axioms(self, model: SignatureModel) -> list[Axiom]:
        """The axioms ``model`` violates (empty iff :meth:`is_model`)."""
        return [axiom for axiom in self.axioms if not axiom.holds_in(model)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ontonomy({self.signature!r}, axioms={len(self.axioms)})"


def is_ontonomy(candidate: object) -> bool:
    """Decidable membership in the class of BCM ontonomies.

    The structural-definition property the paper demands: given an
    arbitrary Python object, return True/False by inspecting structure
    alone.  Contrast :func:`repro.core.definitions.classify`, where the
    Gruber and Guarino 'definitions' can only answer *Undecidable*.
    """
    return isinstance(candidate, Ontonomy)
