"""Order-sorted signatures (Goguen & Meseguer).

The paper (§2) credits Bench-Capon & Malcolm with "a formally correct,
structural definition of ontonomy", whose theoretical presupposition is
Goguen and Meseguer's *order-sorted algebra*: a multi-sorted algebra
whose set of sorts carries a partial order (the sub-sort relation).
This module implements the signatures: a poset of sorts plus operation
symbols with (possibly overloaded) ranks, and the two classical
well-formedness conditions — *monotonicity* and *regularity* — that make
least sorts of terms exist.

The point the critique engine extracts from all this (experiment Q4) is
decidability: given an arbitrary object, ``OrderSortedSignature`` either
constructs or raises — membership in the class of signatures is decided
by structure alone, with no appeal to intended use.  That is exactly the
property Gruber's and Guarino's definitions lack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..order import Poset


class SignatureError(Exception):
    """Raised when a signature violates order-sorted well-formedness."""


@dataclass(frozen=True)
class OpDecl:
    """An operation declaration (one *rank* of a possibly overloaded symbol).

    ``arg_sorts`` is empty for constants.
    """

    name: str
    arg_sorts: tuple[str, ...]
    result: str

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __str__(self) -> str:
        if not self.arg_sorts:
            return f"{self.name} : -> {self.result}"
        return f"{self.name} : {' '.join(self.arg_sorts)} -> {self.result}"


class OrderSortedSignature:
    """A signature ``(S, ≤, Σ)``: sorts with a subsort order, plus operations.

    >>> sorts = Poset(["Nat", "Int"], [("Nat", "Int")])
    >>> sig = OrderSortedSignature(sorts, [
    ...     OpDecl("zero", (), "Nat"),
    ...     OpDecl("neg", ("Int",), "Int"),
    ... ])
    >>> sig.is_monotone()
    True
    """

    def __init__(self, sorts: Poset, operations: Iterable[OpDecl]) -> None:
        self.sorts = sorts
        self._ops: dict[str, list[OpDecl]] = {}
        for decl in operations:
            for sort in (*decl.arg_sorts, decl.result):
                if sort not in sorts:
                    raise SignatureError(f"operation {decl} uses unknown sort {sort!r}")
            ranks = self._ops.setdefault(decl.name, [])
            if decl not in ranks:
                ranks.append(decl)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def operation_names(self) -> list[str]:
        return sorted(self._ops)

    def ranks(self, name: str) -> list[OpDecl]:
        """All declared ranks of the symbol ``name``."""
        if name not in self._ops:
            raise SignatureError(f"unknown operation {name!r}")
        return list(self._ops[name])

    def declarations(self) -> Iterator[OpDecl]:
        for ranks in self._ops.values():
            yield from ranks

    def constants(self) -> list[OpDecl]:
        return [d for d in self.declarations() if d.arity == 0]

    def has_operation(self, name: str) -> bool:
        return name in self._ops

    def subsort(self, a: str, b: str) -> bool:
        """True iff sort ``a ≤ b``."""
        return self.sorts.leq(a, b)

    def args_leq(self, w1: tuple[str, ...], w2: tuple[str, ...]) -> bool:
        """Pointwise sort comparison of two argument-sort strings."""
        return len(w1) == len(w2) and all(self.sorts.leq(a, b) for a, b in zip(w1, w2))

    # ------------------------------------------------------------------ #
    # well-formedness (Goguen–Meseguer conditions)
    # ------------------------------------------------------------------ #

    def is_monotone(self) -> bool:
        """Monotonicity: ``w1 ≤ w2`` implies ``s1 ≤ s2`` for ranks of one symbol.

        Overloading must be order-compatible: making arguments more
        specific can only make the result more specific.
        """
        for ranks in self._ops.values():
            for d1, d2 in itertools.permutations(ranks, 2):
                if self.args_leq(d1.arg_sorts, d2.arg_sorts) and not self.sorts.leq(
                    d1.result, d2.result
                ):
                    return False
        return True

    def applicable_ranks(self, name: str, arg_sorts: tuple[str, ...]) -> list[OpDecl]:
        """Ranks of ``name`` whose argument sorts dominate ``arg_sorts``."""
        return [d for d in self.ranks(name) if self.args_leq(arg_sorts, d.arg_sorts)]

    def least_rank(self, name: str, arg_sorts: tuple[str, ...]) -> Optional[OpDecl]:
        """The least applicable rank for the given argument sorts, if any.

        Regular signatures guarantee it exists whenever any rank applies.
        """
        candidates = self.applicable_ranks(name, arg_sorts)
        least = [
            d
            for d in candidates
            if all(self.args_leq(d.arg_sorts, other.arg_sorts) for other in candidates)
        ]
        return least[0] if least else None

    def is_regular(self) -> bool:
        """Regularity: every applicable argument tuple has a least rank.

        Checked exhaustively over all sort tuples dominated by some rank —
        exponential in arity, fine for the small signatures ontonomies use.
        """
        for name, ranks in self._ops.items():
            arities = {d.arity for d in ranks}
            for arity in arities:
                same = [d for d in ranks if d.arity == arity]
                space = itertools.product(self.sorts.elements, repeat=arity)
                for w0 in space:
                    if any(self.args_leq(w0, d.arg_sorts) for d in same):
                        if self.least_rank(name, w0) is None:
                            return False
        return True

    def validate(self) -> None:
        """Raise :class:`SignatureError` unless monotone and regular."""
        if not self.is_monotone():
            raise SignatureError("signature is not monotone")
        if not self.is_regular():
            raise SignatureError("signature is not regular")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_ranks = sum(len(r) for r in self._ops.values())
        return f"OrderSortedSignature(sorts={len(self.sorts)}, ops={len(self._ops)}, ranks={n_ranks})"
