"""Initial (term) algebras of order-sorted equational theories.

The canonical model Goguen–Meseguer theories come with: carriers are
ground-term normal forms, operations act by "apply, then normalize".
When the normal forms are finite (as in the boolean and enumeration
theories BCM data domains use), the construction yields a
:class:`repro.osa.algebra.FiniteAlgebra` that is a model of the theory by
construction — and `DataDomain(theory, term_algebra(theory))` gives every
theory a ready-made data domain without hand-writing carriers.
"""

from __future__ import annotations

from .algebra import AlgebraError, FiniteAlgebra
from .equations import EquationalTheory, RewriteSystem
from .terms import OSApp, ground_terms, least_sort


class ClosureError(AlgebraError):
    """Raised when the normal forms do not close at the explored depth."""


def term_algebra(
    theory: EquationalTheory,
    *,
    max_depth: int = 4,
    max_steps: int = 10_000,
) -> FiniteAlgebra:
    """The initial algebra on ground-term normal forms.

    Enumerates ground terms to ``max_depth``, normalizes them, and checks
    *closure*: applying any operation to normal forms must again yield one
    of the collected normal forms.  Theories with infinitely many normal
    forms (Peano numerals) fail closure and raise :class:`ClosureError` —
    by design, since a :class:`FiniteAlgebra` cannot carry them.
    """
    signature = theory.signature
    system = RewriteSystem(theory, max_steps=max_steps)

    normal_forms: list[OSApp] = []
    for term in ground_terms(signature, max_depth):
        nf = system.normalize(term)
        if nf not in normal_forms:
            normal_forms.append(nf)
    if not normal_forms:
        raise ClosureError("the signature has no ground terms; add constants")

    # carrier of sort s: normal forms whose least sort is ≤ s — this makes
    # the subsort-inclusion condition of FiniteAlgebra hold by construction
    carriers: dict[str, set] = {s: set() for s in signature.sorts.elements}
    for nf in normal_forms:
        sort = least_sort(nf, signature)
        for s in signature.sorts.elements:
            if signature.sorts.leq(sort, s):
                carriers[s].add(nf)

    operations: dict[str, dict[tuple, OSApp]] = {}
    available = set(normal_forms)
    for decl in signature.declarations():
        table = operations.setdefault(decl.name, {})
        pools = [sorted(carriers[s], key=str) for s in decl.arg_sorts]
        import itertools

        for args in itertools.product(*pools):
            if args in table:
                continue
            result = system.normalize(OSApp(decl.name, tuple(args)))
            if result not in available:
                raise ClosureError(
                    f"normal form {result} of {decl.name}{args} not reached "
                    f"at depth {max_depth}; the theory's normal forms may be "
                    "infinite, or max_depth is too small"
                )
            table[args] = result

    return FiniteAlgebra(signature, carriers, operations)
