"""Bench-Capon & Malcolm ontology signatures (the paper's Definition 1).

    An ontology signature is a triple (D, C, A), where D = (T, D) is a
    data domain, C = (C, ≤) is a partial order, called a class hierarchy,
    and A is a family of sets A_{c,e} of attribute symbols for c ∈ C and
    e ∈ C + S, where S is the set of sorts in T.  The family is such that
    A_{c′,e} ⊆ A_{c,e′} whenever c ≤ c′ and e ≤ e′.

This module implements that definition *verbatim*, including the
attribute-family monotonicity condition (attributes declared on a
superclass with some value type are inherited by subclasses, where they
may also appear at wider value types).  The paper's verdict — rigorous
but "too limited ... strongly oriented towards monocriterial taxonomies"
— is made measurable by :meth:`OntologySignature.expressiveness_profile`:
the only primitive inter-class relation is ≤; everything else must be
encoded as attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from ..order import Poset
from .algebra import DataDomain


class OntologySignatureError(Exception):
    """Raised when the triple (D, C, A) violates Definition 1."""


@dataclass(frozen=True)
class AttributeSymbol:
    """An attribute symbol ``a : c → e`` (class ``c``, value type ``e``).

    ``value_type`` names either a class of ``C`` or a sort of ``T``; which
    one is determined by the signature that owns the symbol.
    """

    name: str
    owner: str
    value_type: str

    def __str__(self) -> str:
        return f"{self.name} : {self.owner} -> {self.value_type}"


class OntologySignature:
    """The triple ``(D, C, A)`` of Definition 1, validated at construction.

    ``attributes`` maps ``(c, e)`` pairs to sets of attribute names.  The
    *value order* on ``C + S`` is the disjoint union of the class order
    and the sort order (a class is never comparable with a sort), which is
    the natural reading of the definition's ``e ≤ e′``.
    """

    def __init__(
        self,
        data_domain: DataDomain,
        class_hierarchy: Poset,
        attributes: Mapping[tuple[str, str], Iterable[str]],
    ) -> None:
        self.data_domain = data_domain
        self.classes = class_hierarchy
        self.sorts = data_domain.sorts

        overlap = set(class_hierarchy.elements) & set(self.sorts.elements)
        if overlap:
            raise OntologySignatureError(
                f"class names and sort names must be disjoint; shared: {sorted(overlap)}"
            )

        self.attributes: dict[tuple[str, str], frozenset[str]] = {}
        for (c, e), names in attributes.items():
            if c not in class_hierarchy:
                raise OntologySignatureError(f"attribute owner {c!r} is not a class")
            if e not in class_hierarchy and e not in self.sorts:
                raise OntologySignatureError(
                    f"attribute value type {e!r} is neither a class nor a sort"
                )
            self.attributes[(c, e)] = frozenset(names)

        self._check_family_condition()

    # ------------------------------------------------------------------ #
    # Definition 1's side condition
    # ------------------------------------------------------------------ #

    def value_leq(self, e1: str, e2: str) -> bool:
        """The order on ``C + S``: class order ∪ sort order, never across."""
        if e1 in self.classes and e2 in self.classes:
            return self.classes.leq(e1, e2)
        if e1 in self.sorts and e2 in self.sorts:
            return self.sorts.leq(e1, e2)
        return False

    def attribute_set(self, c: str, e: str) -> frozenset[str]:
        """``A_{c,e}`` (empty when undeclared)."""
        return self.attributes.get((c, e), frozenset())

    def _check_family_condition(self) -> None:
        """Enforce ``A_{c′,e} ⊆ A_{c,e′}`` whenever ``c ≤ c′`` and ``e ≤ e′``."""
        value_types = list(self.classes.elements) + list(self.sorts.elements)
        for c in self.classes.elements:
            for c_prime in self.classes.elements:
                if not self.classes.leq(c, c_prime):
                    continue
                for e in value_types:
                    for e_prime in value_types:
                        if not self.value_leq(e, e_prime):
                            continue
                        upper = self.attribute_set(c_prime, e)
                        lower = self.attribute_set(c, e_prime)
                        if not upper <= lower:
                            missing = sorted(upper - lower)
                            raise OntologySignatureError(
                                f"family condition violated: A[{c_prime!r},{e!r}] ⊄ "
                                f"A[{c!r},{e_prime!r}] (missing {missing}); "
                                f"{c!r} ≤ {c_prime!r} and {e!r} ≤ {e_prime!r}"
                            )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def all_attributes_of(self, c: str) -> frozenset[AttributeSymbol]:
        """Every attribute visible on class ``c`` (declared or inherited).

        By the family condition, anything in ``A_{c′,e}`` for ``c ≤ c′``
        already appears in ``A_{c,e}``; this method simply collects the
        ``A_{c,·}`` row into symbols.
        """
        out = set()
        for (owner, value_type), names in self.attributes.items():
            if owner == c:
                for name in names:
                    out.add(AttributeSymbol(name, owner, value_type))
        return frozenset(out)

    def is_subclass(self, c1: str, c2: str) -> bool:
        return self.classes.leq(c1, c2)

    def expressiveness_profile(self) -> dict[str, int]:
        """Quantify the paper's 'monocriterial taxonomy' verdict.

        Returns counts of the two kinds of relational structure the
        formalism can express: subclass links (the only primitive
        inter-class relation) versus attribute declarations (everything
        else, demoted to typed features).  Experiment Q4 reports this
        profile to show where the expressive burden falls.
        """
        subclass_links = sum(
            1
            for c1 in self.classes.elements
            for c2 in self.classes.elements
            if c1 != c2 and self.classes.leq(c1, c2)
        )
        attribute_declarations = sum(len(v) for v in self.attributes.values())
        class_valued = sum(
            len(v) for (c, e), v in self.attributes.items() if e in self.classes
        )
        return {
            "classes": len(self.classes),
            "sorts": len(self.sorts),
            "subclass_links": subclass_links,
            "attribute_declarations": attribute_declarations,
            "class_valued_attributes": class_valued,
            "sort_valued_attributes": attribute_declarations - class_valued,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OntologySignature(classes={len(self.classes)}, "
            f"sorts={len(self.sorts)}, attribute_cells={len(self.attributes)})"
        )


def is_ontology_signature(
    data_domain: object, class_hierarchy: object, attributes: object
) -> bool:
    """Decide membership in the class of BCM ontology signatures.

    This is the methodological payload of the paper's §2: with a
    *structural* definition, an arbitrary candidate triple either is or
    is not an ontology signature, decidably, with no reference to its
    intended use.  Compare :func:`repro.core.definitions.classify`.
    """
    if not isinstance(data_domain, DataDomain) or not isinstance(class_hierarchy, Poset):
        return False
    if not isinstance(attributes, Mapping):
        return False
    try:
        OntologySignature(data_domain, class_hierarchy, dict(attributes))
    except (OntologySignatureError, TypeError, ValueError):
        return False
    return True
