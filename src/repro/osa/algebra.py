"""Finite order-sorted algebras: models of equational theories.

An order-sorted algebra ``(Ω, (A_α | α ∈ S))`` (paper §2) assigns to each
sort a carrier set — with ``s ≤ s′`` forcing ``A_s ⊆ A_s′`` — and to each
operation rank a function between the carriers.  ``FiniteAlgebra`` checks
those conditions at construction and decides satisfaction of equations by
exhaustive assignment enumeration, so ``is_model_of`` is a genuine
decision procedure on finite carriers.

Together with :mod:`repro.osa.ontology_signature` this realizes the
paper's Definition 1 pipeline: a *data domain* is a pair (T, D) of an
order-sorted equational theory and a model of it.
"""

from __future__ import annotations

import itertools
from typing import Any, Hashable, Iterable, Mapping

from .equations import Equation, EquationalTheory
from .signature import OrderSortedSignature
from .terms import OSApp, OSTerm, OSVar


class AlgebraError(Exception):
    """Raised when carriers or interpretations violate algebra axioms."""


class FiniteAlgebra:
    """A finite model of an order-sorted signature.

    ``carriers`` maps each sort to a finite set; ``operations`` maps each
    operation name to a dict from argument tuples to values (constants use
    the empty tuple ``()``).  Overloaded symbols share one graph — the
    standard coherence requirement that overloaded ranks agree on common
    arguments is then automatic.
    """

    def __init__(
        self,
        signature: OrderSortedSignature,
        carriers: Mapping[str, Iterable[Hashable]],
        operations: Mapping[str, Mapping[tuple, Hashable]],
    ) -> None:
        self.signature = signature
        self.carriers: dict[str, frozenset] = {
            sort: frozenset(values) for sort, values in carriers.items()
        }
        self.operations: dict[str, dict[tuple, Hashable]] = {
            name: dict(table) for name, table in operations.items()
        }
        self._validate()

    def _validate(self) -> None:
        sorts = self.signature.sorts
        for sort in sorts.elements:
            if sort not in self.carriers:
                raise AlgebraError(f"no carrier for sort {sort!r}")
        # subsort inclusion: s ≤ s' ⟹ A_s ⊆ A_s'
        for s1 in sorts.elements:
            for s2 in sorts.elements:
                if sorts.leq(s1, s2) and not self.carriers[s1] <= self.carriers[s2]:
                    raise AlgebraError(
                        f"carrier of {s1!r} not included in carrier of {s2!r} "
                        f"despite {s1!r} ≤ {s2!r}"
                    )
        # operations: every rank totally interpreted, values in carriers
        for decl in self.signature.declarations():
            table = self.operations.get(decl.name)
            if table is None:
                raise AlgebraError(f"no interpretation for operation {decl.name!r}")
            domains = [sorted(self.carriers[s], key=repr) for s in decl.arg_sorts]
            for args in itertools.product(*domains):
                if args not in table:
                    raise AlgebraError(
                        f"operation {decl.name!r} undefined on {args!r} "
                        f"(rank {decl})"
                    )
                if table[args] not in self.carriers[decl.result]:
                    raise AlgebraError(
                        f"operation {decl.name!r} maps {args!r} to "
                        f"{table[args]!r}, outside carrier of {decl.result!r}"
                    )

    # ------------------------------------------------------------------ #
    # evaluation and satisfaction
    # ------------------------------------------------------------------ #

    def evaluate(self, term: OSTerm, env: Mapping[OSVar, Hashable] | None = None) -> Hashable:
        """The value of ``term`` under a variable assignment ``env``."""
        env = env or {}
        if isinstance(term, OSVar):
            if term not in env:
                raise AlgebraError(f"unbound variable {term}")
            return env[term]
        if isinstance(term, OSApp):
            table = self.operations.get(term.op)
            if table is None:
                raise AlgebraError(f"uninterpreted operation {term.op!r}")
            args = tuple(self.evaluate(arg, env) for arg in term.args)
            if args not in table:
                raise AlgebraError(f"operation {term.op!r} undefined on {args!r}")
            return table[args]
        raise AlgebraError(f"unknown term node {term!r}")

    def assignments(self, variables: Iterable[OSVar]) -> Iterable[dict[OSVar, Hashable]]:
        """All assignments of carrier values to ``variables`` (by sort)."""
        variables = sorted(set(variables), key=lambda v: (v.name, v.sort))
        pools = [sorted(self.carriers[v.sort], key=repr) for v in variables]
        for values in itertools.product(*pools):
            yield dict(zip(variables, values))

    def satisfies(self, equation: Equation) -> bool:
        """True iff the equation holds under every assignment."""
        for env in self.assignments(equation.variables()):
            if self.evaluate(equation.lhs, env) != self.evaluate(equation.rhs, env):
                return False
        return True

    def is_model_of(self, theory: EquationalTheory) -> bool:
        """True iff this algebra satisfies every equation of ``theory``."""
        if theory.signature is not self.signature:
            # allow structurally identical signatures; cheap identity check
            # first, then fall through to satisfaction
            pass
        return all(self.satisfies(eq) for eq in theory.equations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {s: len(c) for s, c in self.carriers.items()}
        return f"FiniteAlgebra(carriers={sizes})"


class DataDomain:
    """A *data domain* ``(T, D)``: a theory and a model of it (paper Def. 1).

    Construction verifies that ``model`` really is a model of ``theory`` —
    the membership check the paper praises structural definitions for
    making possible.
    """

    def __init__(self, theory: EquationalTheory, model: FiniteAlgebra) -> None:
        if not model.is_model_of(theory):
            raise AlgebraError("the given algebra is not a model of the theory")
        self.theory = theory
        self.model = model

    @property
    def sorts(self):
        return self.theory.signature.sorts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataDomain(equations={len(self.theory)}, {self.model!r})"
