"""Order-sorted equational theories and rewriting.

An order-sorted equational theory ``T = (S, Σ, E)`` (paper §2): a sort
poset and signature from :mod:`repro.osa.signature` plus a set ``E`` of
equations between well-sorted terms.  A rewrite engine orients the
equations left-to-right and normalizes terms, giving a decision procedure
for ground equality whenever the oriented system is terminating and
confluent (which the small theories ontonomies need in practice are).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..obs import recorder as _obs
from .signature import OrderSortedSignature
from .terms import OSApp, OSTerm, OSVar, TermError, least_sort, match, substitute


class EquationError(Exception):
    """Raised on ill-formed equations or rewriting failures."""


@dataclass(frozen=True)
class Equation:
    """An equation ``lhs = rhs`` (implicitly universally quantified)."""

    lhs: OSTerm
    rhs: OSTerm

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"

    def variables(self) -> frozenset[OSVar]:
        return self.lhs.variables() | self.rhs.variables()


class EquationalTheory:
    """``T = (S, Σ, E)``: a validated signature plus equations.

    Construction checks every equation for well-sortedness and for the
    standard rewriting side conditions needed to orient it left-to-right:
    the left-hand side must not be a bare variable, and every right-hand
    variable must occur on the left.
    """

    def __init__(
        self,
        signature: OrderSortedSignature,
        equations: Iterable[Equation] = (),
        *,
        check_orientation: bool = True,
    ) -> None:
        self.signature = signature
        self.equations = list(equations)
        for eq in self.equations:
            lsort = least_sort(eq.lhs, signature)  # raises if ill-sorted
            rsort = least_sort(eq.rhs, signature)
            if not (
                signature.subsort(lsort, rsort)
                or signature.subsort(rsort, lsort)
            ):
                raise EquationError(
                    f"equation {eq} relates incomparable sorts {lsort!r} and {rsort!r}"
                )
            if check_orientation:
                if isinstance(eq.lhs, OSVar):
                    raise EquationError(f"cannot orient {eq}: variable left-hand side")
                extra = eq.rhs.variables() - eq.lhs.variables()
                if extra:
                    raise EquationError(
                        f"cannot orient {eq}: right-hand variables {sorted(v.name for v in extra)} "
                        "not bound on the left"
                    )

    def __len__(self) -> int:
        return len(self.equations)


class RewriteSystem:
    """The rewrite system obtained by orienting a theory's equations l → r."""

    def __init__(self, theory: EquationalTheory, *, max_steps: int = 10_000) -> None:
        self.theory = theory
        self.signature = theory.signature
        self.max_steps = max_steps

    def rewrite_once(self, term: OSTerm) -> Optional[OSTerm]:
        """One innermost-leftmost rewrite step, or ``None`` if normal."""
        if isinstance(term, OSApp):
            for i, arg in enumerate(term.args):
                stepped = self.rewrite_once(arg)
                if stepped is not None:
                    new_args = term.args[:i] + (stepped,) + term.args[i + 1:]
                    return OSApp(term.op, new_args)
            for eq in self.theory.equations:
                bindings = match(eq.lhs, term, self.signature)
                if bindings is not None:
                    try:
                        return substitute(eq.rhs, bindings, self.signature)
                    except TermError:
                        continue  # sort-incompatible instance; try next rule
        return None

    def normalize(self, term: OSTerm) -> OSTerm:
        """Rewrite to normal form; raise :class:`EquationError` past ``max_steps``.

        The step bound turns potential divergence into a detectable
        outcome rather than a hang — non-terminating "ontonomies" are a
        thing this library must be able to report, not crash on.
        """
        _obs.incr("osa.normalize_calls")
        current = term
        for steps in range(self.max_steps):
            stepped = self.rewrite_once(current)
            if stepped is None:
                _obs.incr("osa.rewrite_steps", steps)
                return current
            current = stepped
        raise EquationError(
            f"no normal form within {self.max_steps} steps (starting from {term})"
        )

    def is_normal_form(self, term: OSTerm) -> bool:
        return self.rewrite_once(term) is None

    def equal(self, t1: OSTerm, t2: OSTerm) -> bool:
        """Ground equality by normal-form comparison.

        Sound and complete when the oriented system is confluent and
        terminating; otherwise sound-only (equal normal forms still imply
        provable equality).
        """
        return self.normalize(t1) == self.normalize(t2)


def critical_pair_joinable(
    system: RewriteSystem, t1: OSTerm, t2: OSTerm
) -> bool:
    """Check joinability of two terms (their normal forms coincide).

    A lightweight stand-in for a full Knuth–Bendix confluence check,
    sufficient for the finite theories used in tests and corpora.
    """
    return system.normalize(t1) == system.normalize(t2)
