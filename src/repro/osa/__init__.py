"""Order-sorted algebra and the Bench-Capon & Malcolm ontology formalism.

Implements Goguen–Meseguer order-sorted signatures, terms, equational
theories, rewriting and finite models, then builds the paper's
Definition 1 on top: ontology signatures (D, C, A) and ontonomies (Σ, A)
with decidable membership and model checking.
"""

from .algebra import AlgebraError, DataDomain, FiniteAlgebra
from .initial import ClosureError, term_algebra
from .unification import (
    UnificationError,
    apply_substitution,
    critical_pairs,
    is_locally_confluent,
    replace_at,
    subterm_at,
    subterm_positions,
    unify,
)
from .equations import (
    Equation,
    EquationError,
    EquationalTheory,
    RewriteSystem,
    critical_pair_joinable,
)
from .ontology_signature import (
    AttributeSymbol,
    OntologySignature,
    OntologySignatureError,
    is_ontology_signature,
)
from .ontonomy import (
    AttributeValueAxiom,
    Axiom,
    CoverageAxiom,
    DisjointAxiom,
    Ontonomy,
    OntonomyError,
    SignatureModel,
    SubclassAxiom,
    is_ontonomy,
)
from .signature import OpDecl, OrderSortedSignature, SignatureError
from .terms import (
    OSApp,
    OSTerm,
    OSVar,
    TermError,
    constant,
    ground_terms,
    is_well_sorted,
    least_sort,
    match,
    substitute,
)

__all__ = [
    "OpDecl", "OrderSortedSignature", "SignatureError",
    "OSTerm", "OSVar", "OSApp", "constant", "least_sort", "is_well_sorted",
    "substitute", "match", "ground_terms", "TermError",
    "Equation", "EquationalTheory", "RewriteSystem", "EquationError",
    "critical_pair_joinable",
    "FiniteAlgebra", "DataDomain", "AlgebraError",
    "term_algebra", "ClosureError",
    "unify", "apply_substitution", "critical_pairs", "is_locally_confluent",
    "subterm_positions", "subterm_at", "replace_at", "UnificationError",
    "OntologySignature", "AttributeSymbol", "OntologySignatureError",
    "is_ontology_signature",
    "Ontonomy", "SignatureModel", "Axiom", "SubclassAxiom", "DisjointAxiom",
    "CoverageAxiom", "AttributeValueAxiom", "OntonomyError", "is_ontonomy",
]
