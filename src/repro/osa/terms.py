"""Well-sorted terms over an order-sorted signature.

Terms, least-sort computation, substitution and matching — the syntactic
layer of the Goguen–Meseguer framework on which equational theories
(``repro.osa.equations``) and the Bench-Capon & Malcolm ontology
signatures (``repro.osa.ontology_signature``) are built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from .signature import OrderSortedSignature, SignatureError


class TermError(Exception):
    """Raised on ill-sorted terms or invalid substitutions."""


class OSTerm:
    """Base class for order-sorted terms (immutable, hashable)."""

    def variables(self) -> frozenset["OSVar"]:
        raise NotImplementedError

    def subterms(self) -> Iterator["OSTerm"]:
        raise NotImplementedError

    def size(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class OSVar(OSTerm):
    """A sorted variable ``x : s``."""

    name: str
    sort: str

    def variables(self) -> frozenset["OSVar"]:
        return frozenset({self})

    def subterms(self) -> Iterator[OSTerm]:
        yield self

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"{self.name}:{self.sort}"


@dataclass(frozen=True)
class OSApp(OSTerm):
    """An operation application ``f(t1, ..., tn)`` (constants have no args)."""

    op: str
    args: tuple[OSTerm, ...] = ()

    def variables(self) -> frozenset[OSVar]:
        out: frozenset[OSVar] = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out

    def subterms(self) -> Iterator[OSTerm]:
        yield self
        for arg in self.args:
            yield from arg.subterms()

    def size(self) -> int:
        return 1 + sum(arg.size() for arg in self.args)

    def __str__(self) -> str:
        if not self.args:
            return self.op
        return f"{self.op}({', '.join(map(str, self.args))})"


def constant(name: str) -> OSApp:
    """Shorthand for a constant application."""
    return OSApp(name, ())


def least_sort(term: OSTerm, signature: OrderSortedSignature) -> str:
    """The least sort of ``term`` under ``signature``.

    Raises :class:`TermError` if the term is ill-sorted or if the
    signature's overloading gives it no least applicable rank (i.e. the
    signature is not regular at this term).
    """
    if isinstance(term, OSVar):
        if term.sort not in signature.sorts:
            raise TermError(f"variable {term} has unknown sort {term.sort!r}")
        return term.sort
    if isinstance(term, OSApp):
        if not signature.has_operation(term.op):
            raise TermError(f"unknown operation {term.op!r}")
        arg_sorts = tuple(least_sort(arg, signature) for arg in term.args)
        rank = signature.least_rank(term.op, arg_sorts)
        if rank is None:
            raise TermError(
                f"no applicable rank for {term.op!r} at argument sorts {arg_sorts!r}"
            )
        return rank.result
    raise TermError(f"unknown term node {term!r}")


def is_well_sorted(term: OSTerm, signature: OrderSortedSignature) -> bool:
    """True iff ``term`` has a least sort under ``signature``."""
    try:
        least_sort(term, signature)
    except TermError:
        return False
    return True


Substitution = Mapping[OSVar, OSTerm]


def substitute(term: OSTerm, subst: Substitution, signature: OrderSortedSignature) -> OSTerm:
    """Apply ``subst`` to ``term``, checking sort-compatibility.

    Each variable may only be replaced by a term whose least sort is ≤
    the variable's sort — the order-sorted analogue of type safety.
    """
    for var, replacement in subst.items():
        rsort = least_sort(replacement, signature)
        if not signature.subsort(rsort, var.sort):
            raise TermError(
                f"cannot substitute {replacement} (sort {rsort}) for {var} "
                f"(sort {var.sort}): {rsort} ≰ {var.sort}"
            )
    return _apply(term, subst)


def _apply(term: OSTerm, subst: Substitution) -> OSTerm:
    if isinstance(term, OSVar):
        return subst.get(term, term)
    if isinstance(term, OSApp):
        return OSApp(term.op, tuple(_apply(arg, subst) for arg in term.args))
    raise TermError(f"unknown term node {term!r}")


def match(
    pattern: OSTerm, target: OSTerm, signature: OrderSortedSignature
) -> Optional[dict[OSVar, OSTerm]]:
    """Order-sorted matching: a substitution σ with ``σ(pattern) = target``.

    Sort-aware: a pattern variable of sort ``s`` only matches targets whose
    least sort is ≤ ``s``.  Returns ``None`` when no match exists.
    """
    bindings: dict[OSVar, OSTerm] = {}
    if _match_into(pattern, target, bindings, signature):
        return bindings
    return None


def _match_into(
    pattern: OSTerm,
    target: OSTerm,
    bindings: dict[OSVar, OSTerm],
    signature: OrderSortedSignature,
) -> bool:
    if isinstance(pattern, OSVar):
        target_sort = least_sort(target, signature)
        if not signature.subsort(target_sort, pattern.sort):
            return False
        if pattern in bindings:
            return bindings[pattern] == target
        bindings[pattern] = target
        return True
    if isinstance(pattern, OSApp):
        if not isinstance(target, OSApp) or pattern.op != target.op:
            return False
        if len(pattern.args) != len(target.args):
            return False
        return all(
            _match_into(p, t, bindings, signature)
            for p, t in zip(pattern.args, target.args)
        )
    raise TermError(f"unknown pattern node {pattern!r}")


def ground_terms(
    signature: OrderSortedSignature, max_depth: int
) -> Iterator[OSApp]:
    """Enumerate well-sorted ground terms up to ``max_depth`` (deterministic).

    Depth 1 yields the constants; depth ``k`` additionally closes under one
    application of every operation.  Used by the finite-algebra layer and
    the corpus generators.
    """
    by_depth: list[list[OSApp]] = [[]]
    current: list[OSApp] = []
    for decl in sorted(signature.declarations(), key=str):
        if decl.arity == 0:
            term = OSApp(decl.name, ())
            if term not in current:
                current.append(term)
    yield from current
    by_depth.append(current)
    known = list(current)
    for _ in range(1, max_depth):
        fresh: list[OSApp] = []
        for decl in sorted(signature.declarations(), key=str):
            if decl.arity == 0:
                continue
            candidates = _tuples(known, decl.arity)
            for args in candidates:
                term = OSApp(decl.name, args)
                if term in known or term in fresh:
                    continue
                if is_well_sorted(term, signature):
                    fresh.append(term)
        if not fresh:
            return
        yield from fresh
        known.extend(fresh)


def _tuples(pool: list[OSApp], arity: int) -> Iterator[tuple[OSApp, ...]]:
    import itertools

    yield from itertools.product(pool, repeat=arity)
