"""Order-sorted unification, critical pairs, and local confluence.

Completes the Goguen–Meseguer toolchain: syntactic unification with sort
constraints (a variable only binds to terms of a subsort; variable pairs
bind toward the lower sort, or toward their meet when one exists),
critical-pair computation between oriented rules, and the Knuth–Bendix
local-confluence test — all critical pairs joinable.  For terminating
systems (which :class:`repro.osa.equations.RewriteSystem` enforces with
its step bound) local confluence gives confluence by Newman's lemma, so
``RewriteSystem.equal`` becomes a genuine decision procedure.
"""

from __future__ import annotations

import itertools
from typing import Optional

from .equations import Equation, EquationalTheory, RewriteSystem
from .signature import OrderSortedSignature
from .terms import OSApp, OSTerm, OSVar, TermError, least_sort

Position = tuple[int, ...]


class UnificationError(Exception):
    """Raised on malformed unification problems."""


# ---------------------------------------------------------------------- #
# unification
# ---------------------------------------------------------------------- #


def unify(
    t1: OSTerm, t2: OSTerm, signature: OrderSortedSignature
) -> Optional[dict[OSVar, OSTerm]]:
    """A most general order-sorted unifier of ``t1`` and ``t2``, or None.

    Sort discipline: binding ``x : s`` to a non-variable term requires
    the term's least sort ≤ s; for ``x : s1 = y : s2`` the variables bind
    toward the lower sort, falling back to a fresh variable at
    ``meet(s1, s2)`` when the sorts are incomparable but have a meet.
    The returned substitution is in *triangular* (fully applied) form.
    """
    subst: dict[OSVar, OSTerm] = {}
    fresh = itertools.count()

    def walk(term: OSTerm) -> OSTerm:
        while isinstance(term, OSVar) and term in subst:
            term = subst[term]
        return term

    def occurs(var: OSVar, term: OSTerm) -> bool:
        term = walk(term)
        if isinstance(term, OSVar):
            return term == var
        return any(occurs(var, arg) for arg in term.args)

    def bind_to_term(var: OSVar, term: OSTerm) -> bool:
        if occurs(var, term):
            return False
        try:
            term_sort = least_sort(term, signature)
        except TermError:
            return False
        if not signature.subsort(term_sort, var.sort):
            return False
        subst[var] = term
        return True

    def solve(a: OSTerm, b: OSTerm) -> bool:
        a, b = walk(a), walk(b)
        if a == b:
            return True
        if isinstance(a, OSVar) and isinstance(b, OSVar):
            if signature.subsort(b.sort, a.sort):
                subst[a] = b
                return True
            if signature.subsort(a.sort, b.sort):
                subst[b] = a
                return True
            meet = signature.sorts.meet(a.sort, b.sort)
            if meet is None:
                return False
            joint = OSVar(f"_u{next(fresh)}", meet)
            subst[a] = joint
            subst[b] = joint
            return True
        if isinstance(a, OSVar):
            return bind_to_term(a, b)
        if isinstance(b, OSVar):
            return bind_to_term(b, a)
        if a.op != b.op or len(a.args) != len(b.args):
            return False
        return all(solve(x, y) for x, y in zip(a.args, b.args))

    if not solve(t1, t2):
        return None

    # flatten the triangular substitution
    def apply_full(term: OSTerm) -> OSTerm:
        term = walk(term)
        if isinstance(term, OSVar):
            return term
        return OSApp(term.op, tuple(apply_full(arg) for arg in term.args))

    return {var: apply_full(value) for var, value in subst.items()}


def apply_substitution(term: OSTerm, subst: dict[OSVar, OSTerm]) -> OSTerm:
    """Apply a unifier (no sort re-check: unify already enforced sorts)."""
    if isinstance(term, OSVar):
        value = subst.get(term, term)
        if value == term:
            return term
        return apply_substitution(value, subst)
    return OSApp(term.op, tuple(apply_substitution(a, subst) for a in term.args))


# ---------------------------------------------------------------------- #
# positions and critical pairs
# ---------------------------------------------------------------------- #


def subterm_positions(term: OSTerm) -> list[Position]:
    """All positions of non-variable subterms (preorder; () is the root)."""
    out: list[Position] = []

    def visit(t: OSTerm, path: Position) -> None:
        if isinstance(t, OSVar):
            return
        out.append(path)
        for i, arg in enumerate(t.args):
            visit(arg, path + (i,))

    visit(term, ())
    return out


def subterm_at(term: OSTerm, position: Position) -> OSTerm:
    for index in position:
        if isinstance(term, OSVar) or index >= len(term.args):
            raise UnificationError(f"no subterm at position {position}")
        term = term.args[index]
    return term


def replace_at(term: OSTerm, position: Position, replacement: OSTerm) -> OSTerm:
    if not position:
        return replacement
    if isinstance(term, OSVar):
        raise UnificationError(f"no subterm at position {position}")
    index, rest = position[0], position[1:]
    new_args = tuple(
        replace_at(arg, rest, replacement) if i == index else arg
        for i, arg in enumerate(term.args)
    )
    return OSApp(term.op, new_args)


def _rename_variables(equation: Equation, suffix: str) -> Equation:
    mapping: dict[OSVar, OSVar] = {}

    def rename(term: OSTerm) -> OSTerm:
        if isinstance(term, OSVar):
            if term not in mapping:
                mapping[term] = OSVar(term.name + suffix, term.sort)
            return mapping[term]
        return OSApp(term.op, tuple(rename(a) for a in term.args))

    return Equation(rename(equation.lhs), rename(equation.rhs))


def critical_pairs(theory: EquationalTheory) -> list[tuple[OSTerm, OSTerm]]:
    """All critical pairs between the theory's oriented rules.

    For rules l₁→r₁ and l₂→r₂ (variables renamed apart) and every
    non-variable position p of l₁ where l₁|ₚ unifies with l₂ via σ, the
    pair ``(σr₁, σl₁[σr₂]ₚ)`` is critical.  The trivial root overlap of a
    rule with itself is skipped.
    """
    signature = theory.signature
    pairs: list[tuple[OSTerm, OSTerm]] = []
    for i, rule1 in enumerate(theory.equations):
        for j, rule2 in enumerate(theory.equations):
            renamed2 = _rename_variables(rule2, "_2")
            for position in subterm_positions(rule1.lhs):
                if i == j and position == ():
                    continue  # trivial self-overlap
                target = subterm_at(rule1.lhs, position)
                unifier = unify(target, renamed2.lhs, signature)
                if unifier is None:
                    continue
                left = apply_substitution(rule1.rhs, unifier)
                overlapped = replace_at(
                    apply_substitution(rule1.lhs, unifier),
                    position,
                    apply_substitution(renamed2.rhs, unifier),
                )
                if left != overlapped:
                    pairs.append((left, overlapped))
    return pairs


def is_locally_confluent(
    system: RewriteSystem, *, max_steps: int | None = None
) -> bool:
    """Knuth–Bendix check: every critical pair joins to one normal form.

    For terminating systems this implies confluence (Newman), making the
    system's normal forms canonical.
    """
    for left, right in critical_pairs(system.theory):
        if system.normalize(left) != system.normalize(right):
            return False
    return True
