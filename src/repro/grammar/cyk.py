"""CYK recognition for context-free languages.

Cocke–Younger–Kasami over a CNF grammar: O(n³·|P|) membership.  The
benchmark B4 measures this scaling and the crossover against the DFA
pipeline of :mod:`repro.grammar.regular` on regular inputs.
"""

from __future__ import annotations

from typing import Sequence

from ..obs import recorder as _obs
from .cnf import is_cnf, to_cnf
from .grammar import Grammar, GrammarError


def cyk_recognizes(grammar: Grammar, sentence: Sequence[str]) -> bool:
    """True iff ``sentence`` (a sequence of terminals) is in L(grammar).

    The grammar is converted to CNF if necessary (convert once and reuse
    via :func:`to_cnf` when recognizing many sentences).
    """
    cnf = grammar if is_cnf(grammar) else to_cnf(grammar)
    for symbol in sentence:
        if symbol not in cnf.terminals and symbol not in grammar.terminals:
            raise GrammarError(f"sentence uses unknown terminal {symbol!r}")
    n = len(sentence)
    if n == 0:
        return any(
            p.lhs == (cnf.start,) and not p.rhs for p in cnf.productions
        )

    # table[i][l] = set of nonterminals deriving sentence[i : i + l]
    by_terminal: dict[str, set[str]] = {}
    binary: list[tuple[str, str, str]] = []
    for p in cnf.productions:
        (lhs,) = p.lhs
        if len(p.rhs) == 1:
            by_terminal.setdefault(p.rhs[0], set()).add(lhs)
        elif len(p.rhs) == 2:
            binary.append((lhs, p.rhs[0], p.rhs[1]))

    table: list[list[set[str]]] = [
        [set() for _ in range(n + 1)] for _ in range(n)
    ]
    for i, symbol in enumerate(sentence):
        table[i][1] = set(by_terminal.get(symbol, ()))
    for length in range(2, n + 1):
        for i in range(n - length + 1):
            cell = table[i][length]
            for split in range(1, length):
                left = table[i][split]
                right = table[i + split][length - split]
                if not left or not right:
                    continue
                for lhs, b, c in binary:
                    if b in left and c in right:
                        cell.add(lhs)
    _obs.incr("grammar.cyk_runs")
    _obs.incr(
        "grammar.cyk_cell_entries",
        sum(len(table[i][l]) for i in range(n) for l in range(1, n + 1)),
    )
    return cnf.start in table[0][n]
