"""Formal grammars: the paper's reference case of a structural definition.

The 4-tuple definition, Chomsky-hierarchy classification, CNF, CYK
recognition, derivation search and generation, and the regular-grammar →
NFA → DFA pipeline.
"""

from .chomsky import ChomskyType, chomsky_type, is_right_linear
from .cnf import is_cnf, to_cnf
from .cyk import cyk_recognizes
from .earley import earley_recognizes
from .derivation import derivations, derives, generate, sample_sentences
from .grammar import Grammar, GrammarError, Production, is_formal_grammar
from .regular import DFA, NFA, compile_regular, grammar_to_nfa, minimize_dfa, nfa_to_dfa

__all__ = [
    "Grammar", "Production", "GrammarError", "is_formal_grammar",
    "ChomskyType", "chomsky_type", "is_right_linear",
    "to_cnf", "is_cnf", "cyk_recognizes", "earley_recognizes",
    "derivations", "derives", "generate", "sample_sentences",
    "NFA", "DFA", "grammar_to_nfa", "nfa_to_dfa", "compile_regular",
    "minimize_dfa",
]
