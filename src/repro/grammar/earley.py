"""Earley recognition for arbitrary context-free grammars.

Unlike CYK, Earley needs no normal-form conversion: it runs directly on
the grammar as written — including ε- and unit productions — in O(n³)
worst case, O(n²) for unambiguous grammars.  Benchmark B4 contrasts it
with the CNF+CYK pipeline; the property tests cross-check all three
recognizers (Earley, CYK, BFS derivation oracle) against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .grammar import Grammar, GrammarError, Production


@dataclass(frozen=True)
class _Item:
    """An Earley item: a dotted production with an origin position."""

    production: Production
    dot: int
    origin: int

    def next_symbol(self) -> str | None:
        rhs = self.production.rhs
        return rhs[self.dot] if self.dot < len(rhs) else None

    def advanced(self) -> "_Item":
        return _Item(self.production, self.dot + 1, self.origin)

    @property
    def complete(self) -> bool:
        return self.dot >= len(self.production.rhs)


def earley_recognizes(grammar: Grammar, sentence: Sequence[str]) -> bool:
    """True iff ``sentence`` ∈ L(grammar), for any context-free grammar."""
    if not grammar.is_context_free():
        raise GrammarError("Earley recognition requires a context-free grammar")
    for symbol in sentence:
        if symbol not in grammar.terminals:
            raise GrammarError(f"sentence uses unknown terminal {symbol!r}")

    n = len(sentence)
    chart: list[set[_Item]] = [set() for _ in range(n + 1)]
    for production in grammar.productions_for(grammar.start):
        chart[0].add(_Item(production, 0, 0))

    for position in range(n + 1):
        worklist = list(chart[position])
        seen = set(chart[position])
        while worklist:
            item = worklist.pop()
            symbol = item.next_symbol()
            if symbol is None:
                # completer: finish every item waiting on this nonterminal
                (lhs,) = item.production.lhs
                for waiting in list(chart[item.origin]):
                    if waiting.next_symbol() == lhs:
                        advanced = waiting.advanced()
                        if advanced not in seen:
                            seen.add(advanced)
                            chart[position].add(advanced)
                            worklist.append(advanced)
            elif symbol in grammar.nonterminals:
                # predictor
                for production in grammar.productions_for(symbol):
                    predicted = _Item(production, 0, position)
                    if predicted not in seen:
                        seen.add(predicted)
                        chart[position].add(predicted)
                        worklist.append(predicted)
                # handle nullable nonterminals (Aycock–Horspool shortcut):
                # if the predicted symbol can already complete at this
                # position, advance immediately
                if any(
                    completed.complete and completed.production.lhs == (symbol,)
                    and completed.origin == position
                    for completed in chart[position]
                ):
                    advanced = item.advanced()
                    if advanced not in seen:
                        seen.add(advanced)
                        chart[position].add(advanced)
                        worklist.append(advanced)
            else:
                # scanner
                if position < n and sentence[position] == symbol:
                    chart[position + 1].add(item.advanced())

    return any(
        item.complete
        and item.origin == 0
        and item.production.lhs == (grammar.start,)
        for item in chart[n]
    )
