"""Chomsky normal form transformation for context-free grammars.

Standard pipeline: START wrapper → eliminate ε-productions → eliminate
unit productions → isolate terminals → binarize long right-hand sides.
The transformed grammar accepts the same language (modulo ε, which is
preserved via the fresh start symbol) and feeds the CYK recognizer.
"""

from __future__ import annotations

import itertools

from .grammar import Grammar, GrammarError, Production


def to_cnf(grammar: Grammar) -> Grammar:
    """An equivalent grammar in Chomsky normal form.

    Every production is ``A → B C``, ``A → a``, or ``S₀ → ε`` (only for
    the fresh start symbol, only when ε is in the language).
    """
    if not grammar.is_context_free():
        raise GrammarError("CNF transformation requires a context-free grammar")

    fresh = _name_factory(grammar.symbols())
    start = fresh("S0")
    nonterminals = set(grammar.nonterminals) | {start}
    productions = [Production((start,), (grammar.start,))]
    productions += [Production(p.lhs, p.rhs) for p in grammar.productions]

    productions = _eliminate_epsilon(productions, start, nonterminals)
    productions = _eliminate_units(productions, nonterminals)
    productions, nonterminals = _isolate_terminals(
        productions, nonterminals, grammar.terminals, fresh
    )
    productions, nonterminals = _binarize(productions, nonterminals, fresh)
    productions = _drop_unreachable(productions, start)
    used = {s for p in productions for s in (*p.lhs, *p.rhs)}
    return Grammar(
        nonterminals & (used | {start}),
        grammar.terminals & used,
        start,
        productions,
    )


def is_cnf(grammar: Grammar) -> bool:
    """True iff every production has CNF shape."""
    for p in grammar.productions:
        if len(p.lhs) != 1:
            return False
        (lhs,) = p.lhs
        rhs = p.rhs
        if not rhs:
            if lhs != grammar.start:
                return False
        elif len(rhs) == 1:
            if rhs[0] not in grammar.terminals:
                return False
        elif len(rhs) == 2:
            if any(s not in grammar.nonterminals for s in rhs):
                return False
        else:
            return False
    return True


def _name_factory(taken: frozenset[str]):
    used = set(taken)

    def fresh(base: str) -> str:
        if base not in used:
            used.add(base)
            return base
        for i in itertools.count():
            name = f"{base}_{i}"
            if name not in used:
                used.add(name)
                return name
        raise AssertionError("unreachable")

    return fresh


def _eliminate_epsilon(
    productions: list[Production], start: str, nonterminals: set[str]
) -> list[Production]:
    nullable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for p in productions:
            (lhs,) = p.lhs
            if lhs in nullable:
                continue
            if all(s in nullable for s in p.rhs):
                nullable.add(lhs)
                changed = True
    out: set[Production] = set()
    for p in productions:
        (lhs,) = p.lhs
        null_positions = [i for i, s in enumerate(p.rhs) if s in nullable]
        for r in range(len(null_positions) + 1):
            for drop in itertools.combinations(null_positions, r):
                rhs = tuple(s for i, s in enumerate(p.rhs) if i not in drop)
                if rhs or lhs == start:
                    out.add(Production((lhs,), rhs))
    # remove ε from non-start symbols entirely
    return sorted(
        (p for p in out if p.rhs or p.lhs == (start,)),
        key=str,
    )


def _eliminate_units(
    productions: list[Production], nonterminals: set[str]
) -> list[Production]:
    unit_pairs: set[tuple[str, str]] = {(n, n) for n in nonterminals}
    changed = True
    while changed:
        changed = False
        for p in productions:
            if len(p.rhs) == 1 and p.rhs[0] in nonterminals:
                (a,), b = p.lhs, p.rhs[0]
                for (c, d) in list(unit_pairs):
                    if c == b and (a, d) not in unit_pairs:
                        unit_pairs.add((a, d))
                        changed = True
    out: set[Production] = set()
    for a, b in unit_pairs:
        for p in productions:
            if p.lhs == (b,) and not (len(p.rhs) == 1 and p.rhs[0] in nonterminals):
                out.add(Production((a,), p.rhs))
    return sorted(out, key=str)


def _isolate_terminals(
    productions: list[Production],
    nonterminals: set[str],
    terminals: frozenset[str],
    fresh,
) -> tuple[list[Production], set[str]]:
    proxy: dict[str, str] = {}
    out: list[Production] = []
    for p in productions:
        if len(p.rhs) >= 2:
            rhs = []
            for s in p.rhs:
                if s in terminals:
                    if s not in proxy:
                        proxy[s] = fresh(f"T_{s}")
                        nonterminals.add(proxy[s])
                    rhs.append(proxy[s])
                else:
                    rhs.append(s)
            out.append(Production(p.lhs, tuple(rhs)))
        else:
            out.append(p)
    for terminal, name in sorted(proxy.items()):
        out.append(Production((name,), (terminal,)))
    return out, nonterminals


def _binarize(
    productions: list[Production], nonterminals: set[str], fresh
) -> tuple[list[Production], set[str]]:
    out: list[Production] = []
    for p in productions:
        rhs = p.rhs
        if len(rhs) <= 2:
            out.append(p)
            continue
        (lhs,) = p.lhs
        current = lhs
        for i in range(len(rhs) - 2):
            helper = fresh(f"{lhs}_bin")
            nonterminals.add(helper)
            out.append(Production((current,), (rhs[i], helper)))
            current = helper
        out.append(Production((current,), rhs[-2:]))
    return out, nonterminals


def _drop_unreachable(productions: list[Production], start: str) -> list[Production]:
    reachable = {start}
    changed = True
    while changed:
        changed = False
        for p in productions:
            if p.lhs[0] in reachable:
                for s in p.rhs:
                    if s not in reachable:
                        reachable.add(s)
                        changed = True
    return [p for p in productions if p.lhs[0] in reachable]
