"""Derivations and sentence generation for context-free grammars.

Breadth-first derivation search (an independent oracle for the CYK
recognizer in property tests) and seeded random generation of sentences
for benchmark workloads.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Sequence

from .grammar import Grammar, GrammarError


def derivations(
    grammar: Grammar, *, max_steps: int = 10_000, max_length: int = 12
) -> Iterator[tuple[str, ...]]:
    """Enumerate sentences of L(grammar) by BFS over sentential forms.

    Deterministic order; bounded by ``max_steps`` expansions and pruned at
    ``max_length`` symbols, so it terminates on every grammar.
    """
    if not grammar.is_context_free():
        raise GrammarError("derivation search requires a context-free grammar")
    seen_sentences: set[tuple[str, ...]] = set()
    seen_forms: set[tuple[str, ...]] = set()
    frontier: list[tuple[str, ...]] = [(grammar.start,)]
    steps = 0
    while frontier and steps < max_steps:
        form = frontier.pop(0)
        steps += 1
        index = next(
            (i for i, s in enumerate(form) if s in grammar.nonterminals), None
        )
        if index is None:
            if form not in seen_sentences:
                seen_sentences.add(form)
                yield form
            continue
        head, tail = form[:index], form[index + 1:]
        for production in grammar.productions_for(form[index]):
            new_form = head + production.rhs + tail
            if len(new_form) > max_length or new_form in seen_forms:
                continue
            seen_forms.add(new_form)
            frontier.append(new_form)


def derives(
    grammar: Grammar,
    sentence: Sequence[str],
    *,
    max_steps: int = 50_000,
) -> bool:
    """True iff ``sentence`` is derivable (BFS oracle; exponential, small inputs).

    The bound on sentential-form length is |sentence| (CFG productions
    with non-empty rhs never shrink below useful forms once ε-free; to
    stay exact we allow a small slack for ε-productions).
    """
    target = tuple(sentence)
    limit = max(len(target) * 2 + 2, 4)
    for found in derivations(grammar, max_steps=max_steps, max_length=limit):
        if found == target:
            return True
    return False


def generate(
    grammar: Grammar,
    *,
    seed: int = 0,
    max_expansions: int = 200,
    attempts: int = 50,
) -> Optional[tuple[str, ...]]:
    """A random sentence of L(grammar), or ``None`` if generation keeps diverging.

    Leftmost expansion with a seeded RNG; retries up to ``attempts`` times
    when the expansion budget is exhausted.
    """
    if not grammar.is_context_free():
        raise GrammarError("generation requires a context-free grammar")
    rng = random.Random(seed)
    for _ in range(attempts):
        form: list[str] = [grammar.start]
        for _ in range(max_expansions):
            index = next(
                (i for i, s in enumerate(form) if s in grammar.nonterminals), None
            )
            if index is None:
                return tuple(form)
            options = grammar.productions_for(form[index])
            if not options:
                break  # dead nonterminal
            production = rng.choice(options)
            form[index:index + 1] = list(production.rhs)
        # expansion budget exhausted; retry with fresh randomness
    return None


def sample_sentences(
    grammar: Grammar, count: int, *, seed: int = 0
) -> list[tuple[str, ...]]:
    """``count`` (possibly repeated) random sentences, deterministically seeded."""
    out = []
    for i in range(count):
        sentence = generate(grammar, seed=seed + i)
        if sentence is not None:
            out.append(sentence)
    return out
