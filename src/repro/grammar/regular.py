"""Regular grammars: NFA construction and DFA determinization.

A right-linear grammar compiles to an NFA (one state per nonterminal plus
an accepting sink), the NFA determinizes by subset construction, and the
DFA recognizes in O(n).  Benchmark B4 contrasts this pipeline with CYK on
the same regular language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .chomsky import ChomskyType, chomsky_type
from .grammar import Grammar, GrammarError


@dataclass
class NFA:
    """A nondeterministic finite automaton with ε-transitions."""

    states: frozenset[str]
    alphabet: frozenset[str]
    start: str
    accepting: frozenset[str]
    # (state, symbol) -> set of states; symbol None is ε
    transitions: dict[tuple[str, str | None], frozenset[str]] = field(default_factory=dict)

    def step(self, state: str, symbol: str | None) -> frozenset[str]:
        return self.transitions.get((state, symbol), frozenset())

    def epsilon_closure(self, states: Iterable[str]) -> frozenset[str]:
        closure = set(states)
        frontier = list(closure)
        while frontier:
            state = frontier.pop()
            for nxt in self.step(state, None):
                if nxt not in closure:
                    closure.add(nxt)
                    frontier.append(nxt)
        return frozenset(closure)

    def accepts(self, sentence: Sequence[str]) -> bool:
        current = self.epsilon_closure({self.start})
        for symbol in sentence:
            moved: set[str] = set()
            for state in current:
                moved |= self.step(state, symbol)
            current = self.epsilon_closure(moved)
            if not current:
                return False
        return bool(current & self.accepting)


@dataclass
class DFA:
    """A deterministic finite automaton (total via implicit dead state)."""

    states: frozenset[frozenset[str]]
    alphabet: frozenset[str]
    start: frozenset[str]
    accepting: frozenset[frozenset[str]]
    transitions: dict[tuple[frozenset[str], str], frozenset[str]] = field(default_factory=dict)

    def accepts(self, sentence: Sequence[str]) -> bool:
        current = self.start
        for symbol in sentence:
            nxt = self.transitions.get((current, symbol))
            if nxt is None:
                return False
            current = nxt
        return current in self.accepting


def grammar_to_nfa(grammar: Grammar) -> NFA:
    """Compile a right-linear (type 3) grammar to an NFA.

    Each nonterminal becomes a state; ``A → a₁…aₖ B`` threads through
    fresh intermediate states; ``A → a₁…aₖ`` ends in the accept state.
    """
    if chomsky_type(grammar) != ChomskyType.REGULAR:
        raise GrammarError("NFA construction requires a right-linear grammar")
    accept = "_accept"
    states: set[str] = set(grammar.nonterminals) | {accept}
    transitions: dict[tuple[str, str | None], set[str]] = {}
    fresh_counter = 0

    def add(src: str, symbol: str | None, dst: str) -> None:
        transitions.setdefault((src, symbol), set()).add(dst)

    for production in grammar.productions:
        (lhs,) = production.lhs
        rhs = production.rhs
        if not rhs:
            add(lhs, None, accept)
            continue
        ends_in_nonterminal = rhs[-1] in grammar.nonterminals
        body = rhs[:-1] if ends_in_nonterminal else rhs
        target = rhs[-1] if ends_in_nonterminal else accept
        current = lhs
        for i, symbol in enumerate(body):
            if i == len(body) - 1:
                dst = target
            else:
                fresh_counter += 1
                dst = f"_q{fresh_counter}"
                states.add(dst)
            add(current, symbol, dst)
            current = dst
        if ends_in_nonterminal and not body:
            add(lhs, None, target)
    return NFA(
        states=frozenset(states),
        alphabet=frozenset(grammar.terminals),
        start=grammar.start,
        accepting=frozenset({accept}),
        transitions={k: frozenset(v) for k, v in transitions.items()},
    )


def nfa_to_dfa(nfa: NFA) -> DFA:
    """Subset construction."""
    start = nfa.epsilon_closure({nfa.start})
    states: set[frozenset[str]] = {start}
    transitions: dict[tuple[frozenset[str], str], frozenset[str]] = {}
    frontier = [start]
    while frontier:
        subset = frontier.pop()
        for symbol in sorted(nfa.alphabet):
            moved: set[str] = set()
            for state in subset:
                moved |= nfa.step(state, symbol)
            closure = nfa.epsilon_closure(moved)
            if not closure:
                continue
            transitions[(subset, symbol)] = closure
            if closure not in states:
                states.add(closure)
                frontier.append(closure)
    accepting = frozenset(s for s in states if s & nfa.accepting)
    return DFA(
        states=frozenset(states),
        alphabet=nfa.alphabet,
        start=start,
        accepting=accepting,
        transitions=transitions,
    )


def compile_regular(grammar: Grammar) -> DFA:
    """Grammar → NFA → DFA in one call."""
    return nfa_to_dfa(grammar_to_nfa(grammar))


def minimize_dfa(dfa: DFA) -> DFA:
    """Moore's partition-refinement minimization.

    States are first restricted to those reachable from the start; the
    accepting/rejecting split is then refined until transitions respect
    blocks.  The result accepts the same language with the minimum number
    of states (for the reachable part; no dead-state is materialized —
    missing transitions reject, as in :meth:`DFA.accepts`).
    """
    # reachable states
    reachable = {dfa.start}
    frontier = [dfa.start]
    while frontier:
        state = frontier.pop()
        for symbol in dfa.alphabet:
            nxt = dfa.transitions.get((state, symbol))
            if nxt is not None and nxt not in reachable:
                reachable.add(nxt)
                frontier.append(nxt)

    accepting = {s for s in reachable if s in dfa.accepting}
    rejecting = reachable - accepting
    partition = [block for block in (accepting, rejecting) if block]

    def block_of(state, blocks):
        for i, block in enumerate(blocks):
            if state in block:
                return i
        return None  # the implicit dead state

    changed = True
    while changed:
        changed = False
        refined: list[set] = []
        for block in partition:
            groups: dict[tuple, set] = {}
            for state in block:
                signature = tuple(
                    block_of(dfa.transitions.get((state, symbol)), partition)
                    for symbol in sorted(dfa.alphabet)
                )
                groups.setdefault(signature, set()).add(state)
            refined.extend(groups.values())
            if len(groups) > 1:
                changed = True
        partition = refined

    # build the quotient automaton; block identity = a canonical tag
    # (a tag per block, never a union of members: unions of distinct
    # blocks could collide)
    block_name = {}
    for i, block in enumerate(partition):
        name = frozenset({("block", i)})
        for state in block:
            block_name[state] = name
    transitions = {}
    for state in reachable:
        for symbol in dfa.alphabet:
            nxt = dfa.transitions.get((state, symbol))
            if nxt is not None:
                transitions[(block_name[state], symbol)] = block_name[nxt]
    return DFA(
        states=frozenset(block_name.values()),
        alphabet=dfa.alphabet,
        start=block_name[dfa.start],
        accepting=frozenset(
            block_name[s] for s in accepting
        ),
        transitions=transitions,
    )
