"""Formal grammars as 4-tuples — the paper's gold standard of definition.

"In the case of formal grammar, the definition is the well known one: a
formal grammar is a 4-tuple (N, T, S, P), where N is a finite set (called
the set of non-terminals), T is a finite set, disjoint from N (called the
set of terminals), etc." (paper §2)

The point the paper builds on this: "given an arbitrary string of
symbols, a definition should allow one to determine whether the string is
a formal grammar or not."  :func:`is_formal_grammar` is that decision
procedure, used by ``repro.core.definitions`` as the reference case of a
structural definition against which Gruber's and Guarino's functional
'definitions' are compared (experiment Q1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


class GrammarError(Exception):
    """Raised when the 4-tuple conditions are violated."""


@dataclass(frozen=True)
class Production:
    """A rewrite rule ``lhs → rhs`` (both are symbol tuples; rhs may be ε)."""

    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.lhs:
            raise GrammarError("production left-hand side must be non-empty")

    def __str__(self) -> str:
        lhs = " ".join(self.lhs)
        rhs = " ".join(self.rhs) if self.rhs else "ε"
        return f"{lhs} → {rhs}"


class Grammar:
    """A formal grammar ``(N, T, S, P)``, validated structurally.

    >>> g = Grammar({"S"}, {"a", "b"}, "S",
    ...             [Production(("S",), ("a", "S", "b")), Production(("S",), ())])
    >>> g.start
    'S'
    """

    def __init__(
        self,
        nonterminals: Iterable[str],
        terminals: Iterable[str],
        start: str,
        productions: Iterable[Production],
    ) -> None:
        self.nonterminals = frozenset(nonterminals)
        self.terminals = frozenset(terminals)
        self.start = start
        self.productions = list(productions)

        if not self.nonterminals:
            raise GrammarError("N must be non-empty")
        overlap = self.nonterminals & self.terminals
        if overlap:
            raise GrammarError(f"N and T must be disjoint; shared: {sorted(overlap)}")
        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} must belong to N")
        alphabet = self.nonterminals | self.terminals
        for production in self.productions:
            if not isinstance(production, Production):
                raise GrammarError(f"not a production: {production!r}")
            for symbol in (*production.lhs, *production.rhs):
                if symbol not in alphabet:
                    raise GrammarError(
                        f"production {production} uses unknown symbol {symbol!r}"
                    )
            if not any(s in self.nonterminals for s in production.lhs):
                raise GrammarError(
                    f"production {production} has no nonterminal on the left"
                )

    # ------------------------------------------------------------------ #

    def productions_for(self, nonterminal: str) -> list[Production]:
        """Productions whose lhs is exactly the single ``nonterminal``."""
        return [p for p in self.productions if p.lhs == (nonterminal,)]

    def is_context_free(self) -> bool:
        """True iff every lhs is a single nonterminal."""
        return all(
            len(p.lhs) == 1 and p.lhs[0] in self.nonterminals
            for p in self.productions
        )

    def symbols(self) -> frozenset[str]:
        return self.nonterminals | self.terminals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Grammar(|N|={len(self.nonterminals)}, |T|={len(self.terminals)}, "
            f"start={self.start!r}, |P|={len(self.productions)})"
        )

    def pretty(self) -> str:
        return "\n".join(str(p) for p in self.productions)


def is_formal_grammar(candidate: object) -> bool:
    """Decide, structurally, whether ``candidate`` is a formal grammar.

    Accepts either a :class:`Grammar` instance or a raw 4-tuple
    ``(N, T, S, P)`` with ``P`` a sequence of ``(lhs, rhs)`` pairs.  The
    decision looks only at structure — no appeal to what the artifact is
    *for* — which is exactly the property the paper demands of a
    computing-science definition.
    """
    if isinstance(candidate, Grammar):
        return True
    if not isinstance(candidate, Sequence) or len(candidate) != 4:
        return False
    raw_n, raw_t, start, raw_p = candidate
    try:
        productions = [
            Production(tuple(lhs), tuple(rhs)) for lhs, rhs in raw_p
        ]
        Grammar(raw_n, raw_t, start, productions)
    except (GrammarError, TypeError, ValueError):
        return False
    return True
