"""Chomsky hierarchy classification of grammars.

Given a validated :class:`repro.grammar.Grammar`, determine the most
restrictive Chomsky type it satisfies — another purely structural
judgment that a functional 'definition' could never deliver.
"""

from __future__ import annotations

import enum

from .grammar import Grammar, Production


class ChomskyType(enum.IntEnum):
    """Types 0–3; higher value = more restrictive class."""

    UNRESTRICTED = 0
    CONTEXT_SENSITIVE = 1
    CONTEXT_FREE = 2
    REGULAR = 3


def is_right_linear(grammar: Grammar, production: Production) -> bool:
    """rhs is ε, terminals, or terminals followed by one nonterminal."""
    if len(production.lhs) != 1 or production.lhs[0] not in grammar.nonterminals:
        return False
    rhs = production.rhs
    if not rhs:
        return True
    body, last = rhs[:-1], rhs[-1]
    if any(s in grammar.nonterminals for s in body):
        return False
    return last in grammar.terminals or last in grammar.nonterminals


def is_context_free_production(grammar: Grammar, production: Production) -> bool:
    return len(production.lhs) == 1 and production.lhs[0] in grammar.nonterminals


def is_noncontracting(grammar: Grammar, production: Production) -> bool:
    """|lhs| ≤ |rhs|, with S → ε permitted when S never appears in a rhs."""
    if len(production.rhs) >= len(production.lhs):
        return True
    if production.lhs == (grammar.start,) and not production.rhs:
        start_in_rhs = any(
            grammar.start in p.rhs for p in grammar.productions
        )
        return not start_in_rhs
    return False


def chomsky_type(grammar: Grammar) -> ChomskyType:
    """The most restrictive type in the hierarchy ``grammar`` satisfies."""
    if all(is_right_linear(grammar, p) for p in grammar.productions):
        return ChomskyType.REGULAR
    if all(is_context_free_production(grammar, p) for p in grammar.productions):
        return ChomskyType.CONTEXT_FREE
    if all(is_noncontracting(grammar, p) for p in grammar.productions):
        return ChomskyType.CONTEXT_SENSITIVE
    return ChomskyType.UNRESTRICTED
