"""The paper's "trespassers will be prosecuted" scenario (§3), encoded.

The text, the situations (on a building door; on a shelf in a sign shop),
the readers (a western adult with the property/authority/punishment
background; a reader without the property discourse; the algorithmic
reader), and the conventions the paper enumerates:

* a durable, undated sign on a door is a threat, not news;
* "trespasser" refers to the reader, conditionally on walking through;
* prosecution implies likely punishment — which presupposes knowing what
  punishment (pain) is;
* the proprietor may exclude entry (but not, e.g., looking), with tacit
  state backing;
* the same sign on a shop shelf is merchandise: no threat at all.
"""

from __future__ import annotations

from ..hermeneutics import (
    Convention,
    Discourse,
    Interpreter,
    Reader,
    Situation,
    Text,
)

TRESPASS_TEXT = Text(
    content="trespassers will be prosecuted",
    features=frozenset(
        {
            ("speech", "mentions_trespass"),
            ("speech", "mentions_prosecution"),
            ("medium", "durable"),   # plastic or wood
            ("dated", "no"),
            ("register", "impersonal_future"),
        }
    ),
)

# ---------------------------------------------------------------------- #
# situations
# ---------------------------------------------------------------------- #

ON_BUILDING_DOOR = Situation(
    "on a building door",
    frozenset(
        {
            ("placement", "on_door"),
            ("premises", "private_building"),
            ("jurisdiction", "western"),
        }
    ),
)

IN_SIGN_SHOP = Situation(
    "on a shelf in a sign shop",
    frozenset(
        {
            ("placement", "on_shop_shelf"),
            ("premises", "store"),
            ("jurisdiction", "western"),
        }
    ),
)

AS_NEWSPAPER_HEADLINE = Situation(
    "printed as a newspaper headline",
    frozenset(
        {
            ("placement", "newspaper_front_page"),
            ("jurisdiction", "western"),
        }
    ),
)

QUOTED_IN_A_NOVEL = Situation(
    "quoted in a novel",
    frozenset(
        {
            ("placement", "inside_fiction"),
            ("jurisdiction", "western"),
        }
    ),
)

# ---------------------------------------------------------------------- #
# readers
# ---------------------------------------------------------------------- #

WESTERN_ADULT = Reader(
    "western adult",
    frozenset(
        {
            "private_property_exists",
            "proprietors_may_exclude_entry",
            "authorities_enforce_property",
            "prosecution_can_lead_to_punishment",
            "punishment_involves_pain",
            "signs_on_doors_speak_for_the_proprietor",
            "newspapers_report_events",
        }
    ),
)

PROPERTYLESS_READER = Reader(
    "reader without the property discourse",
    frozenset(
        {
            "prosecution_can_lead_to_punishment",
            "punishment_involves_pain",
            "newspapers_report_events",
        }
    ),
)

# ---------------------------------------------------------------------- #
# discourses
# ---------------------------------------------------------------------- #

PROPERTY_DISCOURSE = Discourse(
    "private property",
    (
        Convention(
            name="door sign speaks for the proprietor",
            discourse="private property",
            requires_text=frozenset({("medium", "durable"), ("dated", "no")}),
            requires_situation=frozenset({("placement", "on_door")}),
            requires_background=frozenset({"signs_on_doors_speak_for_the_proprietor"}),
            yields=frozenset({"utterer_is_the_proprietor"}),
        ),
        Convention(
            name="trespasser refers to the reader",
            discourse="private property",
            requires_text=frozenset({("speech", "mentions_trespass")}),
            requires_situation=frozenset({("placement", "on_door")}),
            requires_background=frozenset({"proprietors_may_exclude_entry"}),
            requires_derived=frozenset({"utterer_is_the_proprietor"}),
            yields=frozenset(
                {
                    "trespasser_means_the_reader_if_entering",
                    "entry_through_THIS_door_is_what_counts",
                }
            ),
        ),
        Convention(
            name="the sign is a threat",
            discourse="private property",
            requires_text=frozenset({("speech", "mentions_prosecution")}),
            requires_situation=frozenset({("placement", "on_door")}),
            requires_background=frozenset(
                {"authorities_enforce_property", "prosecution_can_lead_to_punishment"}
            ),
            requires_derived=frozenset({"trespasser_means_the_reader_if_entering"}),
            yields=frozenset({"entering_risks_punishment"}),
            speech_act="threat",
        ),
        Convention(
            name="punishment is understood through pain",
            discourse="private property",
            requires_text=frozenset(),
            requires_background=frozenset({"punishment_involves_pain"}),
            requires_derived=frozenset({"entering_risks_punishment"}),
            yields=frozenset({"the_threat_is_felt"}),
        ),
    ),
)

COMMERCE_DISCOURSE = Discourse(
    "commerce",
    (
        Convention(
            name="shelved sign is merchandise",
            discourse="commerce",
            requires_text=frozenset({("medium", "durable")}),
            requires_situation=frozenset({("placement", "on_shop_shelf")}),
            yields=frozenset({"the_sign_is_for_sale", "no_one_is_threatened_here"}),
            speech_act="display of goods",
        ),
    ),
)

FICTION_DISCOURSE = Discourse(
    "fiction",
    (
        Convention(
            name="quoted speech is part of the story",
            discourse="fiction",
            requires_text=frozenset({("speech", "mentions_trespass")}),
            requires_situation=frozenset({("placement", "inside_fiction")}),
            yields=frozenset(
                {
                    "a_character_is_addressed_not_the_reader",
                    "no_actual_prosecution_is_threatened",
                }
            ),
            speech_act="narrated utterance",
        ),
    ),
)

NEWS_DISCOURSE = Discourse(
    "news reporting",
    (
        Convention(
            name="headline reports events",
            discourse="news reporting",
            requires_text=frozenset({("speech", "mentions_prosecution")}),
            requires_situation=frozenset({("placement", "newspaper_front_page")}),
            requires_background=frozenset({"newspapers_report_events"}),
            yields=frozenset({"some_trespassers_somewhere_face_prosecution"}),
            speech_act="report",
        ),
    ),
)


def trespass_interpreter() -> Interpreter:
    """The full interpreter for the scenario."""
    return Interpreter(
        [PROPERTY_DISCOURSE, COMMERCE_DISCOURSE, NEWS_DISCOURSE, FICTION_DISCOURSE]
    )


def all_scenarios() -> list[tuple[Situation, Reader]]:
    """Every (situation, reader) pair used by the Q5 experiment."""
    situations = [
        ON_BUILDING_DOOR,
        IN_SIGN_SHOP,
        AS_NEWSPAPER_HEADLINE,
        QUOTED_IN_A_NOVEL,
    ]
    readers = [WESTERN_ADULT, PROPERTYLESS_READER]
    return [(s, r) for s in situations for r in readers]
