"""The paper's structure (8) and its repair (9)–(11): the animal ontonomy.

Structure (8) — deliberately isomorphic to the vehicle structure (4):

    dog ⊑ animal ⊓ quadruped ⊓ ∃size.small
    horse ⊑ animal ⊓ quadruped ⊓ ∃size.big
    animal ⊑ ∃ingests.food
    quadruped ⊑ ∃₄has.leg

The repair (9)–(11) adds ``quadruped ⊑ animal`` and simplifies the two
definitions — "quadrupeds are animals, while road vehicles are not
necessarily motor vehicles" — breaking the isomorphism with (4)... until
a confusable sibling is found again, which is the regress.
"""

from __future__ import annotations

from ..dl import TBox, parse_tbox

ANIMAL_TEXT = """
# paper structure (8)
dog [= animal & quadruped & some size.small
horse [= animal & quadruped & some size.big
animal [= some ingests.food
quadruped [= >= 4 has.leg
"""

REPAIRED_ANIMAL_TEXT = """
# paper structures (9)-(11)
dog [= quadruped & some size.small
horse [= quadruped & some size.big
quadruped [= animal
animal [= some ingests.food
quadruped [= >= 4 has.leg
"""


def animal_tbox() -> TBox:
    """The animal ontonomy of structure (8) — isomorphic to the vehicles."""
    return parse_tbox(ANIMAL_TEXT)


def repaired_animal_tbox() -> TBox:
    """The repaired ontonomy after (9)–(11): ``quadruped ⊑ animal``."""
    return parse_tbox(REPAIRED_ANIMAL_TEXT)


#: The name correspondence that exhibits (4) ≅ (8).
VEHICLE_TO_ANIMAL_NAMES = {
    "car": "dog",
    "pickup": "horse",
    "motorvehicle": "animal",
    "roadvehicle": "quadruped",
    "small": "small",
    "big": "big",
    "gasoline": "food",
    "wheel": "leg",
}

#: The role correspondence that exhibits (4) ≅ (8).
VEHICLE_TO_ANIMAL_ROLES = {"uses": "ingests", "has": "has", "size": "size"}
