"""The campus scenario: a world space for the rigidity analysis.

Three snapshot years of three people, with ``person`` rigid, ``student``
and ``employee`` anti-rigid — the data behind the OntoClean-style
demonstrations (example ``ontoclean_rigidity.py``, bench Q4 extensions,
and the rigidity-aware critique tests).
"""

from __future__ import annotations

from ..intensional import (
    IntensionalRelation,
    Rigidity,
    World,
    WorldSpace,
    rigidity_profile,
)
from ..logic import Structure

PEOPLE = ("alice", "bob", "carol")


def _year(name: str, students: tuple[str, ...], employees: tuple[str, ...]) -> World:
    return World(
        name,
        Structure(
            list(PEOPLE),
            relations={
                "person": [(p,) for p in PEOPLE],
                "student": [(s,) for s in students],
                "employee": [(e,) for e in employees],
            },
        ),
    )


def campus_space() -> WorldSpace:
    """Three years: everyone stays a person; roles come and go."""
    return WorldSpace(
        [
            _year("2004", students=("alice", "bob"), employees=("carol",)),
            _year("2005", students=("alice",), employees=("bob", "carol")),
            # carol retires in 2006: no employee is essential either
            _year("2006", students=(), employees=("alice", "bob")),
        ]
    )


def campus_properties(space: WorldSpace | None = None) -> list[IntensionalRelation]:
    """The three unary intensions of the scenario."""
    space = space or campus_space()
    return [
        IntensionalRelation.from_predicate(name, 1, space)
        for name in ("person", "student", "employee")
    ]


def campus_rigidity() -> dict[str, Rigidity]:
    """The expected profile: person rigid, the roles anti-rigid."""
    return rigidity_profile(campus_properties())
