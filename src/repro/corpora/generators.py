"""Seeded random generators for tests and benchmark workloads.

Everything here is deterministic given the seed — no library code draws
randomness it was not handed.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..dl import And, Atomic, Subsumption, TBox, at_least, some
from ..semiotics import Lexicalization, SemanticField


def random_tbox(
    seed: int,
    *,
    n_defined: int = 6,
    n_primitive: int = 4,
    n_roles: int = 3,
    min_conjuncts: int = 2,
    max_conjuncts: int = 4,
) -> TBox:
    """A random acyclic definitorial TBox (the paper's ontonomy shape).

    ``n_defined`` names receive definitions; each definition conjoins
    parent names drawn from strictly later names (guaranteeing
    acyclicity) with existential and at-least restrictions over
    ``n_primitive`` filler names and ``n_roles`` roles.
    """
    rng = random.Random(seed)
    defined = [f"C{i}" for i in range(n_defined)]
    primitive = [f"P{i}" for i in range(n_primitive)]
    roles = [f"r{i}" for i in range(n_roles)]
    axioms = []
    for i, name in enumerate(defined):
        later = defined[i + 1:]
        conjuncts = []
        n_conj = rng.randint(min_conjuncts, max_conjuncts)
        for _ in range(n_conj):
            kind = rng.random()
            if kind < 0.4 and later:
                conjuncts.append(Atomic(rng.choice(later)))
            elif kind < 0.8:
                conjuncts.append(some(rng.choice(roles), Atomic(rng.choice(primitive))))
            else:
                conjuncts.append(
                    at_least(
                        rng.randint(2, 4),
                        rng.choice(roles),
                        Atomic(rng.choice(primitive)),
                    )
                )
        if not conjuncts:
            conjuncts.append(Atomic(rng.choice(primitive)))
        axioms.append(Subsumption(Atomic(name), And.of(conjuncts)))
    return TBox(axioms)


def random_tbox_edit(rng: random.Random, tbox: TBox) -> TBox:
    """One random definitorial edit of ``tbox`` (for evolution workloads).

    Redefines an existing defined name (p=0.6), adds a fresh definition
    (p=0.25), or removes one (p=0.15) — the swap stream bench B8 and the
    incremental-reclassification property tests replay chains of these.
    Acyclicity is preserved exactly: an atomic conjunct ``B`` is only
    allowed in the new definition of ``A`` when ``A`` is not reachable
    from ``B`` in the current dependency graph.  Deterministic given the
    caller's ``rng`` state.
    """
    axioms = list(tbox.axioms)
    defined = [
        ax
        for ax in axioms
        if isinstance(ax, Subsumption) and isinstance(ax.lhs, Atomic)
    ]
    lhs_names = {ax.lhs.name for ax in defined}
    primitive = sorted(tbox.atomic_names() - lhs_names)
    roles = sorted(tbox.role_names()) or ["r0"]

    def new_definition(name: str, parent_pool: list[str]) -> Subsumption:
        conjuncts = []
        for _ in range(rng.randint(2, 4)):
            kind = rng.random()
            if kind < 0.4 and parent_pool:
                conjuncts.append(Atomic(rng.choice(parent_pool)))
            elif kind < 0.8 and primitive:
                conjuncts.append(some(rng.choice(roles), Atomic(rng.choice(primitive))))
            elif primitive:
                conjuncts.append(
                    at_least(
                        rng.randint(2, 4),
                        rng.choice(roles),
                        Atomic(rng.choice(primitive)),
                    )
                )
        if not conjuncts:
            conjuncts.append(Atomic(rng.choice(primitive or sorted(lhs_names))))
        return Subsumption(Atomic(name), And.of(conjuncts))

    kind = rng.random()
    if kind < 0.6 and defined:  # redefine
        from ..dl.defgraph import dependents_of

        victim = defined[rng.randrange(len(defined))]
        name = victim.lhs.name
        # a parent must not already reach the redefined name (its
        # ancestors = dependents_of); otherwise the new edge closes a cycle
        pool = sorted(lhs_names - dependents_of({name}, tbox))
        replacement = new_definition(name, pool)
        return TBox([replacement if ax is victim else ax for ax in axioms])
    if kind < 0.85 or not defined:  # add a fresh defined name
        index = 0
        names = tbox.atomic_names()
        while f"C{index}" in names or f"C{index}" in lhs_names:
            index += 1
        # nothing references a fresh name, so any parent pool is acyclic
        return TBox([*axioms, new_definition(f"C{index}", sorted(lhs_names))])
    victim = defined[rng.randrange(len(defined))]  # remove
    return TBox([ax for ax in axioms if ax is not victim])


def random_field(seed: int, *, n_points: int = 6) -> SemanticField:
    """A random semantic field with ``n_points`` situations."""
    rng = random.Random(seed)
    return SemanticField(
        f"field-{seed}", frozenset(f"pt{i}" for i in range(n_points))
    )


def random_lexicalization(
    seed: int,
    field: SemanticField,
    *,
    language: str | None = None,
    n_terms: int = 3,
    overlap_probability: float = 0.25,
) -> Lexicalization:
    """A random covering lexicalization of ``field``.

    Every point gets a home term (a random partition) and then, with
    ``overlap_probability`` per (term, point) pair, extents grow —
    producing the soft-form overlaps natural languages show.
    """
    rng = random.Random(seed)
    language = language or f"lang-{seed}"
    points = sorted(field.points)
    terms = [f"{language}-t{i}" for i in range(n_terms)]
    extents: dict[str, set[str]] = {t: set() for t in terms}
    for point in points:
        extents[rng.choice(terms)].add(point)
    for term in terms:
        for point in points:
            if rng.random() < overlap_probability:
                extents[term].add(point)
    extents = {t: e for t, e in extents.items() if e}
    return Lexicalization(language, field, extents)


def random_triples(
    seed: int,
    *,
    count: int = 1000,
    n_subjects: int = 100,
    n_predicates: int = 10,
    n_objects: int = 50,
) -> list[tuple[str, str, str]]:
    """Random (s, p, o) rows for store benchmarks (may contain duplicates)."""
    rng = random.Random(seed)
    return [
        (
            f"s{rng.randrange(n_subjects)}",
            f"p{rng.randrange(n_predicates)}",
            f"o{rng.randrange(n_objects)}",
        )
        for _ in range(count)
    ]


def chain_tbox(depth: int) -> TBox:
    """A subsumption chain C0 ⊑ C1 ⊑ ... ⊑ C_depth (reasoner scaling)."""
    axioms = [
        Subsumption(Atomic(f"C{i}"), Atomic(f"C{i+1}")) for i in range(depth)
    ]
    return TBox(axioms)


def branching_tbox(depth: int, *, branching: int = 2) -> TBox:
    """A complete ``branching``-ary tree of subsumptions with ∃-decorations.

    Node count grows as branchingᵈᵉᵖᵗʰ; used for tableau scaling (B1).
    """
    axioms = []
    frontier = ["N"]
    for level in range(depth):
        next_frontier = []
        for name in frontier:
            for b in range(branching):
                child = f"{name}{b}"
                axioms.append(
                    Subsumption(
                        Atomic(child),
                        And.of([Atomic(name), some(f"r{level}", Atomic(f"F{level}"))]),
                    )
                )
                next_frontier.append(child)
        frontier = next_frontier
    return TBox(axioms)


def random_individuals(
    seed: int,
    count: int,
    *,
    concepts: Sequence[str],
    roles: Sequence[str] = (),
    role_density: float = 0.4,
):
    """A deterministic stream of ``(individual, told concept, role edges)``.

    The shape of an instance-store load at scale: every individual gets
    exactly one told concept drawn from ``concepts`` and, with
    probability ``role_density``, one role edge back to an earlier
    individual — mostly typed nodes over a sparse relational skeleton.
    A generator, not a list: 10⁶ individuals must never need 10⁶ tuples
    resident at once (the B12 bench streams this straight into batched
    backend loads).
    """
    if not concepts:
        raise ValueError("random_individuals needs a non-empty concept pool")
    rng = random.Random(seed)
    for i in range(count):
        name = f"i{i}"
        told = concepts[rng.randrange(len(concepts))]
        edges: list[tuple[str, str]] = []
        if roles and i and rng.random() < role_density:
            edges.append(
                (roles[rng.randrange(len(roles))], f"i{rng.randrange(i)}")
            )
        yield name, told, edges
