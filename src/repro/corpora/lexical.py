"""The paper's lexical-field data: doorknobs and adjectives of old age.

Two hand-drawn schemas in §3 become datasets here.

**T1 — doorknob/door handle vs pomello/maniglia.**  "While pomelli are,
in general, doorknobs, some of the things that English speakers call
doorknobs would qualify, for the Italian, as maniglie."  The field's
points are kinds of door-opening hardware, at the finest grain either
language distinguishes.

**T2 — adjectives of old age in Italian, Spanish and French** (after
Geckeler, the paper's source).  Points are usage contexts; the extents
encode exactly the paper's prose: ``añejo`` is an appreciative form for
beverages; ``anziano`` covers both aged persons and seniority in a
function ("il sergente anziano") where Spanish uses ``antiguo`` and
French ``ancien``; ``mayor`` is the softer, more respectful Spanish form
with no Italian/French counterpart; ``antico``/``antique`` apply to old
artifacts, with Spanish ``antiguo`` covering that region too.
"""

from __future__ import annotations

from ..semiotics import Lexicalization, SemanticField

# ---------------------------------------------------------------------- #
# T1: door hardware
# ---------------------------------------------------------------------- #

#: Finest-grain kinds of door-opening hardware either language separates:
#: a spherical twist knob, a non-spherical twist grip (knob to the English
#: eye, maniglia to the Italian), a lever handle, and a pull bar.
DOOR_FIELD = SemanticField(
    "door-hardware",
    frozenset({"round_knob", "twist_grip", "lever_handle", "pull_bar"}),
)


def english_door() -> Lexicalization:
    return Lexicalization(
        "English",
        DOOR_FIELD,
        {
            "doorknob": {"round_knob", "twist_grip"},
            "door handle": {"lever_handle", "pull_bar"},
        },
    )


def italian_door() -> Lexicalization:
    return Lexicalization(
        "Italian",
        DOOR_FIELD,
        {
            "pomello": {"round_knob"},
            "maniglia": {"twist_grip", "lever_handle", "pull_bar"},
        },
    )


# ---------------------------------------------------------------------- #
# T2: adjectives of old age (Italian / Spanish / French)
# ---------------------------------------------------------------------- #

#: Usage contexts for predicating old age.
AGE_FIELD = SemanticField(
    "old-age",
    frozenset(
        {
            "old_thing",            # a worn-out chair, an old car
            "old_person",           # plain predication of age on a person
            "respected_elder",      # the softer, respectful form
            "aged_beverage",        # appreciative: un ron añejo
            "senior_in_function",   # il sergente anziano / el sargento antiguo
            "antique_artifact",     # a Roman vase
        }
    ),
)


def italian_age() -> Lexicalization:
    return Lexicalization(
        "Italian",
        AGE_FIELD,
        {
            # vecchio applies to things and persons, and Italian has no
            # dedicated beverage form: vino vecchio
            "vecchio": {"old_thing", "old_person", "aged_beverage"},
            # anziano: persons (also the polite choice) and seniority
            "anziano": {"old_person", "respected_elder", "senior_in_function"},
            "antico": {"antique_artifact"},
        },
    )


def spanish_age() -> Lexicalization:
    return Lexicalization(
        "Spanish",
        AGE_FIELD,
        {
            "viejo": {"old_thing", "old_person"},
            "añejo": {"aged_beverage"},
            "anciano": {"old_person"},
            "mayor": {"respected_elder"},
            # antiguo covers seniority in a function AND old artifacts
            "antiguo": {"senior_in_function", "antique_artifact"},
        },
    )


def french_age() -> Lexicalization:
    return Lexicalization(
        "French",
        AGE_FIELD,
        {
            # vieux: things, persons, and the plain beverage use (vin vieux)
            "vieux": {"old_thing", "old_person", "aged_beverage"},
            # âgé: persons, including the polite register (personne âgée)
            "âgé": {"old_person", "respected_elder"},
            "ancien": {"senior_in_function"},
            "antique": {"antique_artifact"},
        },
    )


def age_lexicalizations() -> list[Lexicalization]:
    """The three languages of the paper's table, in its column order."""
    return [italian_age(), spanish_age(), french_age()]
