"""The paper's structure (4): the vehicle ontonomy.

    car ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.small
    pickup ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.big
    motorvehicle ⊑ ∃uses.gasoline
    roadvehicle ⊑ ∃₄has.wheels

reproduced verbatim as a TBox (``∃₄has.wheels`` is ``≥4 has.wheel``).
"""

from __future__ import annotations

from ..dl import TBox, parse_tbox

VEHICLE_TEXT = """
# paper structure (4)
car [= motorvehicle & roadvehicle & some size.small
pickup [= motorvehicle & roadvehicle & some size.big
motorvehicle [= some uses.gasoline
roadvehicle [= >= 4 has.wheel
"""


def vehicle_tbox() -> TBox:
    """The vehicle ontonomy of structure (4)."""
    return parse_tbox(VEHICLE_TEXT)


#: The abstract renaming of structure (5): D, E, B, C, F, G, A, H.
ABSTRACT_NAMES = {
    "car": "D",
    "pickup": "E",
    "motorvehicle": "B",
    "roadvehicle": "C",
    "small": "F",
    "big": "G",
    "gasoline": "A",
    "wheel": "H",
}

#: The abstract role renaming of structure (5): ρ1, ρ2, ρ3.
ABSTRACT_ROLES = {"uses": "rho1", "has": "rho2", "size": "rho3"}


def abstract_tbox() -> TBox:
    """Structure (5): the vehicle ontonomy with names replaced by letters."""
    return parse_tbox(
        """
        D [= B & C & some rho3.F
        E [= B & C & some rho3.G
        B [= some rho1.A
        C [= >= 4 rho2.H
        """
    )
