"""The paper's worked examples as data, plus seeded generators."""

from .animals import (
    ANIMAL_TEXT,
    REPAIRED_ANIMAL_TEXT,
    VEHICLE_TO_ANIMAL_NAMES,
    VEHICLE_TO_ANIMAL_ROLES,
    animal_tbox,
    repaired_animal_tbox,
)
from .campus import (
    campus_properties,
    campus_rigidity,
    campus_space,
)
from .generators import (
    branching_tbox,
    chain_tbox,
    random_field,
    random_individuals,
    random_lexicalization,
    random_tbox,
    random_triples,
)
from .lexical import (
    AGE_FIELD,
    DOOR_FIELD,
    age_lexicalizations,
    english_door,
    french_age,
    italian_age,
    italian_door,
    spanish_age,
)
from .trespass import (
    AS_NEWSPAPER_HEADLINE,
    QUOTED_IN_A_NOVEL,
    IN_SIGN_SHOP,
    ON_BUILDING_DOOR,
    PROPERTYLESS_READER,
    TRESPASS_TEXT,
    WESTERN_ADULT,
    all_scenarios,
    trespass_interpreter,
)
from .vehicles import (
    ABSTRACT_NAMES,
    ABSTRACT_ROLES,
    VEHICLE_TEXT,
    abstract_tbox,
    vehicle_tbox,
)

__all__ = [
    "vehicle_tbox", "abstract_tbox", "VEHICLE_TEXT", "ABSTRACT_NAMES",
    "ABSTRACT_ROLES",
    "animal_tbox", "repaired_animal_tbox", "ANIMAL_TEXT",
    "REPAIRED_ANIMAL_TEXT", "VEHICLE_TO_ANIMAL_NAMES", "VEHICLE_TO_ANIMAL_ROLES",
    "DOOR_FIELD", "AGE_FIELD", "english_door", "italian_door",
    "italian_age", "spanish_age", "french_age", "age_lexicalizations",
    "TRESPASS_TEXT", "ON_BUILDING_DOOR", "IN_SIGN_SHOP",
    "AS_NEWSPAPER_HEADLINE", "QUOTED_IN_A_NOVEL", "WESTERN_ADULT",
    "PROPERTYLESS_READER",
    "trespass_interpreter", "all_scenarios",
    "campus_space", "campus_properties", "campus_rigidity",
    "random_tbox", "random_field", "random_lexicalization",
    "random_triples", "random_individuals", "chain_tbox", "branching_tbox",
]
