"""First-order logic over finite structures.

Guarino's framework (paper §2) is stated in first-order terms: a language
L(V) built on a vocabulary V, extensional models (D, R), and intensional
models assigning an extensional model to every possible world.  This
module supplies exactly the machinery those definitions presuppose —
terms, formulas, vocabularies, finite structures, and satisfaction by
enumeration — so that ``repro.intensional`` can state and *check*
Guarino's definitions rather than merely quote them.

Everything is finite and decidable by design: satisfaction is evaluated
by quantifier expansion over the (finite) domain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Mapping, Sequence


class FolError(Exception):
    """Raised on ill-formed formulas or vocabulary mismatches."""


# ---------------------------------------------------------------------- #
# terms
# ---------------------------------------------------------------------- #


class Term:
    """Base class for first-order terms (immutable, hashable)."""

    def free_variables(self) -> frozenset[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class TVar(Term):
    """An individual variable."""

    name: str

    def free_variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TConst(Term):
    """An individual constant symbol."""

    name: str

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TApp(Term):
    """A function application ``f(t1, ..., tn)``."""

    function: str
    args: tuple[Term, ...]

    def free_variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for arg in self.args:
            out |= arg.free_variables()
        return out

    def __str__(self) -> str:
        return f"{self.function}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------- #
# formulas
# ---------------------------------------------------------------------- #


class FolFormula:
    """Base class for first-order formulas (immutable, hashable)."""

    def free_variables(self) -> frozenset[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Atom(FolFormula):
    """An atomic formula ``P(t1, ..., tn)``."""

    predicate: str
    args: tuple[Term, ...]

    def free_variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for arg in self.args:
            out |= arg.free_variables()
        return out

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Eq(FolFormula):
    """Equality ``t1 = t2``."""

    left: Term
    right: Term

    def free_variables(self) -> frozenset[str]:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@dataclass(frozen=True)
class FNot(FolFormula):
    operand: FolFormula

    def free_variables(self) -> frozenset[str]:
        return self.operand.free_variables()

    def __str__(self) -> str:
        return f"¬{self.operand}"


@dataclass(frozen=True)
class FAnd(FolFormula):
    left: FolFormula
    right: FolFormula

    def free_variables(self) -> frozenset[str]:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class FOr(FolFormula):
    left: FolFormula
    right: FolFormula

    def free_variables(self) -> frozenset[str]:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class FImplies(FolFormula):
    antecedent: FolFormula
    consequent: FolFormula

    def free_variables(self) -> frozenset[str]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def __str__(self) -> str:
        return f"({self.antecedent} → {self.consequent})"


@dataclass(frozen=True)
class Forall(FolFormula):
    variable: str
    body: FolFormula

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - {self.variable}

    def __str__(self) -> str:
        return f"∀{self.variable}.{self.body}"


@dataclass(frozen=True)
class Exists(FolFormula):
    variable: str
    body: FolFormula

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - {self.variable}

    def __str__(self) -> str:
        return f"∃{self.variable}.{self.body}"


def fol_and(formulas: Iterable[FolFormula]) -> FolFormula:
    """The conjunction of ``formulas`` (must be non-empty)."""
    items = list(formulas)
    if not items:
        raise FolError("empty conjunction; supply at least one formula")
    result = items[0]
    for f in items[1:]:
        result = FAnd(result, f)
    return result


# ---------------------------------------------------------------------- #
# vocabularies — the AI textbook's "ontology" (paper §2)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Vocabulary:
    """A logical vocabulary: constants, functions, predicates with arities.

    The paper notes (§2) that artificial intelligence *does* possess a
    structural definition of ontonomy: "the collection of all symbols used
    in a logic system, with the indication of which names are functions,
    which are predicates, and which are constants" (Russell & Norvig).
    This class is that definition, made checkable: membership of an
    artifact in the class "AI ontonomy" is decided by ``validate``.
    """

    constants: frozenset[str]
    functions: Mapping[str, int] = field(default_factory=dict)
    predicates: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "functions", dict(self.functions))
        object.__setattr__(self, "predicates", dict(self.predicates))
        overlap = (
            (self.constants & set(self.functions))
            | (self.constants & set(self.predicates))
            | (set(self.functions) & set(self.predicates))
        )
        if overlap:
            raise FolError(f"symbols with multiple roles: {sorted(overlap)}")

    def __hash__(self) -> int:
        return hash(
            (
                self.constants,
                tuple(sorted(self.functions.items())),
                tuple(sorted(self.predicates.items())),
            )
        )

    def validate(self, formula: FolFormula) -> None:
        """Raise :class:`FolError` unless ``formula`` uses only this vocabulary."""
        for atom in _atoms(formula):
            if isinstance(atom, Atom):
                arity = self.predicates.get(atom.predicate)
                if arity is None:
                    raise FolError(f"unknown predicate {atom.predicate!r}")
                if arity != len(atom.args):
                    raise FolError(
                        f"predicate {atom.predicate!r} has arity {arity}, got {len(atom.args)}"
                    )
                for term in atom.args:
                    self._validate_term(term)
            elif isinstance(atom, Eq):
                self._validate_term(atom.left)
                self._validate_term(atom.right)

    def _validate_term(self, term: Term) -> None:
        if isinstance(term, TConst):
            if term.name not in self.constants:
                raise FolError(f"unknown constant {term.name!r}")
        elif isinstance(term, TApp):
            arity = self.functions.get(term.function)
            if arity is None:
                raise FolError(f"unknown function {term.function!r}")
            if arity != len(term.args):
                raise FolError(
                    f"function {term.function!r} has arity {arity}, got {len(term.args)}"
                )
            for arg in term.args:
                self._validate_term(arg)
        elif not isinstance(term, TVar):
            raise FolError(f"unknown term node {term!r}")


def _atoms(formula: FolFormula) -> Iterator[FolFormula]:
    """Iterate the atomic subformulas (Atom and Eq nodes)."""
    if isinstance(formula, (Atom, Eq)):
        yield formula
    elif isinstance(formula, FNot):
        yield from _atoms(formula.operand)
    elif isinstance(formula, (FAnd, FOr)):
        yield from _atoms(formula.left)
        yield from _atoms(formula.right)
    elif isinstance(formula, FImplies):
        yield from _atoms(formula.antecedent)
        yield from _atoms(formula.consequent)
    elif isinstance(formula, (Forall, Exists)):
        yield from _atoms(formula.body)
    else:
        raise FolError(f"unknown formula node {formula!r}")


# ---------------------------------------------------------------------- #
# finite structures and satisfaction
# ---------------------------------------------------------------------- #


class Structure:
    """A finite first-order structure (an *extensional model* ``(D, R)``).

    ``domain`` is a finite set; constants map to domain elements,
    functions to total maps ``Dⁿ → D``, predicates to relations ⊆ Dⁿ.
    """

    def __init__(
        self,
        domain: Iterable[Hashable],
        *,
        constants: Mapping[str, Hashable] | None = None,
        functions: Mapping[str, Mapping[tuple, Hashable]] | None = None,
        relations: Mapping[str, Iterable[tuple]] | None = None,
    ) -> None:
        self.domain = frozenset(domain)
        if not self.domain:
            raise FolError("the domain of a structure must be non-empty")
        self.constants = dict(constants or {})
        self.functions = {name: dict(table) for name, table in (functions or {}).items()}
        self.relations = {name: frozenset(map(tuple, rows)) for name, rows in (relations or {}).items()}
        for name, value in self.constants.items():
            if value not in self.domain:
                raise FolError(f"constant {name!r} maps outside the domain")
        for name, rows in self.relations.items():
            for row in rows:
                if any(x not in self.domain for x in row):
                    raise FolError(f"relation {name!r} contains non-domain elements")

    def interpret_term(self, term: Term, env: Mapping[str, Hashable]) -> Hashable:
        if isinstance(term, TVar):
            if term.name not in env:
                raise FolError(f"unbound variable {term.name!r}")
            return env[term.name]
        if isinstance(term, TConst):
            if term.name not in self.constants:
                raise FolError(f"uninterpreted constant {term.name!r}")
            return self.constants[term.name]
        if isinstance(term, TApp):
            table = self.functions.get(term.function)
            if table is None:
                raise FolError(f"uninterpreted function {term.function!r}")
            args = tuple(self.interpret_term(a, env) for a in term.args)
            if args not in table:
                raise FolError(f"function {term.function!r} undefined on {args!r}")
            return table[args]
        raise FolError(f"unknown term node {term!r}")

    def satisfies(self, formula: FolFormula, env: Mapping[str, Hashable] | None = None) -> bool:
        """Tarskian satisfaction, by enumeration over the finite domain."""
        env = dict(env or {})
        return self._sat(formula, env)

    def _sat(self, f: FolFormula, env: dict[str, Hashable]) -> bool:
        if isinstance(f, Atom):
            rel = self.relations.get(f.predicate, frozenset())
            row = tuple(self.interpret_term(a, env) for a in f.args)
            return row in rel
        if isinstance(f, Eq):
            return self.interpret_term(f.left, env) == self.interpret_term(f.right, env)
        if isinstance(f, FNot):
            return not self._sat(f.operand, env)
        if isinstance(f, FAnd):
            return self._sat(f.left, env) and self._sat(f.right, env)
        if isinstance(f, FOr):
            return self._sat(f.left, env) or self._sat(f.right, env)
        if isinstance(f, FImplies):
            return (not self._sat(f.antecedent, env)) or self._sat(f.consequent, env)
        if isinstance(f, Forall):
            return all(self._sat(f.body, {**env, f.variable: d}) for d in sorted(self.domain, key=repr))
        if isinstance(f, Exists):
            return any(self._sat(f.body, {**env, f.variable: d}) for d in sorted(self.domain, key=repr))
        raise FolError(f"unknown formula node {f!r}")

    def satisfies_all(self, formulas: Iterable[FolFormula]) -> bool:
        return all(self.satisfies(f) for f in formulas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Structure(|D|={len(self.domain)}, relations={sorted(self.relations)})"


def all_structures(
    domain: Sequence[Hashable],
    vocabulary: Vocabulary,
    *,
    max_count: int | None = None,
) -> Iterator[Structure]:
    """Enumerate every structure for ``vocabulary`` over a fixed ``domain``.

    Exhaustive model enumeration is how the over-breadth experiment (Q3)
    measures how many axiom sets "have a model": constant interpretations
    × relation subsets.  Only practical for tiny vocabularies — which is
    the point: Guarino's condition is *checked*, not assumed.  Functions
    are not enumerated (the experiments do not need them).
    """
    if vocabulary.functions:
        raise FolError("structure enumeration does not support function symbols")
    domain = list(domain)
    const_names = sorted(vocabulary.constants)
    pred_items = sorted(vocabulary.predicates.items())
    count = 0

    const_choices = itertools.product(domain, repeat=len(const_names))
    for const_values in const_choices:
        constants = dict(zip(const_names, const_values))
        rel_spaces = []
        for name, arity in pred_items:
            rows = list(itertools.product(domain, repeat=arity))
            rel_spaces.append([frozenset(s) for s in _powerset(rows)])
        for rel_choice in itertools.product(*rel_spaces):
            relations = {name: rows for (name, _), rows in zip(pred_items, rel_choice)}
            yield Structure(domain, constants=constants, relations=relations)
            count += 1
            if max_count is not None and count >= max_count:
                return


def _powerset(items: Sequence) -> Iterator[tuple]:
    for r in range(len(items) + 1):
        yield from itertools.combinations(items, r)


def has_finite_model(
    formulas: Iterable[FolFormula],
    vocabulary: Vocabulary,
    max_domain_size: int = 3,
) -> Structure | None:
    """Search for a model of ``formulas`` over domains of size 1..max.

    Returns the first model found (deterministic order) or ``None``.
    This is the decision procedure behind "admits at least one model" in
    Guarino's definition as the paper reads it.
    """
    formulas = list(formulas)
    for f in formulas:
        vocabulary.validate(f)
    for size in range(1, max_domain_size + 1):
        domain = [f"d{i}" for i in range(size)]
        for structure in all_structures(domain, vocabulary):
            if structure.satisfies_all(formulas):
                return structure
    return None
