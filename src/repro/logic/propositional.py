"""Propositional logic: formulas, normal forms, truth tables, DPLL SAT.

The over-breadth arm of the paper's syntactic critique (§2) rests on a
propositional observation: Guarino's definition admits *any* consistent
set of statements as an ontonomy, so "any set of tautologies is an
ontology", and a grocery list — encoded as a conjunction of atomic
assertions — qualifies just as well.  ``repro.intensional.overbreadth``
uses the machinery here (tautology checking, satisfiability) to make that
argument mechanical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping


class Formula:
    """Base class for propositional formulas (immutable, hashable)."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``p >> q`` builds the implication p → q."""
        return Implies(self, other)

    # subclasses set these
    def variables(self) -> frozenset[str]:
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class Var(Formula):
    """A propositional variable."""

    name: str

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        if self.name not in assignment:
            raise KeyError(f"no value for variable {self.name!r}")
        return bool(assignment[self.name])

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Formula):
    """A propositional constant (⊤ or ⊥)."""

    value: bool

    def variables(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def __str__(self) -> str:
        return "⊤" if self.value else "⊥"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def __str__(self) -> str:
        return f"¬{_wrap(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) or self.right.evaluate(assignment)

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def variables(self) -> frozenset[str]:
        return self.antecedent.variables() | self.consequent.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return (not self.antecedent.evaluate(assignment)) or self.consequent.evaluate(assignment)

    def __str__(self) -> str:
        return f"({self.antecedent} → {self.consequent})"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def __str__(self) -> str:
        return f"({self.left} ↔ {self.right})"


def _wrap(f: Formula) -> str:
    return str(f) if isinstance(f, (Var, Const, Not)) else f"({f})"


def conj(formulas: Iterable[Formula]) -> Formula:
    """The conjunction of ``formulas`` (⊤ if empty)."""
    result: Formula | None = None
    for f in formulas:
        result = f if result is None else And(result, f)
    return TRUE if result is None else result


def disj(formulas: Iterable[Formula]) -> Formula:
    """The disjunction of ``formulas`` (⊥ if empty)."""
    result: Formula | None = None
    for f in formulas:
        result = f if result is None else Or(result, f)
    return FALSE if result is None else result


# ---------------------------------------------------------------------- #
# normal forms
# ---------------------------------------------------------------------- #


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negation only on variables; →/↔ eliminated."""
    return _nnf(formula, positive=True)


def _nnf(f: Formula, positive: bool) -> Formula:
    if isinstance(f, Var):
        return f if positive else Not(f)
    if isinstance(f, Const):
        return Const(f.value == positive)
    if isinstance(f, Not):
        return _nnf(f.operand, not positive)
    if isinstance(f, And):
        ctor = And if positive else Or
        return ctor(_nnf(f.left, positive), _nnf(f.right, positive))
    if isinstance(f, Or):
        ctor = Or if positive else And
        return ctor(_nnf(f.left, positive), _nnf(f.right, positive))
    if isinstance(f, Implies):
        return _nnf(Or(Not(f.antecedent), f.consequent), positive)
    if isinstance(f, Iff):
        expanded = And(
            Or(Not(f.left), f.right),
            Or(Not(f.right), f.left),
        )
        return _nnf(expanded, positive)
    raise TypeError(f"unknown formula node {f!r}")


Clause = frozenset  # of (name, polarity) pairs
CNF = frozenset  # of Clause


def to_cnf(formula: Formula) -> frozenset[frozenset[tuple[str, bool]]]:
    """Clausal CNF by NNF + distribution (exact, may be exponential).

    Each clause is a frozenset of ``(variable, polarity)`` literals.
    An empty clause set means ⊤; a set containing the empty clause means ⊥.
    """
    nnf = to_nnf(formula)
    clauses = _cnf_clauses(nnf)
    # drop tautological clauses (contain p and ¬p)
    useful = frozenset(
        clause
        for clause in clauses
        if not any((name, not pol) in clause for name, pol in clause)
    )
    return useful


def _cnf_clauses(f: Formula) -> frozenset[frozenset[tuple[str, bool]]]:
    if isinstance(f, Var):
        return frozenset({frozenset({(f.name, True)})})
    if isinstance(f, Not):
        assert isinstance(f.operand, Var), "input must be in NNF"
        return frozenset({frozenset({(f.operand.name, False)})})
    if isinstance(f, Const):
        return frozenset() if f.value else frozenset({frozenset()})
    if isinstance(f, And):
        return _cnf_clauses(f.left) | _cnf_clauses(f.right)
    if isinstance(f, Or):
        left = _cnf_clauses(f.left)
        right = _cnf_clauses(f.right)
        if not left or not right:  # ⊤ ∨ x ≡ ⊤
            return frozenset()
        return frozenset(lc | rc for lc in left for rc in right)
    raise TypeError(f"formula not in NNF: {f!r}")


# ---------------------------------------------------------------------- #
# semantics
# ---------------------------------------------------------------------- #


def assignments(variables: Iterable[str]) -> Iterator[dict[str, bool]]:
    """All truth assignments over ``variables`` in a deterministic order."""
    names = sorted(set(variables))
    for values in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, values))


def truth_table(formula: Formula) -> list[tuple[dict[str, bool], bool]]:
    """The full truth table, one row per assignment."""
    return [(a, formula.evaluate(a)) for a in assignments(formula.variables())]


def models(formula: Formula) -> list[dict[str, bool]]:
    """All satisfying assignments (by truth-table enumeration)."""
    return [a for a, value in truth_table(formula) if value]


def is_tautology(formula: Formula) -> bool:
    """True iff ``formula`` holds under every assignment.

    Decided by DPLL on the negation, so it scales beyond truth tables.
    """
    return not is_satisfiable(Not(formula))


def is_satisfiable(formula: Formula) -> bool:
    """DPLL satisfiability on the clausal CNF of ``formula``."""
    return dpll(to_cnf(formula)) is not None


def equivalent(f: Formula, g: Formula) -> bool:
    """Logical equivalence: ``f ↔ g`` is a tautology."""
    return is_tautology(Iff(f, g))


def entails(premises: Iterable[Formula], conclusion: Formula) -> bool:
    """True iff the conjunction of ``premises`` entails ``conclusion``."""
    return not is_satisfiable(And(conj(premises), Not(conclusion)))


def dpll(clauses: frozenset[frozenset[tuple[str, bool]]]) -> dict[str, bool] | None:
    """The DPLL procedure: a satisfying assignment or ``None``.

    Unit propagation + pure-literal elimination + branching on the most
    frequent variable.  Variables not mentioned by any clause are left out
    of the returned assignment (they are don't-cares).
    """
    assignment: dict[str, bool] = {}
    work = {frozenset(c) for c in clauses}

    def simplify(cls: set[frozenset], name: str, value: bool) -> set[frozenset] | None:
        out: set[frozenset] = set()
        for clause in cls:
            if (name, value) in clause:
                continue  # satisfied
            reduced = clause - {(name, not value)}
            if not reduced:
                return None  # empty clause: conflict
            out.add(frozenset(reduced))
        return out

    def solve(cls: set[frozenset], partial: dict[str, bool]) -> dict[str, bool] | None:
        cls = set(cls)
        partial = dict(partial)
        if frozenset() in cls:
            return None
        changed = True
        while changed:
            changed = False
            # unit propagation
            unit = next((c for c in cls if len(c) == 1), None)
            if unit is not None:
                (name, value), = unit
                partial[name] = value
                nxt = simplify(cls, name, value)
                if nxt is None:
                    return None
                cls = nxt
                changed = True
                continue
            # pure literal elimination
            polarity: dict[str, set[bool]] = {}
            for clause in cls:
                for name, value in clause:
                    polarity.setdefault(name, set()).add(value)
            pure = next((n for n, pols in polarity.items() if len(pols) == 1), None)
            if pure is not None:
                value = next(iter(polarity[pure]))
                partial[pure] = value
                nxt = simplify(cls, pure, value)
                if nxt is None:
                    return None
                cls = nxt
                changed = True
        if not cls:
            return partial
        # branch on the most frequent variable
        counts: dict[str, int] = {}
        for clause in cls:
            for name, _ in clause:
                counts[name] = counts.get(name, 0) + 1
        name = max(sorted(counts), key=lambda n: counts[n])
        for value in (True, False):
            nxt = simplify(cls, name, value)
            if nxt is None:
                continue
            found = solve(nxt, {**partial, name: value})
            if found is not None:
                return found
        return None

    return solve(work, assignment)
