"""Propositional modal logic over Kripke frames.

Paper §2 contrasts Guarino's possible worlds with Kripke's: "In Kripke,
possible worlds are formal models indexed by a variable that corresponds
to a degree of modality … Extensional relations are what determine the
essence of the world".  This module implements that picture so the
contrast is executable: frames with primitive accessibility and
valuations, forcing (⊨), validity, and the classical correspondences
(T ↔ reflexive, 4 ↔ transitive, B ↔ symmetric, D ↔ serial) —
all checkable on finite frames, no circularity anywhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping


class ModalError(Exception):
    """Raised on malformed frames or formulas."""


class MFormula:
    """Base class for modal formulas (immutable, hashable)."""

    def __and__(self, other: "MFormula") -> "MFormula":
        return MAnd(self, other)

    def __or__(self, other: "MFormula") -> "MFormula":
        return MOr(self, other)

    def __invert__(self) -> "MFormula":
        return MNot(self)

    def __rshift__(self, other: "MFormula") -> "MFormula":
        return MImplies(self, other)


@dataclass(frozen=True)
class MVar(MFormula):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MNot(MFormula):
    operand: MFormula

    def __str__(self) -> str:
        return f"¬{self.operand}"


@dataclass(frozen=True)
class MAnd(MFormula):
    left: MFormula
    right: MFormula

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class MOr(MFormula):
    left: MFormula
    right: MFormula

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class MImplies(MFormula):
    antecedent: MFormula
    consequent: MFormula

    def __str__(self) -> str:
        return f"({self.antecedent} → {self.consequent})"


@dataclass(frozen=True)
class Box(MFormula):
    """□φ: φ holds in every accessible world."""

    operand: MFormula

    def __str__(self) -> str:
        return f"□{self.operand}"


@dataclass(frozen=True)
class Diamond(MFormula):
    """◇φ: φ holds in some accessible world."""

    operand: MFormula

    def __str__(self) -> str:
        return f"◇{self.operand}"


class KripkeFrame:
    """A finite Kripke model: worlds, accessibility, valuation.

    The valuation maps each world to the set of variable names true
    there — worlds carry primitive extensional structure, exactly the
    arrangement the paper contrasts with Guarino's.
    """

    def __init__(
        self,
        worlds: Iterable[Hashable],
        accessibility: Iterable[tuple[Hashable, Hashable]],
        valuation: Mapping[Hashable, Iterable[str]] | None = None,
    ) -> None:
        self.worlds = frozenset(worlds)
        if not self.worlds:
            raise ModalError("a frame needs at least one world")
        self.accessibility = frozenset(tuple(p) for p in accessibility)
        for a, b in self.accessibility:
            if a not in self.worlds or b not in self.worlds:
                raise ModalError(f"accessibility pair ({a!r}, {b!r}) leaves the frame")
        self.valuation = {
            w: frozenset((valuation or {}).get(w, ())) for w in self.worlds
        }

    def successors(self, world: Hashable) -> frozenset:
        return frozenset(b for a, b in self.accessibility if a == world)

    # ------------------------------------------------------------------ #
    # forcing and validity
    # ------------------------------------------------------------------ #

    def forces(self, world: Hashable, formula: MFormula) -> bool:
        """``frame, world ⊨ formula``."""
        if world not in self.worlds:
            raise ModalError(f"{world!r} is not a world of this frame")
        if isinstance(formula, MVar):
            return formula.name in self.valuation[world]
        if isinstance(formula, MNot):
            return not self.forces(world, formula.operand)
        if isinstance(formula, MAnd):
            return self.forces(world, formula.left) and self.forces(world, formula.right)
        if isinstance(formula, MOr):
            return self.forces(world, formula.left) or self.forces(world, formula.right)
        if isinstance(formula, MImplies):
            return (not self.forces(world, formula.antecedent)) or self.forces(
                world, formula.consequent
            )
        if isinstance(formula, Box):
            return all(self.forces(s, formula.operand) for s in self.successors(world))
        if isinstance(formula, Diamond):
            return any(self.forces(s, formula.operand) for s in self.successors(world))
        raise ModalError(f"unknown formula node {formula!r}")

    def valid(self, formula: MFormula) -> bool:
        """True iff ``formula`` holds at every world (under this valuation)."""
        return all(self.forces(w, formula) for w in self.worlds)

    # ------------------------------------------------------------------ #
    # frame properties (correspondence theory)
    # ------------------------------------------------------------------ #

    def is_reflexive(self) -> bool:
        return all((w, w) in self.accessibility for w in self.worlds)

    def is_transitive(self) -> bool:
        return all(
            (a, c) in self.accessibility
            for a, b in self.accessibility
            for b2, c in self.accessibility
            if b == b2
        )

    def is_symmetric(self) -> bool:
        return all((b, a) in self.accessibility for a, b in self.accessibility)

    def is_serial(self) -> bool:
        return all(self.successors(w) for w in self.worlds)

    def is_euclidean(self) -> bool:
        return all(
            (b, c) in self.accessibility
            for a, b in self.accessibility
            for a2, c in self.accessibility
            if a == a2
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KripkeFrame(|W|={len(self.worlds)}, |R|={len(self.accessibility)})"


def valid_on_frame(
    frame: KripkeFrame, formula: MFormula, variables: Iterable[str]
) -> bool:
    """Frame validity: true under EVERY valuation of ``variables``.

    This is the notion the correspondence results are about: the axiom T
    (□p → p) is frame-valid iff the accessibility is reflexive, and so on.
    Exponential in |W|·|variables| — fine for the finite frames used here.
    """
    names = sorted(set(variables))
    worlds = sorted(frame.worlds, key=repr)
    cells = [(w, v) for w in worlds for v in names]
    for bits in itertools.product([False, True], repeat=len(cells)):
        valuation: dict[Hashable, set[str]] = {w: set() for w in worlds}
        for (world, name), bit in zip(cells, bits):
            if bit:
                valuation[world].add(name)
        candidate = KripkeFrame(frame.worlds, frame.accessibility, valuation)
        if not candidate.valid(formula):
            return False
    return True


# the classical axiom schemes, instantiated on p
P = MVar("p")
AXIOM_K = Box(MImplies(P, P))  # trivially valid; kept for completeness
AXIOM_T = MImplies(Box(P), P)
AXIOM_4 = MImplies(Box(P), Box(Box(P)))
AXIOM_B = MImplies(P, Box(Diamond(P)))
AXIOM_D = MImplies(Box(P), Diamond(P))
AXIOM_5 = MImplies(Diamond(P), Box(Diamond(P)))
