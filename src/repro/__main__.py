"""Command-line interface: critique a TBox file.

Usage::

    python -m repro critique ONTONOMY.tbox [--contrast OTHER.tbox] [--regress TERM] [--stats]
    python -m repro classify ONTONOMY.tbox [--budget-nodes N] [--budget-ms MS] [--escalate] [--stats]
    python -m repro check ONTONOMY.tbox
    python -m repro bench [--out DIR] [--only B1 ...]

``critique`` runs the full three-part analysis and prints the report;
``classify`` prints the inferred hierarchy; ``check`` reports coherence
and unsatisfiable names; ``bench`` runs the instrumented B1–B6 substrate
benches and writes one ``BENCH_<id>.json`` snapshot each.  ``--stats``
prints the observability counter snapshot (see :mod:`repro.obs`) after
the command's normal output.  TBox files use the text syntax of
:mod:`repro.dl.parser` (one axiom per line, ``#`` comments).

``classify`` accepts resource governance flags (see :mod:`repro.robust`):
``--budget-nodes`` / ``--budget-ms`` bound every subsumption test, and
``--escalate`` geometrically retries an incomplete classification.  A
hierarchy that still has unresolved edges is printed anyway and exits
with the distinct code 3 (:data:`EXIT_PARTIAL`) so scripts can tell a
partial answer from both success (0) and failure (1).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path

from .core import critique
from .dl import Reasoner, classify, parse_tbox
from .obs import Recorder, use_recorder
from .robust import Budget, DEFAULT_MAX_ROUNDS

#: exit code for a run that finished but could not resolve everything
EXIT_PARTIAL = 3


def _load(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_tbox(text)


def _recording(args: argparse.Namespace):
    """A (context manager, recorder) pair honoring ``--stats``."""
    if getattr(args, "stats", False):
        recorder = Recorder()
        return use_recorder(recorder), recorder
    return nullcontext(), None


def _print_stats(recorder: Recorder | None) -> None:
    if recorder is not None:
        print()
        print("observability snapshot:")
        print(recorder.to_json())


def _cmd_critique(args: argparse.Namespace) -> int:
    tbox = _load(args.tbox)
    contrasts = []
    for contrast_path in args.contrast or []:
        contrasts.append((Path(contrast_path).stem, _load(contrast_path)))
    context, recorder = _recording(args)
    with context:
        report = critique(
            tbox,
            label=Path(args.tbox).stem,
            contrast_tboxes=contrasts,
            regress_term=args.regress,
            include_discipline_findings=not args.artifact_only,
        )
    print(report.render())
    _print_stats(recorder)
    return 1 if report.defects() and args.strict else 0


def _cmd_classify(args: argparse.Namespace) -> int:
    tbox = _load(args.tbox)
    budget = None
    if args.budget_nodes is not None or args.budget_ms is not None:
        budget = Budget(max_nodes=args.budget_nodes, max_ms=args.budget_ms)
    context, recorder = _recording(args)
    with context:
        if budget is None:
            hierarchy = classify(tbox, algorithm=args.algorithm)
        else:
            # one reasoner across escalation rounds: definite answers are
            # cached, so each retry only re-pays the unknown queries
            reasoner = Reasoner(tbox)
            hierarchy = classify(
                tbox, algorithm=args.algorithm, reasoner=reasoner, budget=budget
            )
            rounds = 0
            while args.escalate and hierarchy.incomplete and rounds < DEFAULT_MAX_ROUNDS:
                rounds += 1
                budget = budget.escalated()
                hierarchy = classify(
                    tbox, algorithm=args.algorithm, reasoner=reasoner, budget=budget
                )
    print(hierarchy.pretty())
    if hierarchy.incomplete:
        print(
            f"PARTIAL: {len(hierarchy.incomplete)} unresolved subsumption "
            "edge(s) exhausted the budget:",
            file=sys.stderr,
        )
        for specific, general in sorted(hierarchy.incomplete):
            print(f"  {specific} ⊑ {general} ?", file=sys.stderr)
    _print_stats(recorder)
    return EXIT_PARTIAL if hierarchy.incomplete else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import BENCHES, run_bench, write_record

    ids = args.only or sorted(BENCHES)
    for bench_id in ids:
        record = run_bench(bench_id)
        path = write_record(record, args.out)
        nonzero = sum(1 for v in record["counters"].values() if v)
        print(
            f"{bench_id}: wrote {path} "
            f"(wall {record['wall_time_s']:.3f}s, {nonzero} non-zero counters)"
        )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    tbox = _load(args.tbox)
    reasoner = Reasoner(tbox)
    bad = reasoner.unsatisfiable_names()
    if bad:
        print(f"INCOHERENT: unsatisfiable names: {', '.join(bad)}")
        return 1
    print(f"coherent: {len(tbox)} axioms, {len(tbox.atomic_names())} names")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="summa: critique, classify, or check a DL ontonomy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_critique = sub.add_parser("critique", help="run the three-part critique")
    p_critique.add_argument("tbox", help="path to a .tbox file")
    p_critique.add_argument(
        "--contrast",
        action="append",
        help="contrast TBox file for cross-collision search (repeatable)",
    )
    p_critique.add_argument(
        "--regress", metavar="TERM", help="run the differentiation regress on TERM"
    )
    p_critique.add_argument(
        "--artifact-only",
        action="store_true",
        help="omit the discipline-level §2 findings",
    )
    p_critique.add_argument(
        "--strict", action="store_true", help="exit 1 when defects are found"
    )
    p_critique.add_argument(
        "--stats",
        action="store_true",
        help="print the obs counter snapshot after the report",
    )
    p_critique.set_defaults(func=_cmd_critique)

    p_classify = sub.add_parser("classify", help="print the inferred hierarchy")
    p_classify.add_argument("tbox")
    p_classify.add_argument(
        "--algorithm",
        choices=["enhanced", "brute"],
        default="enhanced",
        help="classification algorithm: enhanced-traversal insertion "
        "(default) or the brute-force subsumption matrix",
    )
    p_classify.add_argument(
        "--budget-nodes",
        type=int,
        metavar="N",
        help="cap completion-graph nodes per subsumption test; unresolved "
        f"edges are reported and the exit code becomes {EXIT_PARTIAL}",
    )
    p_classify.add_argument(
        "--budget-ms",
        type=float,
        metavar="MS",
        help="wall-clock deadline (milliseconds) shared by the whole run",
    )
    p_classify.add_argument(
        "--escalate",
        action="store_true",
        help="retry an incomplete classification with geometrically "
        f"escalated budgets (up to {DEFAULT_MAX_ROUNDS} rounds)",
    )
    p_classify.add_argument(
        "--stats",
        action="store_true",
        help="print the obs counter snapshot after the hierarchy",
    )
    p_classify.set_defaults(func=_cmd_classify)

    p_check = sub.add_parser("check", help="coherence check")
    p_check.add_argument("tbox")
    p_check.set_defaults(func=_cmd_check)

    p_bench = sub.add_parser(
        "bench", help="run the B1-B6 benches and write BENCH_*.json snapshots"
    )
    p_bench.add_argument(
        "--out", default=".", help="directory for BENCH_*.json files (default: .)"
    )
    p_bench.add_argument(
        "--only",
        action="append",
        metavar="ID",
        choices=["B1", "B2", "B3", "B4", "B5", "B6"],
        help="run only this bench (repeatable)",
    )
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
