"""Command-line interface: critique a TBox file.

Usage::

    python -m repro critique ONTONOMY.tbox [--contrast OTHER.tbox] [--regress TERM]
    python -m repro classify ONTONOMY.tbox
    python -m repro check ONTONOMY.tbox

``critique`` runs the full three-part analysis and prints the report;
``classify`` prints the inferred hierarchy; ``check`` reports coherence
and unsatisfiable names.  TBox files use the text syntax of
:mod:`repro.dl.parser` (one axiom per line, ``#`` comments).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import critique
from .dl import Reasoner, classify, parse_tbox


def _load(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_tbox(text)


def _cmd_critique(args: argparse.Namespace) -> int:
    tbox = _load(args.tbox)
    contrasts = []
    for contrast_path in args.contrast or []:
        contrasts.append((Path(contrast_path).stem, _load(contrast_path)))
    report = critique(
        tbox,
        label=Path(args.tbox).stem,
        contrast_tboxes=contrasts,
        regress_term=args.regress,
        include_discipline_findings=not args.artifact_only,
    )
    print(report.render())
    return 1 if report.defects() and args.strict else 0


def _cmd_classify(args: argparse.Namespace) -> int:
    hierarchy = classify(_load(args.tbox))
    print(hierarchy.pretty())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    tbox = _load(args.tbox)
    reasoner = Reasoner(tbox)
    bad = reasoner.unsatisfiable_names()
    if bad:
        print(f"INCOHERENT: unsatisfiable names: {', '.join(bad)}")
        return 1
    print(f"coherent: {len(tbox)} axioms, {len(tbox.atomic_names())} names")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="summa: critique, classify, or check a DL ontonomy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_critique = sub.add_parser("critique", help="run the three-part critique")
    p_critique.add_argument("tbox", help="path to a .tbox file")
    p_critique.add_argument(
        "--contrast",
        action="append",
        help="contrast TBox file for cross-collision search (repeatable)",
    )
    p_critique.add_argument(
        "--regress", metavar="TERM", help="run the differentiation regress on TERM"
    )
    p_critique.add_argument(
        "--artifact-only",
        action="store_true",
        help="omit the discipline-level §2 findings",
    )
    p_critique.add_argument(
        "--strict", action="store_true", help="exit 1 when defects are found"
    )
    p_critique.set_defaults(func=_cmd_critique)

    p_classify = sub.add_parser("classify", help="print the inferred hierarchy")
    p_classify.add_argument("tbox")
    p_classify.set_defaults(func=_cmd_classify)

    p_check = sub.add_parser("check", help="coherence check")
    p_check.add_argument("tbox")
    p_check.set_defaults(func=_cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
