"""Command-line interface: critique a TBox file.

Usage::

    python -m repro critique ONTONOMY.tbox [--contrast OTHER.tbox] [--regress TERM] [--stats]
    python -m repro classify ONTONOMY.tbox [--budget-nodes N] [--budget-ms MS] [--escalate] [--stats] [--profile] [--incremental-from STORE]
    python -m repro check ONTONOMY.tbox
    python -m repro bench [--out DIR] [--only B1 ...]
    python -m repro serve [--tbox FILE] [--port N] [--abox-backend sqlite --abox-db PATH] ...
    python -m repro abox ONTONOMY.tbox --abox-db PATH [--load STORE.jsonl] [--materialize] [--instances CONCEPT] [--types IND] [--stats]

``critique`` runs the full three-part analysis and prints the report;
``classify`` prints the inferred hierarchy; ``check`` reports coherence
and unsatisfiable names; ``bench`` runs the instrumented B1–B12 substrate
benches and writes one ``BENCH_<id>.json`` snapshot each; ``serve``
starts the long-lived batched reasoning service (:mod:`repro.serve`);
``abox`` loads, materializes, and queries a DB-backed instance store
(:mod:`repro.instdb`) without a server.
``--stats`` prints the observability counter snapshot (see
:mod:`repro.obs`) after the command's normal output.  TBox files use the
text syntax of :mod:`repro.dl.parser` (one axiom per line, ``#``
comments).

``classify`` accepts resource governance flags (see :mod:`repro.robust`):
``--budget-nodes`` / ``--budget-ms`` bound every subsumption test, and
``--escalate`` geometrically retries an incomplete classification.  A
hierarchy that still has unresolved edges is printed anyway and exits
with the distinct code 3 (:data:`EXIT_PARTIAL`) so scripts can tell a
partial answer from both success (0) and failure (1); the full contract
is in :data:`EXIT_CODES` and the ``--help`` epilog.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import nullcontext
from pathlib import Path

from .core import critique
from .dl import Reasoner, classify, parse_tbox
from .obs import Recorder, set_recorder, use_recorder
from .robust import Budget, DEFAULT_MAX_ROUNDS

#: everything ran and every answer is definite
EXIT_OK = 0
#: the run finished and found a negative result (defects under
#: ``--strict``, an incoherent TBox) or died on an operational error
EXIT_FAILURE = 1
#: command-line usage error (argparse's own convention)
EXIT_USAGE = 2
#: exit code for a run that finished but could not resolve everything
EXIT_PARTIAL = 3

#: the one authoritative exit-code table: the ``--help`` epilog, the
#: README, and the contract test all render/check THIS mapping
EXIT_CODES: dict[int, str] = {
    EXIT_OK: "success: every answer definite",
    EXIT_FAILURE: "failure: defects found (--strict), incoherent TBox, or error",
    EXIT_USAGE: "usage error (bad flags/arguments; raised by argparse)",
    EXIT_PARTIAL: "partial: a budget or fault left UNKNOWN answers "
    "(HTTP analogue: 206)",
}


def exit_code_epilog() -> str:
    """The exit-code contract rendered for ``--help`` and the README."""
    lines = ["exit codes:"]
    for code, meaning in sorted(EXIT_CODES.items()):
        lines.append(f"  {code}  {meaning}")
    return "\n".join(lines)


def _load(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_tbox(text)


def _recording(args: argparse.Namespace):
    """A (context manager, recorder) pair honoring ``--stats``/``--profile``."""
    if getattr(args, "stats", False) or getattr(args, "profile", False):
        recorder = Recorder()
        return use_recorder(recorder), recorder
    return nullcontext(), None


def _print_stats(recorder: Recorder | None) -> None:
    if recorder is not None:
        print()
        print("observability snapshot:")
        print(recorder.to_json())


def _print_profile(recorder: Recorder | None, top: int = 10) -> None:
    """Top-``top`` timers by total time and counters by value, as tables."""
    if recorder is None:
        return
    snapshot = recorder.snapshot()
    timers = snapshot["timers"]
    ranked = sorted(timers.items(), key=lambda kv: kv[1]["total"], reverse=True)
    print()
    print(f"profile (top {min(top, len(ranked))} timers by total time):")
    print(f"  {'timer':<40} {'calls':>8} {'total s':>10} {'mean ms':>10}")
    for name, cell in ranked[:top]:
        print(
            f"  {name:<40} {cell['count']:>8} {cell['total']:>10.4f} "
            f"{cell['mean'] * 1000:>10.3f}"
        )
    counters = snapshot["counters"]
    top_counters = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
    print()
    print(f"profile (top {min(top, len(top_counters))} counters by value):")
    print(f"  {'counter':<40} {'value':>12}")
    for name, value in top_counters[:top]:
        print(f"  {name:<40} {value:>12}")


def _cmd_critique(args: argparse.Namespace) -> int:
    tbox = _load(args.tbox)
    contrasts = []
    for contrast_path in args.contrast or []:
        contrasts.append((Path(contrast_path).stem, _load(contrast_path)))
    context, recorder = _recording(args)
    with context:
        report = critique(
            tbox,
            label=Path(args.tbox).stem,
            contrast_tboxes=contrasts,
            regress_term=args.regress,
            include_discipline_findings=not args.artifact_only,
        )
    print(report.render())
    _print_stats(recorder)
    return EXIT_FAILURE if report.defects() and args.strict else EXIT_OK


def _cmd_classify(args: argparse.Namespace) -> int:
    tbox = _load(args.tbox)
    budget = None
    if args.budget_nodes is not None or args.budget_ms is not None:
        budget = Budget(max_nodes=args.budget_nodes, max_ms=args.budget_ms)
    if args.incremental_from and args.algorithm not in ("auto", "enhanced"):
        print("--incremental-from requires --algorithm auto/enhanced", file=sys.stderr)
        return EXIT_USAGE
    context, recorder = _recording(args)
    with context:
        if args.incremental_from:
            # classify the predecessor store, then pay only the delta
            old_hierarchy = Reasoner(_load(args.incremental_from)).classify()
            reasoner = Reasoner(tbox)
            result = reasoner.reclassify(old_hierarchy, budget=budget)
            hierarchy = result.hierarchy
            rounds = 0
            while (
                args.escalate
                and budget is not None
                and hierarchy.incomplete
                and rounds < DEFAULT_MAX_ROUNDS
            ):
                rounds += 1
                budget = budget.escalated()
                result = reasoner.reclassify(old_hierarchy, budget=budget)
                hierarchy = result.hierarchy
            summary = (
                f"reclassified {Path(args.tbox).name} from "
                f"{Path(args.incremental_from).name}: mode={result.mode}, "
                f"affected={len(result.affected)}, "
                f"reused_edges={result.reused_edges}, "
                f"cache_carryover={result.cache_carryover}"
            )
            if result.fallback_reason:
                summary += f" ({result.fallback_reason})"
            print(summary, file=sys.stderr)
        elif budget is None:
            hierarchy = classify(tbox, algorithm=args.algorithm)
        else:
            # one reasoner across escalation rounds: definite answers are
            # cached, so each retry only re-pays the unknown queries
            reasoner = Reasoner(tbox)
            hierarchy = classify(
                tbox, algorithm=args.algorithm, reasoner=reasoner, budget=budget
            )
            rounds = 0
            while args.escalate and hierarchy.incomplete and rounds < DEFAULT_MAX_ROUNDS:
                rounds += 1
                budget = budget.escalated()
                hierarchy = classify(
                    tbox, algorithm=args.algorithm, reasoner=reasoner, budget=budget
                )
    print(hierarchy.pretty())
    if hierarchy.incomplete:
        print(
            f"PARTIAL: {len(hierarchy.incomplete)} unresolved subsumption "
            "edge(s) exhausted the budget:",
            file=sys.stderr,
        )
        for specific, general in sorted(hierarchy.incomplete):
            print(f"  {specific} ⊑ {general} ?", file=sys.stderr)
    if getattr(args, "profile", False):
        _print_profile(recorder)
    if getattr(args, "stats", False):
        _print_stats(recorder)
    return EXIT_PARTIAL if hierarchy.incomplete else EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import BENCHES, run_bench, write_record

    ids = args.only or sorted(BENCHES)
    for bench_id in ids:
        record = run_bench(bench_id)
        path = write_record(record, args.out)
        nonzero = sum(1 for v in record["counters"].values() if v)
        print(
            f"{bench_id}: wrote {path} "
            f"(wall {record['wall_time_s']:.3f}s, {nonzero} non-zero counters)"
        )
    return EXIT_OK


def _cmd_check(args: argparse.Namespace) -> int:
    tbox = _load(args.tbox)
    reasoner = Reasoner(tbox)
    bad = reasoner.unsatisfiable_names()
    if bad:
        print(f"INCOHERENT: unsatisfiable names: {', '.join(bad)}")
        return EXIT_FAILURE
    print(f"coherent: {len(tbox)} axioms, {len(tbox.atomic_names())} names")
    return EXIT_OK


def _cmd_abox(args: argparse.Namespace) -> int:
    from .dl import parse_concept
    from .instdb import materialize as instdb_materialize, open_backend
    from .store import load_jsonl, store_to_backend

    tbox = _load(args.tbox)
    context, recorder = _recording(args)
    with context:
        backend = open_backend(args.abox_backend, args.abox_db)
        try:
            if args.load:
                store = load_jsonl(args.load)
                loaded = store_to_backend(store, backend, tbox)
                print(f"loaded {loaded} told assertion(s) from {args.load}")
            if args.materialize:
                hierarchy = Reasoner(tbox).classify()
                result = instdb_materialize(backend, hierarchy)
                print(
                    f"materialized {result.derived_rows} derived row(s) "
                    f"from {len(result.sources)} told concept(s) "
                    f"(removed {result.removed_rows} stale)"
                )
            if args.instances:
                concept = parse_concept(args.instances)
                members = Reasoner(tbox).retrieve_indexed(
                    backend, concept, limit=args.limit
                )
                for name in members:
                    print(name)
                print(
                    f"# {len(members)} instance(s) of {args.instances}",
                    file=sys.stderr,
                )
            if args.types:
                for name in sorted(backend.types(args.types)):
                    print(name)
            if args.stats:
                print()
                print("backend stats:")
                for key, value in sorted(backend.stats().items()):
                    print(f"  {key}: {value}")
        finally:
            backend.close()
    _print_stats(recorder)
    return EXIT_OK


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    """Internal: one spawn-mode worker (launched by the front process)."""
    from .serve.workers import run_spawn_worker

    return run_spawn_worker(args.spec)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .dl import TBox
    from .serve import ReasoningServer, ServeConfig

    if args.follow and not args.edit_log:
        print("serve: --follow requires --edit-log DIR", file=sys.stderr)
        return EXIT_USAGE
    tbox = _load(args.tbox) if args.tbox else TBox()
    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        soft_limit=args.soft_limit,
        hard_limit=args.hard_limit,
        node_allowance=args.node_allowance,
        ms_allowance=args.ms_allowance,
        tbox_store=args.tbox_store,
        incremental_swap=not args.no_incremental_swap,
        incremental_threshold=args.incremental_threshold,
        edit_log=args.edit_log,
        min_swap_interval_ms=args.min_swap_interval_ms,
        rebase_limit=args.rebase_limit,
        rebase_max_bytes=args.rebase_max_bytes,
        rebase_max_age_s=args.rebase_max_age_s,
        follow=args.follow,
        auto_promote_after=args.auto_promote_after,
        probe_interval_ms=args.probe_interval_ms,
        abox_backend=args.abox_backend,
        abox_db=args.abox_db,
        workers=args.workers,
        worker_start_method=args.worker_start_method,
        worker_dir=args.worker_dir,
    )
    # a serving process always records: /v1/metrics is part of the API
    set_recorder(Recorder())
    if config.workers >= 1:
        from .serve.workers import FrontServer

        server = FrontServer(tbox, config)
    else:
        server = ReasoningServer(tbox, config)

    async def _run() -> None:
        host, port = await server.start()
        recovery = None if server.editlog is None else server.editlog.last_recovery
        if recovery is not None and not recovery.fresh:
            print(
                f"recovered edit log: v{recovery.version} "
                f"(base v{recovery.base_version} + {recovery.replayed} "
                f"replayed edit(s), {recovery.torn} torn record(s) dropped)",
                flush=True,
            )
        served = server.snapshots.current.tbox
        print(
            f"serving {len(served)} axiom(s) on http://{host}:{port} "
            f"(batch window {config.batch_window_ms}ms, "
            f"soft/hard limits {config.soft_limit}/{config.hard_limit})",
            flush=True,
        )
        if config.follow:
            print(
                f"following {config.follow} (read-only until promoted)",
                flush=True,
            )
        if config.workers >= 1:
            block = server.supervisor.health_block()
            print(
                f"workers: {block['up']}/{block['count']} up "
                f"({block['start_method']} start) in "
                f"{server.supervisor.worker_dir}",
                flush=True,
            )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("shutting down", file=sys.stderr)
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="summa: critique, classify, check, or serve a DL ontonomy",
        epilog=exit_code_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_critique = sub.add_parser("critique", help="run the three-part critique")
    p_critique.add_argument("tbox", help="path to a .tbox file")
    p_critique.add_argument(
        "--contrast",
        action="append",
        help="contrast TBox file for cross-collision search (repeatable)",
    )
    p_critique.add_argument(
        "--regress", metavar="TERM", help="run the differentiation regress on TERM"
    )
    p_critique.add_argument(
        "--artifact-only",
        action="store_true",
        help="omit the discipline-level §2 findings",
    )
    p_critique.add_argument(
        "--strict", action="store_true", help="exit 1 when defects are found"
    )
    p_critique.add_argument(
        "--stats",
        action="store_true",
        help="print the obs counter snapshot after the report",
    )
    p_critique.set_defaults(func=_cmd_critique)

    p_classify = sub.add_parser("classify", help="print the inferred hierarchy")
    p_classify.add_argument("tbox")
    p_classify.add_argument(
        "--algorithm",
        choices=["auto", "enhanced", "brute", "saturation"],
        default="auto",
        help="classification algorithm: auto (default; consequence-based "
        "saturation when the TBox is Horn/EL, enhanced traversal "
        "otherwise), enhanced-traversal insertion, the brute-force "
        "subsumption matrix, or saturation with per-query tableau "
        "fallback for non-Horn residue",
    )
    p_classify.add_argument(
        "--budget-nodes",
        type=int,
        metavar="N",
        help="cap completion-graph nodes per subsumption test; unresolved "
        f"edges are reported and the exit code becomes {EXIT_PARTIAL}",
    )
    p_classify.add_argument(
        "--budget-ms",
        type=float,
        metavar="MS",
        help="wall-clock deadline (milliseconds) shared by the whole run",
    )
    p_classify.add_argument(
        "--escalate",
        action="store_true",
        help="retry an incomplete classification with geometrically "
        f"escalated budgets (up to {DEFAULT_MAX_ROUNDS} rounds)",
    )
    p_classify.add_argument(
        "--incremental-from",
        metavar="STORE",
        help="predecessor TBox file: classify it, then reclassify TBOX "
        "incrementally from the delta (see README 'Incremental "
        "reclassification'); requires the enhanced algorithm",
    )
    p_classify.add_argument(
        "--stats",
        action="store_true",
        help="print the obs counter snapshot after the hierarchy",
    )
    p_classify.add_argument(
        "--profile",
        action="store_true",
        help="print the top-10 obs timers by total time after the hierarchy",
    )
    p_classify.set_defaults(func=_cmd_classify)

    p_check = sub.add_parser("check", help="coherence check")
    p_check.add_argument("tbox")
    p_check.set_defaults(func=_cmd_check)

    p_bench = sub.add_parser(
        "bench", help="run the B1-B12 benches and write BENCH_*.json snapshots"
    )
    p_bench.add_argument(
        "--out", default=".", help="directory for BENCH_*.json files (default: .)"
    )
    p_bench.add_argument(
        "--only",
        action="append",
        metavar="ID",
        choices=[
            "B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8", "B9", "B10",
            "B11", "B12", "B13",
        ],
        help="run only this bench (repeatable)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="start the batched JSON-over-HTTP reasoning service",
        epilog="degradation: budget-exhausted answers are HTTP 206 "
        "(UNKNOWN verdict body); admission refusals are 429/503 with "
        "Retry-After.  Edits degrade in frequency, not latency: a "
        "throttled POST /v1/tbox is logged, acked 200, and reported "
        "swap_status deferred (queued) or coalesced (superseded the "
        "queued edit).  Live traffic survives failover: --follow starts "
        "a warm standby that applies the primary's edit log, serves "
        "reads with an X-Replication-Lag-Records header, refuses writes "
        "503 + primary location, and promotes (POST /v1/promote, or "
        "automatically) under a persisted fencing epoch so a resurrected "
        "ex-primary refuses writes.  See README 'Serving', 'Live "
        "traffic', and 'Replication & failover'.",
    )
    p_serve.add_argument(
        "--tbox", metavar="FILE", help="TBox file to serve (default: empty TBox)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="how long to hold a check for coalescing (default: 5)",
    )
    p_serve.add_argument(
        "--batch-max",
        type=int,
        default=64,
        metavar="N",
        help="flush a batch early at this size (default: 64)",
    )
    p_serve.add_argument(
        "--soft-limit",
        type=int,
        default=64,
        metavar="N",
        help="in-flight requests beyond this are refused 429 (default: 64)",
    )
    p_serve.add_argument(
        "--hard-limit",
        type=int,
        default=256,
        metavar="N",
        help="in-flight requests beyond this are refused 503 (default: 256)",
    )
    p_serve.add_argument(
        "--node-allowance",
        type=int,
        default=250_000,
        metavar="N",
        help="server-wide completion-graph node allowance split across "
        "soft-limit slots into per-request budgets (default: 250000)",
    )
    p_serve.add_argument(
        "--ms-allowance",
        type=float,
        default=None,
        metavar="MS",
        help="per-request wall-clock deadline (default: none)",
    )
    p_serve.add_argument(
        "--tbox-store",
        metavar="PATH",
        help="persist hot-swapped TBoxes crash-safely to this file",
    )
    p_serve.add_argument(
        "--no-incremental-swap",
        action="store_true",
        help="always fully re-classify on POST /v1/tbox instead of "
        "reclassifying incrementally from the serving snapshot",
    )
    p_serve.add_argument(
        "--incremental-threshold",
        type=float,
        default=0.5,
        metavar="F",
        help="fall back to full classification when more than this "
        "fraction of concepts is affected by a swap (default: 0.5)",
    )
    p_serve.add_argument(
        "--edit-log",
        metavar="DIR",
        help="durable append-only edit log directory: every acknowledged "
        "POST /v1/tbox is logged before the 200, and a restart replays "
        "base snapshot + log (recovered state wins over --tbox)",
    )
    p_serve.add_argument(
        "--min-swap-interval-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="swap-frequency throttle: publish snapshots at most this "
        "often, deferring/coalescing faster edit streams (default: 0)",
    )
    p_serve.add_argument(
        "--rebase-limit",
        type=int,
        default=1024,
        metavar="N",
        help="compact the edit log into a new base snapshot after this "
        "many records (default: 1024)",
    )
    p_serve.add_argument(
        "--rebase-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="also compact once the log file grows past this many bytes "
        "(default: no size trigger)",
    )
    p_serve.add_argument(
        "--rebase-max-age-s",
        type=float,
        default=None,
        metavar="S",
        help="also compact when the base snapshot is older than this "
        "many seconds at the next append (default: no age trigger)",
    )
    p_serve.add_argument(
        "--follow",
        metavar="URL",
        help="start as a warm standby replicating this primary "
        "(http://host:port); requires --edit-log, serves read-only "
        "until promoted",
    )
    p_serve.add_argument(
        "--auto-promote-after",
        type=int,
        default=None,
        metavar="N",
        help="follower only: self-promote after this many consecutive "
        "failed pulls from the primary (default: manual promotion only)",
    )
    p_serve.add_argument(
        "--probe-interval-ms",
        type=float,
        default=500.0,
        metavar="MS",
        help="follower only: poll the primary this often once caught up "
        "(default: 500)",
    )
    p_serve.add_argument(
        "--abox-backend",
        choices=["memory", "sqlite"],
        default=os.environ.get("REPRO_ABOX_BACKEND", "memory"),
        help="instance-store backend behind /v1/instances (default: "
        "memory, or $REPRO_ABOX_BACKEND)",
    )
    p_serve.add_argument(
        "--abox-db",
        metavar="PATH",
        help="sqlite database file for --abox-backend sqlite (default: "
        "a private in-memory database)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="multi-worker mode: a routing front process plus N worker "
        "processes each holding the pre-classified snapshot (default: "
        "0 = classic single-process server); see README 'Scaling out'",
    )
    p_serve.add_argument(
        "--worker-start-method",
        choices=["auto", "fork", "spawn"],
        default="auto",
        help="how workers are created: fork shares the classified "
        "snapshot copy-on-write, spawn reloads the TBox per worker "
        "(default: auto = fork where available)",
    )
    p_serve.add_argument(
        "--worker-dir",
        metavar="DIR",
        help="directory for worker control sockets (default: a tempdir)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    # internal: the spawn-mode worker entry point (launched by the
    # front process, not by operators)
    p_worker = sub.add_parser("serve-worker")
    p_worker.add_argument("--spec", required=True, metavar="FILE")
    p_worker.set_defaults(func=_cmd_serve_worker)

    p_abox = sub.add_parser(
        "abox",
        help="load/materialize/query a DB-backed instance store offline",
        epilog="The store persists between invocations when --abox-db "
        "points at a file: load once, materialize once, then serve it "
        "with `repro serve --abox-backend sqlite --abox-db PATH` or "
        "query it here.  See README 'Instance store'.",
    )
    p_abox.add_argument("tbox", help="TBox file governing materialization")
    p_abox.add_argument(
        "--abox-backend",
        choices=["memory", "sqlite"],
        default="sqlite",
        help="backend kind (default: sqlite)",
    )
    p_abox.add_argument(
        "--abox-db",
        metavar="PATH",
        help="sqlite database file (default: in-memory, gone at exit)",
    )
    p_abox.add_argument(
        "--load",
        metavar="STORE.jsonl",
        help="load told assertions from a JSONL triple store "
        "(type triples + role triples, filtered against the TBox)",
    )
    p_abox.add_argument(
        "--materialize",
        action="store_true",
        help="classify the TBox and write derived types into the store",
    )
    p_abox.add_argument(
        "--instances",
        metavar="CONCEPT",
        help="print the instances of CONCEPT (indexed for atomic names)",
    )
    p_abox.add_argument(
        "--types",
        metavar="IND",
        help="print the told + derived types of individual IND",
    )
    p_abox.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="cap --instances output (default: all)",
    )
    p_abox.add_argument(
        "--stats",
        action="store_true",
        help="print backend stats and the obs counter snapshot",
    )
    p_abox.set_defaults(func=_cmd_abox)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
