"""Observability: lightweight metrics and tracing for the hot paths.

The reproduction's ROADMAP promises perf PRs (sharding, batching,
caching); none of them can *prove* a win unless the hot paths are
measurable.  This package provides the counters, timers, and trace spans
that `python -m repro bench` snapshots into the ``BENCH_*.json``
trajectory files.

Usage::

    from repro.obs import Recorder, use_recorder

    rec = Recorder()
    with use_recorder(rec):
        classify(tbox)          # instrumented hot paths record into rec
    print(rec.to_json())

With no recorder installed the instrumentation is a null default whose
cost is one global load and an identity check per call site.
"""

from .recorder import (
    NULL,
    NullRecorder,
    Recorder,
    get_recorder,
    incr,
    observe,
    record_timing,
    set_recorder,
    trace,
    use_recorder,
)

__all__ = [
    "NULL",
    "NullRecorder",
    "Recorder",
    "get_recorder",
    "incr",
    "observe",
    "record_timing",
    "set_recorder",
    "trace",
    "use_recorder",
]
