"""Metrics recording: counters, timers, histograms, and trace spans.

The module keeps one *current* recorder.  The default is a
:class:`NullRecorder` whose hot-path cost is a single global load and an
identity check — instrumented code pays (almost) nothing unless a caller
opts in with :func:`use_recorder`.  Hot paths call the module-level
helpers (:func:`incr`, :func:`observe`, :func:`trace`) rather than
holding a recorder, so one ``with use_recorder(...)`` block captures
everything that happens inside it, across every subsystem.

Counter names are dotted paths grouped by subsystem
(``tableau.expansions``, ``reasoner.sat_cache_hits``,
``store.index_lookups``, ...); see README "Observability" for the full
catalogue.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "incr",
    "observe",
    "record_timing",
    "trace",
]


#: histogram sample retention per name: enough for stable p50/p99 on
#: serving workloads without unbounded growth on long-lived processes
SAMPLE_CAP = 512


class Recorder:
    """Accumulates counters, timers, and histograms.

    >>> rec = Recorder()
    >>> rec.incr("tableau.expansions")
    >>> rec.incr("tableau.expansions", 2)
    >>> rec.snapshot()["counters"]["tableau.expansions"]
    3
    """

    __slots__ = ("counters", "_timers", "_histograms", "_samples")

    #: class-level flag read by the hot-path helpers; NullRecorder flips it
    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        # name -> [count, total_seconds, min, max]
        self._timers: dict[str, list[float]] = {}
        # name -> [count, total, min, max]
        self._histograms: dict[str, list[float]] = {}
        # name -> ring of the last SAMPLE_CAP observations (for quantiles)
        self._samples: dict[str, list[float]] = {}

    # -- recording ------------------------------------------------------ #

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``.

        Besides the running count/total/min/max, the last
        :data:`SAMPLE_CAP` observations are retained in a ring so
        :meth:`snapshot` can report p50/p99 quantiles.
        """
        cell = self._histograms.get(name)
        if cell is None:
            self._histograms[name] = [1, value, value, value]
            self._samples[name] = [value]
        else:
            cell[0] += 1
            cell[1] += value
            if value < cell[2]:
                cell[2] = value
            if value > cell[3]:
                cell[3] = value
            ring = self._samples[name]
            if len(ring) < SAMPLE_CAP:
                ring.append(value)
            else:
                ring[int(cell[0]) % SAMPLE_CAP] = value

    def record_timing(self, name: str, seconds: float) -> None:
        """Record one elapsed span into the timer ``name``."""
        cell = self._timers.get(name)
        if cell is None:
            self._timers[name] = [1, seconds, seconds, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds
            if seconds < cell[2]:
                cell[2] = seconds
            if seconds > cell[3]:
                cell[3] = seconds

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager recording its own wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record_timing(name, time.perf_counter() - t0)

    def merge(self, other: "Recorder") -> None:
        """Fold ``other``'s counters, timers, and histograms into this one.

        Used by the bench harness to combine a workload recorder with
        one that lived in another context (e.g. a serving process's
        recorder installed via :func:`set_recorder`).  Sample rings are
        concatenated and re-capped at :data:`SAMPLE_CAP`, so quantiles
        over the merged recorder stay a recent-window estimate.
        """
        for name, n in other.counters.items():
            self.incr(name, n)
        for target, source in (
            (self._timers, other._timers),
            (self._histograms, other._histograms),
        ):
            for name, (count, total, lo, hi) in source.items():
                cell = target.get(name)
                if cell is None:
                    target[name] = [count, total, lo, hi]
                else:
                    cell[0] += count
                    cell[1] += total
                    cell[2] = min(cell[2], lo)
                    cell[3] = max(cell[3], hi)
        for name, ring in other._samples.items():
            merged = self._samples.get(name, []) + list(ring)
            self._samples[name] = merged[-SAMPLE_CAP:]

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a wire-shipped :meth:`snapshot` dict into this recorder.

        The multi-worker front process aggregates ``/v1/metrics`` by
        fetching each worker's recorder snapshot over the control
        channel and merging here — the worker's live ``Recorder`` object
        never crosses the process boundary.  Quantiles need raw
        observations, so workers ship ``snapshot(samples=True)``;
        without a ``samples`` section only count/total/min/max merge and
        p50/p99 reflect whichever sides did carry samples.
        """
        for name, n in (snap.get("counters") or {}).items():
            self.incr(name, int(n))
        for target, key in ((self._timers, "timers"), (self._histograms, "histograms")):
            for name, summary in (snap.get(key) or {}).items():
                count = int(summary.get("count", 0))
                if count <= 0:
                    continue
                total = float(summary.get("total", 0.0))
                lo = float(summary.get("min", 0.0))
                hi = float(summary.get("max", 0.0))
                cell = target.get(name)
                if cell is None:
                    target[name] = [count, total, lo, hi]
                else:
                    cell[0] += count
                    cell[1] += total
                    cell[2] = min(cell[2], lo)
                    cell[3] = max(cell[3], hi)
        for name, ring in (snap.get("samples") or {}).items():
            merged = self._samples.get(name, []) + [float(v) for v in ring]
            self._samples[name] = merged[-SAMPLE_CAP:]

    # -- reading -------------------------------------------------------- #

    def snapshot(self, *, samples: bool = False) -> dict[str, Any]:
        """A JSON-ready copy of everything recorded so far.

        Timer/histogram entries are summarized as
        ``{count, total, min, max, mean}`` — timers in seconds.
        Histograms additionally carry ``p50`` and ``p99`` computed over
        the retained sample ring (exact below :data:`SAMPLE_CAP`
        observations, a recent-window estimate beyond it).

        With ``samples=True`` the raw rings are included under a
        ``samples`` key so :meth:`merge_snapshot` on the receiving side
        can compute cross-process quantiles.
        """

        def summarize(cells: dict[str, list[float]]) -> dict[str, dict[str, float]]:
            return {
                name: {
                    "count": int(count),
                    "total": total,
                    "min": lo,
                    "max": hi,
                    "mean": total / count if count else 0.0,
                }
                for name, (count, total, lo, hi) in sorted(cells.items())
            }

        histograms = summarize(self._histograms)
        for name, cell in histograms.items():
            ring = sorted(self._samples.get(name, ()))
            if ring:
                cell["p50"] = _quantile(ring, 0.50)
                cell["p99"] = _quantile(ring, 0.99)
        snap: dict[str, Any] = {
            "counters": dict(sorted(self.counters.items())),
            "timers": summarize(self._timers),
            "histograms": histograms,
        }
        if samples:
            snap["samples"] = {
                name: list(ring) for name, ring in sorted(self._samples.items())
            }
        return snap

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        self.counters.clear()
        self._timers.clear()
        self._histograms.clear()
        self._samples.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Recorder({len(self.counters)} counters, "
            f"{len(self._timers)} timers, {len(self._histograms)} histograms)"
        )


class NullRecorder(Recorder):
    """The zero-overhead default: every recording method is a no-op.

    The hot-path helpers below skip even the method call when the current
    recorder is the shared :data:`NULL` instance, so disabled
    instrumentation costs one global load and one identity test.
    """

    __slots__ = ()

    enabled = False

    def incr(self, name: str, n: int = 1) -> None:  # pragma: no cover - no-op
        pass

    def observe(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    def record_timing(self, name: str, seconds: float) -> None:  # pragma: no cover
        pass

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        yield


def _quantile(ordered: list[float], q: float) -> float:
    """The ``q``-quantile of a sorted, non-empty sample (nearest-rank)."""
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


#: the shared disabled recorder; identity-compared on every hot-path call
NULL = NullRecorder()

_current: Recorder = NULL


def get_recorder() -> Recorder:
    """The recorder currently receiving observations (NULL when disabled)."""
    return _current


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` as current (``None`` restores the null default)."""
    global _current
    _current = recorder if recorder is not None else NULL
    return _current


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Route all observations inside the block to ``recorder``.

    >>> from repro.obs import Recorder, use_recorder, incr
    >>> rec = Recorder()
    >>> with use_recorder(rec):
    ...     incr("demo.events")
    >>> rec.counters["demo.events"]
    1
    """
    global _current
    previous = _current
    _current = recorder
    try:
        yield recorder
    finally:
        _current = previous


# ---------------------------------------------------------------------- #
# hot-path helpers: what instrumented modules actually call
# ---------------------------------------------------------------------- #


def incr(name: str, n: int = 1) -> None:
    """Increment a counter on the current recorder (no-op when disabled)."""
    rec = _current
    if rec is not NULL:
        rec.incr(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the current recorder."""
    rec = _current
    if rec is not NULL:
        rec.observe(name, value)


def record_timing(name: str, seconds: float) -> None:
    """Record an externally-measured span on the current recorder."""
    rec = _current
    if rec is not NULL:
        rec.record_timing(name, seconds)


@contextmanager
def trace(name: str) -> Iterator[None]:
    """A timed span recorded under ``name`` (free when disabled)."""
    rec = _current
    if rec is NULL:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        rec.record_timing(name, time.perf_counter() - t0)
