"""The hermeneutic circle as constraint propagation.

"The parts of the text can be understood in terms of the whole context,
and the context becomes intelligible by means of the parts." (paper §3,
citing Gadamer)

Model: each *part* of a text has candidate senses; there is a set of
candidate *whole* construals; a compatibility relation says which sense a
part can bear under which whole.  Reading iterates both directions —
prune senses no surviving whole supports, prune wholes no surviving
sense-assignment realizes — to a fixpoint.  The circle is virtuous when
the fixpoint is determinate, ambiguous when several readings survive,
and broken when nothing does.

Ontology's move, on the paper's analysis, is to cut the circle by fixing
the senses once and for all; :func:`cut_circle` does exactly that, so
tests can show what the cut costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping


class CircleStatus(enum.Enum):
    DETERMINATE = "determinate"
    AMBIGUOUS = "ambiguous"
    INCOHERENT = "incoherent"


@dataclass(frozen=True)
class CircleResult:
    """The fixpoint of the part↔whole propagation."""

    status: CircleStatus
    senses: Mapping[str, frozenset[str]]
    wholes: frozenset[str]
    iterations: int

    def sense_of(self, part: str) -> str | None:
        """The settled sense of ``part``, if unique."""
        candidates = self.senses[part]
        if len(candidates) == 1:
            (sense,) = candidates
            return sense
        return None


Compatibility = Callable[[str, str, str], bool]  # (whole, part, sense) -> bool


def run_circle(
    parts: Mapping[str, frozenset[str] | set[str]],
    wholes: frozenset[str] | set[str],
    compatible: Compatibility,
    *,
    max_iterations: int = 100,
) -> CircleResult:
    """Iterate part↔whole pruning to a fixpoint.

    * a sense survives if SOME surviving whole supports it;
    * a whole survives if EVERY part retains SOME sense it supports.
    """
    senses: dict[str, frozenset[str]] = {
        p: frozenset(s) for p, s in parts.items()
    }
    live_wholes = frozenset(wholes)
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        new_senses = {
            p: frozenset(
                s for s in candidates if any(compatible(w, p, s) for w in live_wholes)
            )
            for p, candidates in senses.items()
        }
        new_wholes = frozenset(
            w
            for w in live_wholes
            if all(
                any(compatible(w, p, s) for s in new_senses[p])
                for p in new_senses
            )
        )
        if new_senses == senses and new_wholes == live_wholes:
            break
        senses, live_wholes = new_senses, new_wholes

    if not live_wholes or any(not s for s in senses.values()):
        status = CircleStatus.INCOHERENT
    elif len(live_wholes) == 1 and all(len(s) == 1 for s in senses.values()):
        status = CircleStatus.DETERMINATE
    else:
        status = CircleStatus.AMBIGUOUS
    return CircleResult(
        status=status, senses=senses, wholes=live_wholes, iterations=iterations
    )


def cut_circle(
    parts: Mapping[str, frozenset[str] | set[str]],
    wholes: frozenset[str] | set[str],
    compatible: Compatibility,
    fixed_senses: Mapping[str, str],
) -> CircleResult:
    """Ontology's normative move: fix each part's sense in advance.

    The senses in ``fixed_senses`` replace the candidate sets (one sense
    per part, decided before any reading), and only the whole-pruning
    direction runs.  When the codified senses are the right ones for the
    situation, this agrees with :func:`run_circle`; when they are not,
    the reading comes out incoherent or lands on a different whole —
    the cost of the "death of the reader".
    """
    frozen = {p: frozenset({fixed_senses[p]}) for p in parts}
    return run_circle(frozen, wholes, compatible)
