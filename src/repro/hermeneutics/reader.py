"""Readers and the interpretation fixpoint.

"It is reading — historically and conceptually situated — that
constructs meaning connecting the cues that the text gives with the
complex network of conventions, discourses, and situatedness in which it
occurs." (paper §3)

An :class:`Interpreter` holds the available discourses; a reading is the
fixpoint of firing their conventions against (text, situation, reader).
The result records what was derived, which conventions fired, and —
crucially for the paper's argument — which conventions *would* have
fired were the reader's background or the situation richer: the
measurable gap between a situated reading and the "death of the reader"
reading ontology proposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .context import Convention, Discourse, HermeneuticError, Situation, Text


@dataclass(frozen=True)
class Reader:
    """A historically situated reader: background propositions they bring."""

    name: str
    background: frozenset[str]

    def knows(self, proposition: str) -> bool:
        return proposition in self.background


#: The limiting case the paper attributes to ontology: "the reader can be
#: replaced by an algorithm" — no background at all.
ALGORITHMIC_READER = Reader("algorithm", frozenset())


@dataclass(frozen=True)
class Interpretation:
    """The outcome of one reading."""

    propositions: frozenset[str]
    speech_acts: frozenset[str]
    fired: tuple[str, ...]          # convention names, in firing order
    blocked: tuple[str, ...]        # applicable-but-for-background/situation

    @property
    def determinate(self) -> bool:
        """Exactly one speech-act classification emerged."""
        return len(self.speech_acts) == 1

    @property
    def speech_act(self) -> str | None:
        if self.determinate:
            (act,) = self.speech_acts
            return act
        return None

    def agrees_with(self, other: "Interpretation") -> bool:
        """Same propositional content and same speech-act classification."""
        return (
            self.propositions == other.propositions
            and self.speech_acts == other.speech_acts
        )


class Interpreter:
    """Runs readings against a fixed library of discourses."""

    def __init__(self, discourses: list[Discourse]) -> None:
        self.discourses = list(discourses)
        names = [c.name for d in self.discourses for c in d]
        if len(set(names)) != len(names):
            raise HermeneuticError("convention names must be globally unique")

    def conventions(self) -> list[Convention]:
        return [c for d in self.discourses for c in d]

    def interpret(
        self,
        text: Text,
        situation: Situation | None,
        reader: Reader,
    ) -> Interpretation:
        """The fixpoint reading of ``text`` in ``situation`` by ``reader``.

        Conventions fire (once each) whenever their requirements are met,
        possibly enabled by previously derived propositions; iteration
        continues until nothing new fires.  Pass ``situation=None`` for
        the decontextualized reading.
        """
        derived: set[str] = set()
        speech_acts: set[str] = set()
        fired: list[str] = []
        remaining = self.conventions()
        progress = True
        while progress:
            progress = False
            still: list[Convention] = []
            for convention in remaining:
                if convention.applicable(
                    text, situation, reader.background, frozenset(derived)
                ):
                    derived |= convention.yields
                    if convention.speech_act is not None:
                        speech_acts.add(convention.speech_act)
                    fired.append(convention.name)
                    progress = True
                else:
                    still.append(convention)
            remaining = still

        blocked = tuple(
            c.name
            for c in remaining
            # would fire with a richer reading state: text cues alone match
            if c.requires_text <= text.features
        )
        return Interpretation(
            propositions=frozenset(derived),
            speech_acts=frozenset(speech_acts),
            fired=tuple(fired),
            blocked=blocked,
        )

    def situated_gap(
        self, text: Text, situation: Situation, reader: Reader
    ) -> frozenset[str]:
        """What the situation + reader add over the text alone.

        The paper's claim, quantified: the propositions present in the
        situated reading but absent from the algorithmic, situation-free
        one.
        """
        situated = self.interpret(text, situation, reader)
        bare = self.interpret(text, None, ALGORITHMIC_READER)
        return situated.propositions - bare.propositions
