"""Re-coding a text and measuring the interpretive drift.

"…it falls into the trap of believing that a text is just an author's
intended meaning, and that therefore it is possible to re-code the text
leaving the meaning unaltered.  But if the meaning arises through an
historically situated interaction of the reader with the text … changing
the code will change the meaning." (paper §3)

A re-coding maps a text to another text (same "author's intention", by
stipulation).  Drift is the fraction of (situation, reader) scenarios on
which the situated interpretations of original and re-coded text come
apart.  Zero drift across *all* scenarios is what the
meaning-as-commodity picture predicts; the trespass corpus shows it is
not what happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .context import Situation, Text
from .reader import Interpretation, Interpreter, Reader

Recoding = Callable[[Text], Text]


@dataclass(frozen=True)
class DriftReport:
    """Where and how much a re-coding changed the readings."""

    total_scenarios: int
    divergent: tuple[tuple[str, str], ...]  # (situation name, reader name)

    @property
    def drift(self) -> float:
        if self.total_scenarios == 0:
            return 0.0
        return len(self.divergent) / self.total_scenarios

    @property
    def meaning_preserved(self) -> bool:
        return not self.divergent


def interpretation_drift(
    interpreter: Interpreter,
    original: Text,
    recoded: Text,
    scenarios: Sequence[tuple[Situation, Reader]],
) -> DriftReport:
    """Compare readings of ``original`` vs ``recoded`` across scenarios."""
    divergent: list[tuple[str, str]] = []
    for situation, reader in scenarios:
        before = interpreter.interpret(original, situation, reader)
        after = interpreter.interpret(recoded, situation, reader)
        if not before.agrees_with(after):
            divergent.append((situation.name, reader.name))
    return DriftReport(
        total_scenarios=len(scenarios), divergent=tuple(divergent)
    )


def formalization(new_content: str, kept: Iterable[str] = ()) -> Recoding:
    """A re-coding that replaces the wording and keeps only ``kept`` features.

    The typical ontological re-coding: normalize the prose into a
    controlled vocabulary, discarding 'irrelevant' material features
    (medium, dating, register) — exactly the features situated conventions
    key on.
    """
    kept = frozenset(kept)

    def recode(text: Text) -> Text:
        return Text(
            content=new_content,
            features=frozenset(f for f in text.features if f[0] in kept),
        )

    return recode
