"""Texts, situations, conventions: the raw material of interpretation.

Paper §3, the "trespassers will be prosecuted" analysis: "None of these
elements, necessary for understanding, is in the text: they must be
supplied by a specific situation … and … by other texts that are not
present" — the discourses of private property, custom, authority.

The model: a :class:`Text` carries only what is materially in/on it
(words, medium, dating); a :class:`Situation` carries placement and
circumstance; a :class:`Convention` is a fragment of a discourse — a rule
that, given text features, situation features, the reader's background
and previously derived propositions, contributes propositions (and
possibly a speech-act classification) to the reading.  Interpretation is
the fixpoint of applying conventions (:mod:`repro.hermeneutics.reader`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


Feature = tuple[str, str]


class HermeneuticError(Exception):
    """Raised on ill-formed texts, situations, or conventions."""


@dataclass(frozen=True)
class Text:
    """A text as a material object: content plus its *in-text* features.

    Features are (attribute, value) pairs that inspection of the artifact
    alone supports — "the sign is made of plastic … and the writing is
    not dated" — never facts about its placement or its reader.
    """

    content: str
    features: frozenset[Feature]

    def has(self, attribute: str, value: str) -> bool:
        return (attribute, value) in self.features

    def __str__(self) -> str:
        return f'Text("{self.content}")'


@dataclass(frozen=True)
class Situation:
    """Where and how the text is encountered."""

    name: str
    features: frozenset[Feature]

    def has(self, attribute: str, value: str) -> bool:
        return (attribute, value) in self.features


@dataclass(frozen=True)
class Convention:
    """One interpretive rule, belonging to a discourse.

    Fires when all four requirement sets are met: text features,
    situation features, reader background propositions, and propositions
    already derived during this reading (allowing conventions to chain).
    On firing it contributes ``yields`` and, optionally, a speech-act
    classification.
    """

    name: str
    discourse: str
    requires_text: frozenset[Feature] = frozenset()
    requires_situation: frozenset[Feature] = frozenset()
    requires_background: frozenset[str] = frozenset()
    requires_derived: frozenset[str] = frozenset()
    yields: frozenset[str] = frozenset()
    speech_act: str | None = None

    def __post_init__(self) -> None:
        if not self.yields and self.speech_act is None:
            raise HermeneuticError(
                f"convention {self.name!r} contributes nothing"
            )

    def applicable(
        self,
        text: Text,
        situation: Situation | None,
        background: frozenset[str],
        derived: frozenset[str],
    ) -> bool:
        """Can this convention fire on the given reading state?

        A missing situation (reading the text "in a vacuum") blocks every
        convention with situational requirements — which is precisely how
        the text-only reading comes out impoverished.
        """
        if not self.requires_text <= text.features:
            return False
        if self.requires_situation:
            if situation is None or not self.requires_situation <= situation.features:
                return False
        if not self.requires_background <= background:
            return False
        if not self.requires_derived <= derived:
            return False
        return True


@dataclass(frozen=True)
class Discourse:
    """A named bundle of conventions (e.g. the discourse of private property)."""

    name: str
    conventions: tuple[Convention, ...]

    def __post_init__(self) -> None:
        for convention in self.conventions:
            if convention.discourse != self.name:
                raise HermeneuticError(
                    f"convention {convention.name!r} claims discourse "
                    f"{convention.discourse!r}, not {self.name!r}"
                )

    def __iter__(self):
        return iter(self.conventions)

    def __len__(self) -> int:
        return len(self.conventions)
