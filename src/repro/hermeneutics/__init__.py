"""Hermeneutics: situated interpretation, the circle, re-coding drift."""

from .circle import CircleResult, CircleStatus, cut_circle, run_circle
from .context import (
    Convention,
    Discourse,
    Feature,
    HermeneuticError,
    Situation,
    Text,
)
from .reader import (
    ALGORITHMIC_READER,
    Interpretation,
    Interpreter,
    Reader,
)
from .recoding import DriftReport, formalization, interpretation_drift

__all__ = [
    "Text", "Situation", "Convention", "Discourse", "Feature",
    "HermeneuticError",
    "Reader", "ALGORITHMIC_READER", "Interpreter", "Interpretation",
    "CircleStatus", "CircleResult", "run_circle", "cut_circle",
    "DriftReport", "interpretation_drift", "formalization",
]
