"""Wire protocol for the reasoning service: HTTP/1.1 framing + JSON bodies.

The server speaks a deliberately small slice of HTTP/1.1 over asyncio
streams (stdlib only, no web framework): request line, headers,
``Content-Length`` bodies, keep-alive.  Every response body is JSON.

Status-code contract (mirrors the CLI exit-code contract — see
``repro --help``):

========  ==============================================================
status    meaning
========  ==============================================================
200       definite answer
206       *partial* answer: a budget or injected fault left the verdict
          ``UNKNOWN`` (the JSON body carries ``verdict`` and ``reason``);
          the CLI analogue is exit code 3
400       malformed request (bad JSON, bad concept syntax, missing field)
404       unknown route
405       method not allowed on this route
409       fencing conflict: a ``/v1/fence`` carried a stale (≤ current)
          epoch — the sender lost a promotion race
429       admission refused: at capacity, retry after ``Retry-After``
500       internal error (the body names the exception type)
503       overloaded, draining, or refusing writes (follower / fenced
          ex-primary; the body's ``primary`` names where writes go)
========  ==============================================================
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..robust import Verdict

#: guard rails on what a client may send, not tunables
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed HTTP framing; the connection is closed after reporting."""


class BadRequest(Exception):
    """A well-framed request with an unusable payload (→ 400)."""


@dataclass
class HttpRequest:
    """One parsed request: method, path, headers (lower-cased), JSON body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict[str, Any]:
        """The body parsed as a JSON object (empty body → ``{}``)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("JSON body must be an object")
        return payload

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on malformed framing or oversized
    headers/bodies.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-headers") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("headers exceed the stream limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"headers exceed {MAX_HEADER_BYTES} bytes")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise ProtocolError(f"bad Content-Length {raw_length!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"Content-Length {length} out of range")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    # strip any query string; the API is JSON-bodied
    path = target.split("?", 1)[0]
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


def encode_response(
    status: int,
    body: dict[str, Any],
    *,
    keep_alive: bool = True,
    extra_headers: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialize one JSON response with correct framing headers."""
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + payload


def verdict_body(verdict: Verdict, **extra: Any) -> tuple[int, dict[str, Any]]:
    """Map a three-valued verdict to ``(status, body)``.

    Definite verdicts are 200 with a boolean ``answer``; UNKNOWN is a
    206 partial response whose body keeps ``answer: null`` and carries
    the budget-exhaustion ``reason`` — the HTTP analogue of CLI exit
    code 3.
    """
    if verdict.is_definite:
        body = {"answer": verdict.as_bool(), "verdict": str(verdict).lower()}
        body.update(extra)
        return 200, body
    body = {"answer": None, "verdict": "unknown", "reason": verdict.reason}
    body.update(extra)
    return 206, body


def error_body(status: int, message: str, **extra: Any) -> tuple[int, dict[str, Any]]:
    body = {"error": _REASONS.get(status, "error").lower(), "message": message}
    body.update(extra)
    return status, body


def require(payload: dict[str, Any], key: str) -> Any:
    """Fetch a required request field or raise :class:`BadRequest`."""
    if key not in payload:
        raise BadRequest(f"missing required field {key!r}")
    return payload[key]
