"""The durable append-only TBox edit log with replay-on-start recovery.

A serving process that hot-swaps its TBox must not lose the edit history
when it crashes: an edit the server *acknowledged* has to survive a
``SIGKILL`` landing mid-swap.  The scheme is a classic write-ahead log
split into two artifacts in one directory:

* ``base.json`` — the last persisted **base snapshot**: one JSON object
  ``{"version": N, "tbox": text}`` replaced atomically
  (:func:`repro.store.atomic_write_text`), so it is always a complete,
  parseable TBox;
* ``edits.log`` — an append-only file of **delta records**, one per
  line, each framed as ``<crc32hex> <json>`` where the JSON carries the
  record's version and the axiom texts it added/removed relative to its
  predecessor.  Appends go through
  :func:`repro.store.append_verified_bytes`: written, fsynced, read back
  and verified, with a torn first attempt (the ``torn-write`` fault
  point) truncated and rewritten — counted in
  ``editlog.torn_writes_recovered`` — before :meth:`EditLog.append`
  returns.  An edit is *acknowledged* only after that return, so every
  acknowledged edit is durably and completely on disk.

**Recovery** (:meth:`EditLog.open` on a directory with state) replays
``base.json`` plus the longest valid log prefix: records are checked for
framing, CRC, JSON shape, and a contiguous version chain; the first
record that fails — a half-written tail from a crash mid-append — stops
the replay, the file is truncated back to the last valid record, and
the dropped fragments are counted in ``editlog.torn_records``.  A
half-written delta is therefore never replayed, and the recovered TBox
equals the state an uninterrupted run would have reached over the same
record prefix (property-tested in ``tests/serve/test_editlog.py``).

**Compaction**: once the log accumulates ``rebase_limit`` records, the
current state is rebased — written as the new base snapshot, after
which the log is truncated.  The crash ordering is safe: a crash
between the base replace and the log truncate leaves stale records
(version ≤ base version) that replay simply skips.

Counters: ``editlog.appends``, ``editlog.replayed_records``,
``editlog.torn_records``, ``editlog.torn_writes_recovered``,
``editlog.recoveries``, ``editlog.rebases``.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..dl import ParseError, TBox, parse_axiom, parse_tbox
from ..dl.diff import axiom_diff
from ..dl.serialize import to_text
from ..dl.tbox import Subsumption
from ..obs import recorder as _obs
from ..store import append_verified_bytes, atomic_write_text

#: log records beyond this trigger an automatic rebase (compaction)
DEFAULT_REBASE_LIMIT = 1024

_BASE_NAME = "base.json"
_LOG_NAME = "edits.log"


class EditLogError(Exception):
    """The log directory is unusable: missing base, corrupt base, ..."""


@dataclass(frozen=True)
class EditRecord:
    """One logged edit: the delta from version-1 to ``version``.

    ``added``/``removed`` are axiom texts in the parser syntax, sorted,
    so encoding is deterministic for a given delta.
    """

    version: int
    added: tuple[str, ...]
    removed: tuple[str, ...]

    def encode(self) -> bytes:
        payload = json.dumps(
            {"version": self.version, "added": list(self.added),
             "removed": list(self.removed)},
            sort_keys=True,
        )
        crc = zlib.crc32(payload.encode("utf-8"))
        return f"{crc:08x} {payload}\n".encode("utf-8")


@dataclass(frozen=True)
class Recovery:
    """What one :meth:`EditLog.open` replay found."""

    version: int        #: the recovered (latest valid) TBox version
    base_version: int   #: the base snapshot's version
    replayed: int       #: delta records replayed on top of the base
    torn: int           #: torn/invalid tail records truncated away
    fresh: bool         #: True when the directory had no prior state


def _axiom_text(axiom) -> str:
    connective = "[=" if isinstance(axiom, Subsumption) else "="
    return f"{to_text(axiom.lhs)} {connective} {to_text(axiom.rhs)}"


def _decode_record(line: bytes) -> Optional[EditRecord]:
    """Parse one framed log line; None when torn or invalid."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        return None
    head, sep, payload = text.partition(" ")
    if not sep or len(head) != 8:
        return None
    try:
        crc = int(head, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) != crc:
        return None
    try:
        row = json.loads(payload)
    except json.JSONDecodeError:
        return None
    if (
        not isinstance(row, dict)
        or not isinstance(row.get("version"), int)
        or not isinstance(row.get("added"), list)
        or not isinstance(row.get("removed"), list)
        or not all(isinstance(a, str) for a in row["added"])
        or not all(isinstance(r, str) for r in row["removed"])
    ):
        return None
    return EditRecord(
        version=row["version"],
        added=tuple(row["added"]),
        removed=tuple(row["removed"]),
    )


def _apply(tbox: TBox, record: EditRecord) -> TBox:
    """The successor TBox: ``record``'s delta applied to ``tbox``.

    Removed axioms are dropped by (parsed) equality; added axioms are
    appended in the record's (sorted) order.  Replay is therefore a
    deterministic function of the base text and the record sequence.
    """
    try:
        removed = {parse_axiom(text) for text in record.removed}
        added = [parse_axiom(text) for text in record.added]
    except ParseError as exc:  # pragma: no cover - records are self-written
        raise EditLogError(f"record v{record.version}: bad axiom: {exc}") from exc
    axioms = [ax for ax in tbox.axioms if ax not in removed]
    axioms.extend(added)
    return TBox(axioms)


class EditLog:
    """One directory of durable TBox edit history (thread-safe appends).

    Use :meth:`open` rather than constructing directly: it initializes a
    fresh directory or recovers an existing one, and the recovered
    ``(tbox, version)`` pair is what a restarting server must serve.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        rebase_limit: int = DEFAULT_REBASE_LIMIT,
    ) -> None:
        self.directory = Path(directory)
        self.base_path = self.directory / _BASE_NAME
        self.log_path = self.directory / _LOG_NAME
        self.rebase_limit = rebase_limit
        self.tbox: TBox = TBox()
        self.version: int = 0
        self.last_recovery: Optional[Recovery] = None
        self._records_since_base = 0
        self._lock = threading.Lock()

    # -- opening / recovery --------------------------------------------- #

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        *,
        initial: Optional[TBox] = None,
        initial_version: int = 1,
        rebase_limit: int = DEFAULT_REBASE_LIMIT,
    ) -> "EditLog":
        """Open ``directory``, initializing or recovering as needed.

        A directory without a base snapshot is initialized fresh from
        ``initial`` (default: the empty TBox) at ``initial_version``.  A
        directory with state is *recovered*: the base is loaded, the
        valid log prefix replayed, and any torn tail truncated — after
        which :attr:`tbox`/:attr:`version` hold the latest durable
        state, which wins over ``initial``.
        """
        log = cls(directory, rebase_limit=rebase_limit)
        log.directory.mkdir(parents=True, exist_ok=True)
        if not log.base_path.exists():
            if log.log_path.exists() and log.log_path.stat().st_size > 0:
                raise EditLogError(
                    f"{log.directory}: edit log without a base snapshot"
                )
            log.tbox = initial if initial is not None else TBox()
            log.version = initial_version
            log._write_base()
            log.log_path.write_bytes(b"")
            log.last_recovery = Recovery(
                version=log.version,
                base_version=log.version,
                replayed=0,
                torn=0,
                fresh=True,
            )
            return log
        log._recover()
        return log

    def _write_base(self) -> None:
        from ..dl.serialize import tbox_to_text

        atomic_write_text(
            self.base_path,
            json.dumps(
                {"version": self.version, "tbox": tbox_to_text(self.tbox)},
                sort_keys=True,
            ),
        )

    def _recover(self) -> None:
        try:
            base = json.loads(self.base_path.read_text(encoding="utf-8"))
            base_version = base["version"]
            tbox = parse_tbox(base["tbox"])
        except (json.JSONDecodeError, KeyError, TypeError, ParseError) as exc:
            raise EditLogError(f"{self.base_path}: corrupt base: {exc}") from exc
        if not isinstance(base_version, int):
            raise EditLogError(f"{self.base_path}: non-integer base version")

        raw = self.log_path.read_bytes() if self.log_path.exists() else b""
        version = base_version
        replayed = 0
        valid_end = 0
        position = 0
        while position < len(raw):
            newline = raw.find(b"\n", position)
            if newline == -1:
                break  # partial line at EOF: a crash mid-append
            record = _decode_record(raw[position:newline])
            if record is None:
                break  # framing/CRC/shape failure: untrustworthy from here
            if record.version <= version:
                # stale record from before a rebase that crashed between
                # the base replace and the log truncate: skip, keep going
                position = valid_end = newline + 1
                continue
            if record.version != version + 1:
                break  # a gap in the chain: the tail is not trustworthy
            tbox = _apply(tbox, record)
            version = record.version
            replayed += 1
            position = valid_end = newline + 1

        torn = 0
        if valid_end < len(raw):
            torn = sum(
                1 for piece in raw[valid_end:].split(b"\n") if piece
            )
            with self.log_path.open("r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
            _obs.incr("editlog.torn_records", torn)

        self.tbox = tbox
        self.version = version
        self._records_since_base = replayed
        self.last_recovery = Recovery(
            version=version,
            base_version=base_version,
            replayed=replayed,
            torn=torn,
            fresh=False,
        )
        _obs.incr("editlog.recoveries")
        _obs.incr("editlog.replayed_records", replayed)

    # -- appending ------------------------------------------------------- #

    def append(self, new_tbox: TBox) -> EditRecord:
        """Durably log the delta from the current state to ``new_tbox``.

        Returns the record (carrying the newly assigned version) only
        after it is fsynced and verified on disk — the caller may then
        acknowledge the edit.  The in-memory state advances to the
        *replayed application* of the delta, so it is byte-for-byte what
        a recovery over the same log would reconstruct.
        """
        with self._lock:
            delta = axiom_diff(self.tbox, new_tbox)
            record = EditRecord(
                version=self.version + 1,
                added=tuple(sorted(_axiom_text(ax) for ax in delta.added)),
                removed=tuple(sorted(_axiom_text(ax) for ax in delta.removed)),
            )
            if append_verified_bytes(self.log_path, record.encode()):
                _obs.incr("editlog.torn_writes_recovered")
            self.tbox = _apply(self.tbox, record)
            self.version = record.version
            self._records_since_base += 1
            _obs.incr("editlog.appends")
            if self.rebase_limit and self._records_since_base >= self.rebase_limit:
                self._rebase()
        return record

    # -- compaction ------------------------------------------------------ #

    def rebase(self) -> None:
        """Persist the current state as the base and truncate the log."""
        with self._lock:
            self._rebase()

    def _rebase(self) -> None:
        self._write_base()
        # a crash before this truncate leaves records with version <= the
        # new base version, which replay skips as stale
        with self.log_path.open("wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._records_since_base = 0
        _obs.incr("editlog.rebases")

    # -- inspection ------------------------------------------------------ #

    @property
    def records_since_base(self) -> int:
        return self._records_since_base

    def stats(self) -> dict:
        """JSON-ready gauges for /v1/metrics."""
        recovery = self.last_recovery
        return {
            "version": self.version,
            "records_since_base": self._records_since_base,
            "rebase_limit": self.rebase_limit,
            "recovered": None
            if recovery is None
            else {
                "fresh": recovery.fresh,
                "base_version": recovery.base_version,
                "replayed": recovery.replayed,
                "torn": recovery.torn,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EditLog({self.directory}, v{self.version}, "
            f"{self._records_since_base} record(s) since base)"
        )
