"""The durable append-only TBox edit log with replay-on-start recovery.

A serving process that hot-swaps its TBox must not lose the edit history
when it crashes: an edit the server *acknowledged* has to survive a
``SIGKILL`` landing mid-swap.  The scheme is a classic write-ahead log
split into two artifacts in one directory:

* ``base.json`` — the last persisted **base snapshot**: one JSON object
  ``{"version": N, "tbox": text}`` replaced atomically
  (:func:`repro.store.atomic_write_text`), so it is always a complete,
  parseable TBox;
* ``edits.log`` — an append-only file of **delta records**, one per
  line, each framed as ``<crc32hex> <json>`` where the JSON carries the
  record's version and the axiom texts it added/removed relative to its
  predecessor.  Appends go through
  :func:`repro.store.append_verified_bytes`: written, fsynced, read back
  and verified, with a torn first attempt (the ``torn-write`` fault
  point) truncated and rewritten — counted in
  ``editlog.torn_writes_recovered`` — before :meth:`EditLog.append`
  returns.  An edit is *acknowledged* only after that return, so every
  acknowledged edit is durably and completely on disk.

**Recovery** (:meth:`EditLog.open` on a directory with state) replays
``base.json`` plus the longest valid log prefix: records are checked for
framing, CRC, JSON shape, and a contiguous version chain; the first
record that fails — a half-written tail from a crash mid-append — stops
the replay, the file is truncated back to the last valid record, and
the dropped fragments are counted in ``editlog.torn_records``.  A
half-written delta is therefore never replayed, and the recovered TBox
equals the state an uninterrupted run would have reached over the same
record prefix (property-tested in ``tests/serve/test_editlog.py``).

**Compaction**: the current state is rebased — written as the new base
snapshot, after which the log is truncated — when any configured
trigger fires: ``rebase_limit`` records since the base (the original
count policy), ``rebase_max_bytes`` of log file growth, or
``rebase_max_age_s`` since the base was last written.  Which trigger
fired is counted per reason (``editlog.rebase_reason.records`` /
``.bytes`` / ``.age`` / ``.manual``).  The crash ordering is safe: a
crash between the base replace and the log truncate leaves stale
records (version ≤ base version) that replay simply skips — including
across *two* back-to-back crashed rebases, where the log holds stale
records from several generations.

**Replication**: the log doubles as the primary→follower shipping
substrate (:mod:`repro.serve.replication`).  A primary reads sealed
records back out with :meth:`EditLog.read_records` and ships its base
via :meth:`EditLog.base_snapshot`; a follower applies shipped records
verbatim — primary-assigned versions and all — with
:meth:`EditLog.append_record` (durable before the apply is visible,
stale duplicates skipped) and resynchronizes from a shipped base with
:meth:`EditLog.install_base`.  :meth:`EditRecord.to_delta` rehydrates
the stored delta as a :class:`repro.dl.diff.AxiomDelta`, so publication
can hand it straight to incremental reclassification instead of
re-diffing full TBox texts.

Counters: ``editlog.appends``, ``editlog.replayed_records``,
``editlog.torn_records``, ``editlog.torn_writes_recovered``,
``editlog.recoveries``, ``editlog.rebases``,
``editlog.rebase_reason.*``, ``editlog.shipped_records``,
``editlog.applied_records``, ``editlog.stale_records_skipped``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..dl import ParseError, TBox, parse_axiom, parse_tbox
from ..dl.diff import AxiomDelta, axiom_diff
from ..dl.serialize import to_text
from ..dl.syntax import Atomic
from ..dl.tbox import Equivalence, Subsumption
from ..obs import recorder as _obs
from ..store import append_verified_bytes, atomic_write_text

#: log records beyond this trigger an automatic rebase (compaction)
DEFAULT_REBASE_LIMIT = 1024

_BASE_NAME = "base.json"
_LOG_NAME = "edits.log"


class EditLogError(Exception):
    """The log directory is unusable: missing base, corrupt base, ..."""


@dataclass(frozen=True)
class EditRecord:
    """One logged edit: the delta from version-1 to ``version``.

    ``added``/``removed`` are axiom texts in the parser syntax, sorted,
    so encoding is deterministic for a given delta.
    """

    version: int
    added: tuple[str, ...]
    removed: tuple[str, ...]

    def encode(self) -> bytes:
        payload = json.dumps(
            {"version": self.version, "added": list(self.added),
             "removed": list(self.removed)},
            sort_keys=True,
        )
        crc = zlib.crc32(payload.encode("utf-8"))
        return f"{crc:08x} {payload}\n".encode("utf-8")

    def to_json(self) -> dict:
        """The wire shape replication ships (mirrors the framed payload)."""
        return {
            "version": self.version,
            "added": list(self.added),
            "removed": list(self.removed),
        }

    @classmethod
    def from_json(cls, row: object) -> Optional["EditRecord"]:
        """Decode one shipped record; ``None`` when malformed."""
        if (
            not isinstance(row, dict)
            or not isinstance(row.get("version"), int)
            or not isinstance(row.get("added"), list)
            or not isinstance(row.get("removed"), list)
            or not all(isinstance(a, str) for a in row["added"])
            or not all(isinstance(r, str) for r in row["removed"])
        ):
            return None
        return cls(
            version=row["version"],
            added=tuple(row["added"]),
            removed=tuple(row["removed"]),
        )

    @classmethod
    def from_diff(cls, version: int, delta: AxiomDelta) -> "EditRecord":
        """A record carrying ``delta`` as sorted axiom texts.

        Used by the multi-worker front process to synthesize a shippable
        record for publications that did not come from a log append
        (``/v1/tbox`` without ``--edit-log``, coalesced publishes, base
        installs) — the workers apply it exactly like a logged record.
        """
        return cls(
            version=version,
            added=tuple(sorted(_axiom_text(axiom) for axiom in delta.added)),
            removed=tuple(sorted(_axiom_text(axiom) for axiom in delta.removed)),
        )

    def apply(self, tbox: TBox) -> TBox:
        """The successor TBox: this record's delta applied to ``tbox``."""
        return _apply(tbox, self)

    def to_delta(self, old_tbox: TBox, new_tbox: TBox) -> AxiomDelta:
        """The stored delta as an :class:`~repro.dl.diff.AxiomDelta`.

        Equivalent to ``axiom_diff(old_tbox, new_tbox)`` but built from
        the record's own added/removed axiom texts, so publication pays
        for the *edit's* axioms instead of re-diffing both full TBoxes.
        ``old_tbox``/``new_tbox`` must be the record's predecessor and
        successor states (they supply only the vocabulary delta).
        """
        added = frozenset(parse_axiom(text) for text in self.added)
        removed = frozenset(parse_axiom(text) for text in self.removed)
        changed: set[str] = set()
        general_changed = False
        # same classification as repro.dl.diff.axiom_diff: definitorial
        # edits name their lhs (both sides for atomic equivalences);
        # anything else is a general change that defeats locality
        for axiom in (*added, *removed):
            if not isinstance(axiom.lhs, Atomic):
                general_changed = True
                continue
            changed.add(axiom.lhs.name)
            if isinstance(axiom, Equivalence):
                if isinstance(axiom.rhs, Atomic):
                    changed.add(axiom.rhs.name)
                else:
                    general_changed = True
        names_before = old_tbox.atomic_names()
        names_after = new_tbox.atomic_names()
        return AxiomDelta(
            added=added,
            removed=removed,
            names_added=frozenset(names_after - names_before),
            names_removed=frozenset(names_before - names_after),
            changed_names=frozenset(changed),
            general_changed=general_changed,
        )


@dataclass(frozen=True)
class Recovery:
    """What one :meth:`EditLog.open` replay found."""

    version: int        #: the recovered (latest valid) TBox version
    base_version: int   #: the base snapshot's version
    replayed: int       #: delta records replayed on top of the base
    torn: int           #: torn/invalid tail records truncated away
    fresh: bool         #: True when the directory had no prior state


def _axiom_text(axiom) -> str:
    connective = "[=" if isinstance(axiom, Subsumption) else "="
    return f"{to_text(axiom.lhs)} {connective} {to_text(axiom.rhs)}"


def _decode_record(line: bytes) -> Optional[EditRecord]:
    """Parse one framed log line; None when torn or invalid."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        return None
    head, sep, payload = text.partition(" ")
    if not sep or len(head) != 8:
        return None
    try:
        crc = int(head, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) != crc:
        return None
    try:
        row = json.loads(payload)
    except json.JSONDecodeError:
        return None
    if (
        not isinstance(row, dict)
        or not isinstance(row.get("version"), int)
        or not isinstance(row.get("added"), list)
        or not isinstance(row.get("removed"), list)
        or not all(isinstance(a, str) for a in row["added"])
        or not all(isinstance(r, str) for r in row["removed"])
    ):
        return None
    return EditRecord(
        version=row["version"],
        added=tuple(row["added"]),
        removed=tuple(row["removed"]),
    )


def _apply(tbox: TBox, record: EditRecord) -> TBox:
    """The successor TBox: ``record``'s delta applied to ``tbox``.

    Removed axioms are dropped by (parsed) equality; added axioms are
    appended in the record's (sorted) order.  Replay is therefore a
    deterministic function of the base text and the record sequence.
    """
    try:
        removed = {parse_axiom(text) for text in record.removed}
        added = [parse_axiom(text) for text in record.added]
    except ParseError as exc:  # pragma: no cover - records are self-written
        raise EditLogError(f"record v{record.version}: bad axiom: {exc}") from exc
    axioms = [ax for ax in tbox.axioms if ax not in removed]
    axioms.extend(added)
    return TBox(axioms)


class EditLog:
    """One directory of durable TBox edit history (thread-safe appends).

    Use :meth:`open` rather than constructing directly: it initializes a
    fresh directory or recovers an existing one, and the recovered
    ``(tbox, version)`` pair is what a restarting server must serve.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        rebase_limit: int = DEFAULT_REBASE_LIMIT,
        rebase_max_bytes: Optional[int] = None,
        rebase_max_age_s: Optional[float] = None,
    ) -> None:
        self.directory = Path(directory)
        self.base_path = self.directory / _BASE_NAME
        self.log_path = self.directory / _LOG_NAME
        self.rebase_limit = rebase_limit
        self.rebase_max_bytes = rebase_max_bytes
        self.rebase_max_age_s = rebase_max_age_s
        self.tbox: TBox = TBox()
        self.version: int = 0
        self.last_recovery: Optional[Recovery] = None
        self._records_since_base = 0
        self._log_bytes = 0
        self._base_written_at = time.monotonic()
        self._lock = threading.Lock()

    # -- opening / recovery --------------------------------------------- #

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        *,
        initial: Optional[TBox] = None,
        initial_version: int = 1,
        rebase_limit: int = DEFAULT_REBASE_LIMIT,
        rebase_max_bytes: Optional[int] = None,
        rebase_max_age_s: Optional[float] = None,
    ) -> "EditLog":
        """Open ``directory``, initializing or recovering as needed.

        A directory without a base snapshot is initialized fresh from
        ``initial`` (default: the empty TBox) at ``initial_version``.  A
        directory with state is *recovered*: the base is loaded, the
        valid log prefix replayed, and any torn tail truncated — after
        which :attr:`tbox`/:attr:`version` hold the latest durable
        state, which wins over ``initial``.
        """
        log = cls(
            directory,
            rebase_limit=rebase_limit,
            rebase_max_bytes=rebase_max_bytes,
            rebase_max_age_s=rebase_max_age_s,
        )
        log.directory.mkdir(parents=True, exist_ok=True)
        if not log.base_path.exists():
            if log.log_path.exists() and log.log_path.stat().st_size > 0:
                raise EditLogError(
                    f"{log.directory}: edit log without a base snapshot"
                )
            log.tbox = initial if initial is not None else TBox()
            log.version = initial_version
            log._write_base()
            log.log_path.write_bytes(b"")
            log.last_recovery = Recovery(
                version=log.version,
                base_version=log.version,
                replayed=0,
                torn=0,
                fresh=True,
            )
            return log
        log._recover()
        return log

    def _write_base(self) -> None:
        from ..dl.serialize import tbox_to_text

        atomic_write_text(
            self.base_path,
            json.dumps(
                {"version": self.version, "tbox": tbox_to_text(self.tbox)},
                sort_keys=True,
            ),
        )
        self._base_written_at = time.monotonic()

    def _recover(self) -> None:
        try:
            base = json.loads(self.base_path.read_text(encoding="utf-8"))
            base_version = base["version"]
            tbox = parse_tbox(base["tbox"])
        except (json.JSONDecodeError, KeyError, TypeError, ParseError) as exc:
            raise EditLogError(f"{self.base_path}: corrupt base: {exc}") from exc
        if not isinstance(base_version, int):
            raise EditLogError(f"{self.base_path}: non-integer base version")

        raw = self.log_path.read_bytes() if self.log_path.exists() else b""
        version = base_version
        replayed = 0
        valid_end = 0
        position = 0
        while position < len(raw):
            newline = raw.find(b"\n", position)
            if newline == -1:
                break  # partial line at EOF: a crash mid-append
            record = _decode_record(raw[position:newline])
            if record is None:
                break  # framing/CRC/shape failure: untrustworthy from here
            if record.version <= version:
                # stale record from before a rebase that crashed between
                # the base replace and the log truncate: skip, keep going
                position = valid_end = newline + 1
                continue
            if record.version != version + 1:
                break  # a gap in the chain: the tail is not trustworthy
            tbox = _apply(tbox, record)
            version = record.version
            replayed += 1
            position = valid_end = newline + 1

        torn = 0
        if valid_end < len(raw):
            torn = sum(
                1 for piece in raw[valid_end:].split(b"\n") if piece
            )
            with self.log_path.open("r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
            _obs.incr("editlog.torn_records", torn)

        self.tbox = tbox
        self.version = version
        self._records_since_base = replayed
        self._log_bytes = valid_end
        self.last_recovery = Recovery(
            version=version,
            base_version=base_version,
            replayed=replayed,
            torn=torn,
            fresh=False,
        )
        _obs.incr("editlog.recoveries")
        _obs.incr("editlog.replayed_records", replayed)

    # -- appending ------------------------------------------------------- #

    def append(self, new_tbox: TBox) -> EditRecord:
        """Durably log the delta from the current state to ``new_tbox``.

        Returns the record (carrying the newly assigned version) only
        after it is fsynced and verified on disk — the caller may then
        acknowledge the edit.  The in-memory state advances to the
        *replayed application* of the delta, so it is byte-for-byte what
        a recovery over the same log would reconstruct.
        """
        with self._lock:
            delta = axiom_diff(self.tbox, new_tbox)
            record = EditRecord(
                version=self.version + 1,
                added=tuple(sorted(_axiom_text(ax) for ax in delta.added)),
                removed=tuple(sorted(_axiom_text(ax) for ax in delta.removed)),
            )
            self._append_locked(record)
        return record

    def append_record(self, record: EditRecord) -> bool:
        """Durably apply one *sealed* record (replication's append path).

        The record keeps its primary-assigned version: a stale record
        (version ≤ the current one) is skipped and returns ``False`` —
        duplicated delivery is harmless — while a gap in the chain
        raises :class:`EditLogError`, because applying a delta to the
        wrong predecessor would silently corrupt the state.  Returns
        ``True`` after the record is durable and applied.
        """
        with self._lock:
            if record.version <= self.version:
                _obs.incr("editlog.stale_records_skipped")
                return False
            if record.version != self.version + 1:
                raise EditLogError(
                    f"record v{record.version} does not extend v{self.version}: "
                    "the stream has a gap; resynchronize from the base"
                )
            self._append_locked(record)
            _obs.incr("editlog.applied_records")
        return True

    def _append_locked(self, record: EditRecord) -> None:
        if append_verified_bytes(self.log_path, record.encode()):
            _obs.incr("editlog.torn_writes_recovered")
        self.tbox = _apply(self.tbox, record)
        self.version = record.version
        self._records_since_base += 1
        self._log_bytes += len(record.encode())
        _obs.incr("editlog.appends")
        reason = self._rebase_due()
        if reason is not None:
            self._rebase(reason)

    def _rebase_due(self) -> Optional[str]:
        """The first compaction trigger that currently fires, or None."""
        if self.rebase_limit and self._records_since_base >= self.rebase_limit:
            return "records"
        if (
            self.rebase_max_bytes is not None
            and self._log_bytes >= self.rebase_max_bytes
        ):
            return "bytes"
        if (
            self.rebase_max_age_s is not None
            and self._records_since_base > 0
            and time.monotonic() - self._base_written_at >= self.rebase_max_age_s
        ):
            return "age"
        return None

    # -- compaction ------------------------------------------------------ #

    def rebase(self) -> None:
        """Persist the current state as the base and truncate the log."""
        with self._lock:
            self._rebase("manual")

    def _rebase(self, reason: str = "manual") -> None:
        self._write_base()
        # a crash before this truncate leaves records with version <= the
        # new base version, which replay skips as stale
        with self.log_path.open("wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._records_since_base = 0
        self._log_bytes = 0
        _obs.incr("editlog.rebases")
        _obs.incr(f"editlog.rebase_reason.{reason}")

    # -- replication ----------------------------------------------------- #

    def read_records(
        self, after: int, limit: int = 256
    ) -> tuple[bool, list[EditRecord]]:
        """Sealed records extending version ``after``, oldest first.

        Returns ``(need_base, records)``.  ``need_base`` is True when the
        log alone cannot bridge from ``after`` to the current state —
        the wanted records were compacted into the base, or ``after``
        predates this log's history — in which case the caller must ship
        :meth:`base_snapshot` instead (the live tip, after which the
        follower is fully caught up).  Only complete, CRC-valid lines
        that chain contiguously from ``after`` are shipped; an in-flight
        torn tail is simply not visible yet.
        """
        with self._lock:
            if after >= self.version:
                return False, []
            raw = self.log_path.read_bytes() if self.log_path.exists() else b""
        wanted: list[EditRecord] = []
        next_version = after + 1
        position = 0
        while position < len(raw) and len(wanted) < limit:
            newline = raw.find(b"\n", position)
            if newline == -1:
                break
            record = _decode_record(raw[position:newline])
            if record is None:
                break
            position = newline + 1
            if record.version < next_version:
                continue  # behind the follower, or a stale generation
            if record.version > next_version:
                break  # the bridge record was compacted away
            wanted.append(record)
            next_version += 1
        if not wanted:
            return True, []
        _obs.incr("editlog.shipped_records", len(wanted))
        return False, wanted

    def base_snapshot(self) -> dict:
        """The current base as ``{"version": N, "tbox": text}`` for shipping.

        Ships the *live* state, not the on-disk base file: the follower
        installing this snapshot lands on the shipper's exact version,
        so subsequent records chain without replaying the log remotely.
        """
        from ..dl.serialize import tbox_to_text

        with self._lock:
            return {"version": self.version, "tbox": tbox_to_text(self.tbox)}

    def install_base(self, version: int, tbox_text: str) -> TBox:
        """Resynchronize from a shipped base snapshot (follower side).

        Replaces the local base and truncates the log, so the directory
        recovers to exactly the shipped state.  Returns the parsed TBox.
        """
        try:
            tbox = parse_tbox(tbox_text)
        except ParseError as exc:
            raise EditLogError(f"shipped base v{version}: bad tbox: {exc}") from exc
        with self._lock:
            self.tbox = tbox
            self.version = version
            self._rebase("base-install")
        return tbox

    # -- inspection ------------------------------------------------------ #

    @property
    def records_since_base(self) -> int:
        return self._records_since_base

    def stats(self) -> dict:
        """JSON-ready gauges for /v1/metrics."""
        recovery = self.last_recovery
        return {
            "version": self.version,
            "records_since_base": self._records_since_base,
            "log_bytes": self._log_bytes,
            "rebase_limit": self.rebase_limit,
            "rebase_max_bytes": self.rebase_max_bytes,
            "rebase_max_age_s": self.rebase_max_age_s,
            "recovered": None
            if recovery is None
            else {
                "fresh": recovery.fresh,
                "base_version": recovery.base_version,
                "replayed": recovery.replayed,
                "torn": recovery.torn,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EditLog({self.directory}, v{self.version}, "
            f"{self._records_since_base} record(s) since base)"
        )
