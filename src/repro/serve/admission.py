"""Admission control: bounded concurrency and budget-sliced requests.

The server must degrade *before* it wedges.  Admission applies two
limits and one allowance:

* ``soft_limit`` — requests in flight beyond this are refused with
  **429 Too Many Requests** and a ``Retry-After`` hint sized to the
  batch window (the client's work is cheap to retry; the server is
  merely momentarily full);
* ``hard_limit`` — beyond this (or while draining for shutdown) the
  refusal escalates to **503 Service Unavailable**: the server is
  shedding load, not queueing it;
* a server-wide **node/ms allowance** divided into per-request
  :class:`repro.robust.Budget` ledgers: ``node_allowance`` completion
  -graph nodes split across ``soft_limit`` concurrent slots, and an
  optional per-request wall-clock deadline.  A query that exhausts its
  slice returns an ``UNKNOWN`` verdict (HTTP 206) instead of stalling
  the event loop.

Counters: ``serve.admitted``, ``serve.rejected_busy`` (429),
``serve.rejected_overloaded`` (503); the in-flight high-water mark is
observed into the ``serve.inflight`` histogram.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..obs import recorder as _obs
from ..robust import Budget


class AdmissionError(Exception):
    """Raised by :meth:`AdmissionController.admit` when a request is refused."""

    def __init__(self, status: int, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


@dataclass
class Ticket:
    """One admitted request: its budget and the controller to return to."""

    budget: Budget
    _controller: "AdmissionController"
    _done: bool = False

    def finish(self) -> None:
        if not self._done:
            self._done = True
            self._controller._leave()


class AdmissionController:
    """Caps concurrent reasoning work and slices the resource allowance."""

    def __init__(
        self,
        *,
        soft_limit: int = 64,
        hard_limit: int = 256,
        node_allowance: Optional[int] = 250_000,
        ms_allowance: Optional[float] = None,
        retry_after_s: float = 0.05,
    ) -> None:
        if soft_limit < 1:
            raise ValueError(f"soft_limit must be >= 1, got {soft_limit}")
        if hard_limit < soft_limit:
            raise ValueError(
                f"hard_limit {hard_limit} < soft_limit {soft_limit}"
            )
        self.soft_limit = soft_limit
        self.hard_limit = hard_limit
        self.node_allowance = node_allowance
        self.ms_allowance = ms_allowance
        self.retry_after_s = retry_after_s
        self._inflight = 0
        self._draining = False
        self._lock = threading.Lock()

    # -- the per-request budget slice ------------------------------------ #

    def request_budget(self) -> Budget:
        """A fresh ledger holding this request's slice of the allowance."""
        max_nodes = (
            None
            if self.node_allowance is None
            else max(1, self.node_allowance // self.soft_limit)
        )
        return Budget(max_nodes=max_nodes, max_ms=self.ms_allowance)

    # -- admission ------------------------------------------------------- #

    def admit(self) -> Ticket:
        """Admit one request or raise :class:`AdmissionError` (429/503)."""
        with self._lock:
            if self._draining:
                _obs.incr("serve.rejected_overloaded")
                raise AdmissionError(
                    503, "draining for shutdown", self.retry_after_s * 4
                )
            if self._inflight >= self.hard_limit:
                _obs.incr("serve.rejected_overloaded")
                raise AdmissionError(
                    503,
                    f"overloaded: {self._inflight} in flight >= "
                    f"hard limit {self.hard_limit}",
                    self.retry_after_s * 4,
                )
            if self._inflight >= self.soft_limit:
                _obs.incr("serve.rejected_busy")
                raise AdmissionError(
                    429,
                    f"busy: {self._inflight} in flight >= "
                    f"soft limit {self.soft_limit}",
                    self.retry_after_s,
                )
            self._inflight += 1
            inflight = self._inflight
        _obs.incr("serve.admitted")
        _obs.observe("serve.inflight", float(inflight))
        return Ticket(self.request_budget(), self)

    def _leave(self) -> None:
        with self._lock:
            self._inflight -= 1

    # -- lifecycle / inspection ------------------------------------------ #

    def drain(self) -> None:
        """Refuse all further admissions (503) while shutting down."""
        with self._lock:
            self._draining = True

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining
