"""Admission control: bounded concurrency and budget-sliced requests.

The server must degrade *before* it wedges.  Admission applies two
limits and one allowance:

* ``soft_limit`` — requests in flight beyond this are refused with
  **429 Too Many Requests** and a ``Retry-After`` hint sized to the
  batch window (the client's work is cheap to retry; the server is
  merely momentarily full);
* ``hard_limit`` — beyond this (or while draining for shutdown) the
  refusal escalates to **503 Service Unavailable**: the server is
  shedding load, not queueing it;
* a server-wide **node/ms allowance** divided into per-request
  :class:`repro.robust.Budget` ledgers: ``node_allowance`` completion
  -graph nodes split across ``soft_limit`` concurrent slots, and an
  optional per-request wall-clock deadline.  A query that exhausts its
  slice returns an ``UNKNOWN`` verdict (HTTP 206) instead of stalling
  the event loop.

Replication adds a **write-refusal policy** orthogonal to load: a
follower (or a fenced ex-primary) keeps admitting reads but refuses
``write=True`` admissions with 503 and the current primary's location
(:meth:`AdmissionController.refuse_writes`); promotion lifts the
refusal (:meth:`~AdmissionController.allow_writes`).

Counters: ``serve.admitted``, ``serve.rejected_busy`` (429),
``serve.rejected_overloaded`` (503), ``repl.fenced_writes`` /
``serve.rejected_writes`` (refused writes on a fenced / follower
server); the in-flight high-water mark is observed into the
``serve.inflight`` histogram.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..obs import recorder as _obs
from ..robust import Budget


@dataclass(frozen=True)
class WorkerShare:
    """One worker's slice of the server-wide admission allowance."""

    soft_limit: int
    hard_limit: int
    node_allowance: Optional[int]


def slice_allowance(
    *,
    soft_limit: int,
    hard_limit: int,
    node_allowance: Optional[int],
    workers: int,
) -> list[WorkerShare]:
    """Split the server-wide admission allowance across ``workers``.

    The invariants the multi-worker mode depends on (property-tested in
    ``tests/serve/test_workers.py``):

    * per-worker soft limits sum to exactly
      ``max(soft_limit, workers)`` — the global concurrency cap, except
      that every worker gets at least one slot;
    * per-worker node allowances sum to **≤** the server-wide
      ``node_allowance``;
    * whenever ``workers <= soft_limit``, each worker's *per-request*
      budget slice (``share.node_allowance // share.soft_limit``) equals
      the single-process slice (``node_allowance // soft_limit``), so a
      query's resource envelope — and thus its PROVED/UNKNOWN verdict —
      is identical at N=1 and N>1.

    The 429/503 thresholds themselves are *not* sliced: the front
    process admits against the unchanged server-wide limits before
    routing, so clients see identical threshold behavior at any N; the
    per-worker shares are a backstop against one worker absorbing the
    whole allowance if routing ever skews.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if soft_limit < 1:
        raise ValueError(f"soft_limit must be >= 1, got {soft_limit}")
    if hard_limit < soft_limit:
        raise ValueError(f"hard_limit {hard_limit} < soft_limit {soft_limit}")
    softs = [max(1, n) for n in _split_even(soft_limit, workers)]
    hards = [max(1, n) for n in _split_even(hard_limit, workers)]
    total_soft = sum(softs)
    per_slot = (
        None if node_allowance is None else node_allowance // max(1, total_soft)
    )
    return [
        WorkerShare(
            soft_limit=soft,
            hard_limit=max(soft, hard),
            node_allowance=None if per_slot is None else per_slot * soft,
        )
        for soft, hard in zip(softs, hards)
    ]


def _split_even(total: int, parts: int) -> list[int]:
    """``total`` split into ``parts`` integers differing by at most 1."""
    base, remainder = divmod(total, parts)
    return [base + 1] * remainder + [base] * (parts - remainder)


class AdmissionError(Exception):
    """Raised by :meth:`AdmissionController.admit` when a request is refused."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after_s: float,
        *,
        location: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s
        #: where the refused work should go instead (the primary's URL
        #: when a follower or fenced server refuses a write)
        self.location = location


@dataclass
class Ticket:
    """One admitted request: its budget and the controller to return to."""

    budget: Budget
    _controller: "AdmissionController"
    _done: bool = False

    def finish(self) -> None:
        if not self._done:
            self._done = True
            self._controller._leave()


class AdmissionController:
    """Caps concurrent reasoning work and slices the resource allowance."""

    def __init__(
        self,
        *,
        soft_limit: int = 64,
        hard_limit: int = 256,
        node_allowance: Optional[int] = 250_000,
        ms_allowance: Optional[float] = None,
        retry_after_s: float = 0.05,
    ) -> None:
        if soft_limit < 1:
            raise ValueError(f"soft_limit must be >= 1, got {soft_limit}")
        if hard_limit < soft_limit:
            raise ValueError(
                f"hard_limit {hard_limit} < soft_limit {soft_limit}"
            )
        self.soft_limit = soft_limit
        self.hard_limit = hard_limit
        self.node_allowance = node_allowance
        self.ms_allowance = ms_allowance
        self.retry_after_s = retry_after_s
        self._inflight = 0
        self._draining = False
        #: (reason, primary location) while writes are refused, else None
        self._writes_refused: Optional[tuple[str, Optional[str]]] = None
        self._lock = threading.Lock()

    # -- the per-request budget slice ------------------------------------ #

    def request_budget(self) -> Budget:
        """A fresh ledger holding this request's slice of the allowance."""
        max_nodes = (
            None
            if self.node_allowance is None
            else max(1, self.node_allowance // self.soft_limit)
        )
        return Budget(max_nodes=max_nodes, max_ms=self.ms_allowance)

    # -- admission ------------------------------------------------------- #

    def admit(self, *, write: bool = False) -> Ticket:
        """Admit one request or raise :class:`AdmissionError` (429/503).

        ``write=True`` marks a state-mutating request, which the
        write-refusal policy (follower mode, fencing) may turn away even
        while reads keep flowing.
        """
        with self._lock:
            if write and self._writes_refused is not None:
                reason, location = self._writes_refused
                _obs.incr(
                    "repl.fenced_writes"
                    if reason == "fenced"
                    else "serve.rejected_writes"
                )
                where = f"; writes go to {location}" if location else ""
                raise AdmissionError(
                    503,
                    f"read-only: this server is {reason}{where}",
                    self.retry_after_s * 4,
                    location=location,
                )
            if self._draining:
                _obs.incr("serve.rejected_overloaded")
                raise AdmissionError(
                    503, "draining for shutdown", self.retry_after_s * 4
                )
            if self._inflight >= self.hard_limit:
                _obs.incr("serve.rejected_overloaded")
                raise AdmissionError(
                    503,
                    f"overloaded: {self._inflight} in flight >= "
                    f"hard limit {self.hard_limit}",
                    self.retry_after_s * 4,
                )
            if self._inflight >= self.soft_limit:
                _obs.incr("serve.rejected_busy")
                raise AdmissionError(
                    429,
                    f"busy: {self._inflight} in flight >= "
                    f"soft limit {self.soft_limit}",
                    self.retry_after_s,
                )
            self._inflight += 1
            inflight = self._inflight
        _obs.incr("serve.admitted")
        _obs.observe("serve.inflight", float(inflight))
        return Ticket(self.request_budget(), self)

    def _leave(self) -> None:
        with self._lock:
            self._inflight -= 1

    # -- lifecycle / inspection ------------------------------------------ #

    def drain(self) -> None:
        """Refuse all further admissions (503) while shutting down."""
        with self._lock:
            self._draining = True

    def refuse_writes(self, reason: str, location: Optional[str] = None) -> None:
        """Refuse ``write=True`` admissions with 503 + ``location``.

        ``reason`` is ``"a follower"`` / ``"fenced"`` — it is spliced
        into the refusal message and picks the rejection counter.
        """
        with self._lock:
            self._writes_refused = (reason, location)

    def allow_writes(self) -> None:
        """Lift the write refusal (promotion to primary)."""
        with self._lock:
            self._writes_refused = None

    @property
    def writes_refused(self) -> bool:
        return self._writes_refused is not None

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining
