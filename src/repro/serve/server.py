"""The asyncio reasoning server: routes, lifecycle, and degradation.

``python -m repro serve`` starts a long-lived JSON-over-HTTP process
exposing the reasoning services over one shared, batched, cached
snapshot instead of re-parsing and re-classifying the TBox per call the
way one-shot CLI invocations do.

Routes (all bodies JSON)::

    GET  /v1/health       liveness + snapshot version + queue gauges
    GET  /v1/metrics      the obs recorder snapshot + serving gauges
    POST /v1/subsumes     {"general": C, "specific": D}      (batched)
    POST /v1/satisfiable  {"concept": C}                     (batched)
    POST /v1/classify     {}                → groups, parents, version
    POST /v1/instances    {"concept": C, "abox": {...}}      (governed)
    POST /v1/critique     {"tbox": text?}  → the paper's critique report
    POST /v1/tbox         {"tbox": text}   → prepare + hot-swap snapshot
    POST /v1/repl/pull    {"after": N}     → sealed records / base (replication)
    POST /v1/promote      {}               → follower becomes primary
    POST /v1/fence        {"epoch": E}     → refuse writes under a newer primary

Degradation contract: budget-exhausted answers are **206** with an
``UNKNOWN`` verdict body (the HTTP analogue of CLI exit code 3);
admission refusals are **429**/**503** with ``Retry-After`` — a
pathological query burns only its own budget slice, never the event
loop.  Concept strings use the text syntax of :mod:`repro.dl.parser`.

Edit publication is governed separately from query admission: under a
``--min-swap-interval-ms`` throttle (or while a publication is already
in flight) a ``POST /v1/tbox`` is still **durably logged and
acknowledged with 200**, but its body reports ``swap_status:
"deferred"`` — or ``"coalesced"`` when it supersedes an edit already
queued (last-writer-wins; edits are full TBox texts) — and a background
publisher task swaps the newest queued edit in once the throttle
allows.  Swap *frequency* degrades before query latency does.  With
``--edit-log DIR`` every acknowledged edit is persisted via
:mod:`repro.serve.editlog` before the 200 goes out, and a restart
replays the log, so the boot snapshot is the last acknowledged state —
crash included.

With ``--follow PRIMARY_URL`` the process boots as a **warm standby**
(:mod:`repro.serve.replication`): it pulls sealed edit records from the
primary, applies them through the same durable log and publishes them
through the incremental snapshot path, serves read-only traffic tagged
with an ``X-Replication-Lag-Records`` header, refuses writes with 503 +
the primary's location, and is promoted — ``POST /v1/promote``, or
automatically after ``--auto-promote-after`` failed pulls — under a
persisted fencing epoch that the old primary, once fenced (or once its
restart reads the fence back from ``epoch.json``), can never out-write.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from .. import instdb as _instdb
from ..core import critique
from ..dl import ParseError, TBox, parse_concept, parse_tbox
from ..obs import recorder as _obs
from ..robust import Budget
from .admission import AdmissionController, AdmissionError
from .batcher import KIND_SATISFIABLE, KIND_SUBSUMES, Batcher
from .editlog import DEFAULT_REBASE_LIMIT, EditLog, EditRecord
from .protocol import (
    BadRequest,
    HttpRequest,
    ProtocolError,
    encode_response,
    error_body,
    read_request,
    require,
    verdict_body,
)
from .replication import EpochStore, FollowerChannel, post_json
from .snapshot import SnapshotManager


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one serving process (see ``repro serve --help``)."""

    host: str = "127.0.0.1"
    port: int = 8080
    batch_window_ms: float = 5.0
    batch_max: int = 64
    soft_limit: int = 64
    hard_limit: int = 256
    node_allowance: Optional[int] = 250_000
    ms_allowance: Optional[float] = None
    max_nodes: int = 2000
    tbox_store: Optional[str] = None
    incremental_swap: bool = True
    incremental_threshold: float = 0.5
    edit_log: Optional[str] = None
    min_swap_interval_ms: float = 0.0
    rebase_limit: int = DEFAULT_REBASE_LIMIT
    rebase_max_bytes: Optional[int] = None
    rebase_max_age_s: Optional[float] = None
    follow: Optional[str] = None
    auto_promote_after: Optional[int] = None
    probe_interval_ms: float = 500.0
    #: instance-store backend behind /v1/instances ("memory" | "sqlite");
    #: the env default lets CI rerun whole suites on the sqlite backend
    abox_backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_ABOX_BACKEND", "memory")
    )
    #: sqlite database path; None = a private in-memory database
    abox_db: Optional[str] = None
    # -- multi-worker serving (repro.serve.workers) ------------------- #
    #: 0 = classic single-process server; N >= 1 = a routing front
    #: process plus N worker processes each holding the snapshot
    workers: int = 0
    #: "auto" | "fork" | "spawn" — how worker processes are created
    worker_start_method: str = "auto"
    #: directory for worker control sockets (None = a tempdir)
    worker_dir: Optional[str] = None
    #: whether *this* process materializes the instance store after a
    #: swap; the multi-worker mode elects one refresh owner per shared
    #: sqlite file so N workers don't re-derive the same rows N times
    instdb_refresh: bool = True


@contextlib.contextmanager
def _responsive_gil():
    """Shrink the GIL switch interval while a snapshot prepares.

    Successor classification runs in a worker thread, but on a machine
    where that thread competes with the event loop for the same core,
    the default 5ms switch interval becomes the floor on query latency
    during every swap — each scheduling quantum the preparer holds
    stalls every in-flight response.  1ms quanta cost the preparation a
    few percent and cut the p99 a request pays while racing a swap by
    roughly the same 5x factor (measured by the B9 mixed bench).  Only
    one preparation runs at a time, so save/restore does not nest.
    """
    previous = sys.getswitchinterval()
    sys.setswitchinterval(min(previous, 0.001))
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


class ReasoningServer:
    """One serving process: snapshot manager + batcher + admission."""

    def __init__(
        self,
        tbox: Optional[TBox] = None,
        config: Optional[ServeConfig] = None,
        *,
        snapshot_manager: Optional[SnapshotManager] = None,
    ) -> None:
        self.config = config or ServeConfig()
        if self.config.follow is not None and self.config.edit_log is None:
            raise ValueError(
                "--follow requires --edit-log: the follower's applied "
                "records and its fencing epoch must both be durable"
            )
        self.editlog: Optional[EditLog] = None
        initial_version = 1
        if self.config.edit_log is not None:
            # recovery-on-start: a directory with prior state wins over
            # the --tbox argument — the boot snapshot must be the last
            # *acknowledged* state, crash or no crash.  A fresh follower
            # starts at version 0 so its first pull (after=0) fetches
            # the primary's base snapshot.
            self.editlog = EditLog.open(
                self.config.edit_log,
                initial=tbox,
                initial_version=0 if self.config.follow is not None else 1,
                rebase_limit=self.config.rebase_limit,
                rebase_max_bytes=self.config.rebase_max_bytes,
                rebase_max_age_s=self.config.rebase_max_age_s,
            )
            tbox = self.editlog.tbox
            initial_version = self.editlog.version
        if snapshot_manager is not None:
            # the multi-worker fork path: a worker process adopts the
            # front's already-classified manager copy-on-write instead
            # of re-classifying at boot
            self.snapshots = snapshot_manager
        else:
            self.snapshots = SnapshotManager(
                tbox,
                max_nodes=self.config.max_nodes,
                store_path=self.config.tbox_store,
                incremental=self.config.incremental_swap,
                max_affected_fraction=self.config.incremental_threshold,
                initial_version=initial_version,
            )
        self.batcher = Batcher(
            window_ms=self.config.batch_window_ms, max_batch=self.config.batch_max
        )
        self.admission = AdmissionController(
            soft_limit=self.config.soft_limit,
            hard_limit=self.config.hard_limit,
            node_allowance=self.config.node_allowance,
            ms_allowance=self.config.ms_allowance,
            retry_after_s=max(0.001, self.config.batch_window_ms / 1000.0),
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self.address: Optional[tuple[str, int]] = None
        # -- replication state -------------------------------------------- #
        self.epochs = EpochStore(self.config.edit_log)
        self._channel: Optional[FollowerChannel] = None
        self._channel_task: Optional[asyncio.Task] = None
        self._fence_task: Optional[asyncio.Task] = None
        if self.config.follow is not None:
            self.epochs.set_role("follower", primary_url=self.config.follow)
            self.admission.refuse_writes("a follower", self.config.follow)
            self._channel = FollowerChannel(
                self.config.follow,
                self.editlog,
                self.epochs,
                on_records=self._on_replicated_records,
                on_base=self._on_replicated_base,
                on_auto_promote=self._auto_promote,
                probe_interval_s=self.config.probe_interval_ms / 1000.0,
                auto_promote_after=self.config.auto_promote_after,
            )
        elif self.epochs.fenced:
            # a resurrected ex-primary: the persisted fence outlives the
            # crash, so it comes back up refusing writes
            self.admission.refuse_writes("fenced", self.epochs.primary_url)
        # -- edit-publication state (all guarded by _swap_lock; the lock
        # is never held across a classification) --------------------- #
        self._swap_lock = asyncio.Lock()
        self._min_interval_s = self.config.min_swap_interval_ms / 1000.0
        self._last_swap = time.monotonic()  # throttle counts from boot
        self._logged_version = self.snapshots.version
        self._pending: Optional[tuple[int, TBox, Optional[EditRecord]]] = None
        self._publishing = False
        self._publisher_task: Optional[asyncio.Task] = None
        self._append_times: dict[int, float] = {}
        # -- instance store (the /v1/instances backend) ---------------- #
        self.instdb = _instdb.open_backend(
            self.config.abox_backend, self.config.abox_db
        )
        #: serializes backend access between the event loop (reads) and
        #: the worker thread a post-swap refresh runs in
        self._instdb_guard = threading.Lock()
        self._instdb_closures: dict[str, frozenset[str]] = {}
        self._instdb_version = 0
        if self.config.instdb_refresh and self.instdb.individual_count():
            # boot-time materialization fails fast: a server that cannot
            # derive over its configured instance store must not come up
            self._instdb_refresh(self.snapshots.current)
        else:
            self._instdb_version = self.snapshots.version

    # -- lifecycle ------------------------------------------------------- #

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        if self._channel is not None:
            self._channel_task = asyncio.create_task(self._channel.run())
        return self.address

    async def stop(self) -> None:
        """Drain admissions, flush the batch queue, close the listener.

        A queued-but-unpublished edit is dropped from memory — it is
        already durable in the edit log, so a restart recovers it.
        """
        self.admission.drain()
        self.batcher.flush_now()
        for attr in ("_channel_task", "_fence_task"):
            task = getattr(self, attr)
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            setattr(self, attr, None)
        if self._channel is not None:
            self._channel.stop()
        if self._publisher_task is not None:
            self._publisher_task.cancel()
            try:
                await self._publisher_task
            except asyncio.CancelledError:
                pass
            self._publisher_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        with self._instdb_guard:
            self.instdb.close()

    async def serve_forever(self) -> None:  # pragma: no cover - CLI path
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling --------------------------------------------- #

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    status, body = error_body(400, str(exc))
                    writer.write(encode_response(status, body, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, body, extra = await self._dispatch(request)
                channel = self._channel
                if channel is not None and not channel.stopped:
                    lag = channel.lag_records()
                    if lag is not None:
                        extra = dict(extra or {})
                        extra["X-Replication-Lag-Records"] = str(lag)
                _obs.incr("serve.requests")
                _obs.incr(f"serve.status.{status}")
                writer.write(
                    encode_response(
                        status,
                        body,
                        keep_alive=request.keep_alive,
                        extra_headers=extra,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            # shutdown cancellation or a client gone mid-write: fall through
            # to the close below so the handler task ends *uncancelled*
            # (asyncio's stream glue logs tasks that die cancelled)
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- routing --------------------------------------------------------- #

    async def _dispatch(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any], Optional[dict[str, str]]]:
        route = (request.method, request.path)
        try:
            if route == ("GET", "/v1/health"):
                return (*self._health(), None)
            if route == ("GET", "/v1/metrics"):
                return (*self._metrics(), None)
            if request.path in _CONTROL_POST:
                # replication control plane: bypasses admission so a
                # drained, overloaded, or write-refusing server can
                # still ship records, be fenced, and be promoted
                if request.method != "POST":
                    return (*error_body(405, f"{request.path} requires POST"), None)
                payload = request.json()
                if request.path == "/v1/repl/pull":
                    return (*await self._repl_pull(payload), None)
                if request.path == "/v1/promote":
                    return (*await self._promote(payload), None)
                return (*self._fence(payload), None)
            if request.path in _UNBATCHED_POST or request.path in _BATCHED_POST:
                if request.method != "POST":
                    return (*error_body(405, f"{request.path} requires POST"), None)
                if request.path != "/v1/tbox":
                    self._check_lag_bound(request)
                return await self._dispatch_post(request)
            return (*error_body(404, f"no route {request.path}"), None)
        except BadRequest as exc:
            return (*error_body(400, str(exc)), None)
        except ParseError as exc:
            return (*error_body(400, f"concept syntax: {exc}"), None)
        except AdmissionError as exc:
            extra = (
                {} if exc.location is None else {"primary": exc.location}
            )
            status, body = error_body(exc.status, str(exc), **extra)
            return status, body, {"Retry-After": f"{exc.retry_after_s:.3f}"}
        except Exception as exc:  # noqa: BLE001 - the loop must survive anything
            _obs.incr("serve.internal_errors")
            return (*error_body(500, f"{type(exc).__name__}: {exc}"), None)

    async def _dispatch_post(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any], Optional[dict[str, str]]]:
        payload = request.json()
        ticket = self.admission.admit(write=request.path == "/v1/tbox")
        snapshot = self.snapshots.acquire()
        try:
            if request.path == "/v1/subsumes":
                general = parse_concept(str(require(payload, "general")))
                specific = parse_concept(str(require(payload, "specific")))
                answer = await self.batcher.submit(
                    KIND_SUBSUMES, snapshot, (general, specific), ticket.budget
                )
                status, body = verdict_body(
                    answer.verdict,
                    source=answer.source,
                    tbox_version=snapshot.version,
                )
                return status, body, None
            if request.path == "/v1/satisfiable":
                concept = parse_concept(str(require(payload, "concept")))
                answer = await self.batcher.submit(
                    KIND_SATISFIABLE, snapshot, (concept,), ticket.budget
                )
                status, body = verdict_body(
                    answer.verdict,
                    source=answer.source,
                    tbox_version=snapshot.version,
                )
                return status, body, None
            if request.path == "/v1/classify":
                return (*self._classify(snapshot), None)
            if request.path == "/v1/instances":
                return (*self._instances(snapshot, payload, ticket.budget), None)
            if request.path == "/v1/critique":
                return (*await self._critique(snapshot, payload), None)
            if request.path == "/v1/tbox":
                return (*await self._swap_tbox(payload), None)
            raise BadRequest(f"unrouted POST {request.path}")  # pragma: no cover
        finally:
            snapshot.release()
            ticket.finish()

    # -- handlers -------------------------------------------------------- #

    def _health(self) -> tuple[int, dict[str, Any]]:
        snapshot = self.snapshots.current
        return 200, {
            "status": "draining" if self.admission.draining else "ok",
            "role": self.epochs.role,
            "replication": self._replication_block(),
            "tbox_version": snapshot.version,
            "logged_version": self._logged_version,
            "pending_swap": self._pending is not None or self._publishing,
            "axioms": len(snapshot.tbox),
            "classify_algorithm": snapshot.classify_algorithm,
            "inflight": self.admission.inflight,
            "pending_batch": self.batcher.pending,
            "instdb": self._instdb_block(),
        }

    def _metrics(self) -> tuple[int, dict[str, Any]]:
        snapshot = self.snapshots.current
        body = {
            "metrics": _obs.get_recorder().snapshot(),
            "serve": {
                "tbox_version": snapshot.version,
                "logged_version": self._logged_version,
                "pending_swap": self._pending is not None or self._publishing,
                "snapshot_chain": self.snapshots.live(),
                "axioms": len(snapshot.tbox),
                "inflight": self.admission.inflight,
                "pending_batch": self.batcher.pending,
                "soft_limit": self.admission.soft_limit,
                "hard_limit": self.admission.hard_limit,
                "reasoner_caches": snapshot.reasoner.cache_stats(),
            },
        }
        if self.editlog is not None:
            body["serve"]["editlog"] = self.editlog.stats()
        body["serve"]["replication"] = self._replication_block()
        body["serve"]["instdb"] = self._instdb_block(full=True)
        return 200, body

    def _instdb_block(self, full: bool = False) -> dict[str, Any]:
        """Instance-store state for /v1/health (cheap) and /v1/metrics."""
        with self._instdb_guard:
            if full:
                block = self.instdb.stats()
            else:
                block = {
                    "backend": self.instdb.kind,
                    "individuals": self.instdb.individual_count(),
                }
        block["materialized_version"] = self._instdb_version
        return block

    def _check_lag_bound(self, request: HttpRequest) -> None:
        """Honor ``X-Max-Replication-Lag-Records``: a client's read floor.

        A follower whose applied log trails the last-seen primary tip by
        more than the client's bound refuses the read with 503 +
        ``Retry-After`` (one probe interval) instead of serving an
        answer staler than the client tolerates.  Before first contact
        the lag is unknown, which also refuses — "unknown" is not
        "fresh".  A primary always passes.
        """
        raw = request.headers.get("x-max-replication-lag-records")
        if raw is None:
            return
        try:
            bound = int(raw.strip())
        except ValueError:
            raise BadRequest(
                "X-Max-Replication-Lag-Records must be an integer, "
                f"got {raw!r}"
            )
        if bound < 0:
            raise BadRequest(
                f"X-Max-Replication-Lag-Records must be >= 0, got {bound}"
            )
        channel = self._channel
        if channel is None or channel.stopped:
            return
        lag = channel.lag_records()
        if lag is None or lag > bound:
            _obs.incr("repl.lag_bounded_rejections")
            raise AdmissionError(
                503,
                f"replication lag {'unknown' if lag is None else lag} "
                f"exceeds client bound {bound} records",
                max(0.001, self.config.probe_interval_ms / 1000.0),
                location=self.epochs.primary_url,
            )

    # -- replication ------------------------------------------------------ #

    @property
    def role(self) -> str:
        return self.epochs.role

    def _own_url(self) -> Optional[str]:
        if self.address is None:
            return None
        return f"http://{self.address[0]}:{self.address[1]}"

    def _replication_block(self) -> dict[str, Any]:
        block = self.epochs.as_dict()
        block["last_applied_version"] = (
            self.editlog.version if self.editlog is not None
            else self.snapshots.version
        )
        channel = self._channel
        if channel is not None and not channel.stopped:
            block["lag_records"] = channel.lag_records()
            block["probe_failures"] = channel.consecutive_failures
        return block

    async def _repl_pull(self, payload: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Ship sealed records (or the base) to a polling follower."""
        if self.editlog is None:
            return error_body(
                503, "replication requires --edit-log on this server"
            )
        after = payload.get("after", 0)
        if not isinstance(after, int) or after < 0:
            raise BadRequest(f"'after' must be a non-negative integer, got {after!r}")
        need_base, records = await asyncio.to_thread(
            self.editlog.read_records, after
        )
        if records:
            _obs.incr("repl.shipped", len(records))
        body: dict[str, Any] = {
            "role": self.epochs.role,
            "epoch": self.epochs.epoch,
            "fenced": self.epochs.fenced,
            "version": self.editlog.version,
            "records": [record.to_json() for record in records],
        }
        if need_base:
            body["base"] = await asyncio.to_thread(self.editlog.base_snapshot)
        return 200, body

    def _fence(self, payload: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Accept (or refuse, 409) a fence from a higher-epoch primary."""
        epoch = payload.get("epoch")
        if not isinstance(epoch, int):
            raise BadRequest(f"'epoch' must be an integer, got {epoch!r}")
        primary = payload.get("primary")
        primary = str(primary) if primary is not None else None
        if not self.epochs.fence(epoch, primary):
            return error_body(
                409,
                f"stale fence: epoch {epoch} <= current {self.epochs.epoch}",
                epoch=self.epochs.epoch,
            )
        # persisted before this point: even a crash right here leaves a
        # server that restarts read-only
        self.admission.refuse_writes("fenced", primary)
        _obs.incr("repl.fences_accepted")
        return 200, {
            "fenced": True,
            "epoch": self.epochs.epoch,
            "role": self.epochs.role,
        }

    async def _promote(self, payload: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Promote this follower to primary (idempotent on a primary)."""
        if self.epochs.fenced:
            # a fenced server's log may be behind the primary that fenced
            # it; promoting it would fork the lineage
            return error_body(
                409,
                f"fenced by epoch {self.epochs.fenced_by}; a fenced server "
                "cannot self-promote",
                epoch=self.epochs.epoch,
            )
        if self.epochs.role == "primary":
            return 200, {
                "promoted": False,
                "role": "primary",
                "epoch": self.epochs.epoch,
                "tbox_version": self.snapshots.version,
            }
        epoch = await self._become_primary()
        return 200, {
            "promoted": True,
            "role": "primary",
            "epoch": epoch,
            "tbox_version": self.snapshots.version,
            "logged_version": self._logged_version,
        }

    async def _auto_promote(self) -> None:
        """The channel's probe-failure path: promote without an operator."""
        _obs.incr("repl.auto_promotions")
        await self._become_primary()

    async def _become_primary(self) -> int:
        """Stop following, bump + persist the fencing epoch, take writes.

        The epoch is durable *before* the first write can be admitted,
        and the old primary is fenced best-effort (retried in the
        background until it acks or the process exits): a resurrected
        ex-primary either receives the fence or stays unreachable —
        either way it never acks a write this server does not subsume.
        """
        channel, self._channel = self._channel, None
        old_primary = self.epochs.primary_url
        if channel is not None:
            channel.stop()
        task = self._channel_task
        self._channel_task = None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        epoch = self.epochs.promote()
        self.admission.allow_writes()
        if self.editlog is not None:
            self._logged_version = self.editlog.version
        _obs.incr("repl.promotions")
        if old_primary is not None:
            self._fence_task = asyncio.create_task(
                self._fence_old_primary(old_primary, epoch)
            )
        return epoch

    async def _fence_old_primary(self, url: str, epoch: int) -> None:
        """Retry the fence until the ex-primary acks it (or we exit)."""
        interval = max(0.05, self.config.probe_interval_ms / 1000.0)
        while True:
            _obs.incr("repl.fence_attempts")
            try:
                status, _ = await post_json(
                    url,
                    "/v1/fence",
                    {"epoch": epoch, "primary": self._own_url()},
                    timeout_s=2.0,
                )
                # 200 = fenced now; 409 = it already holds a higher
                # epoch (it was promoted past us) — either is final
                if status in (200, 409):
                    return
            except Exception:  # noqa: BLE001 - keep retrying
                pass
            await asyncio.sleep(interval)

    async def _on_replicated_records(self, records: list[EditRecord]) -> None:
        """Publish a just-applied batch so the snapshot chain stays warm.

        One publish per poll batch: in steady state a batch is a single
        record whose stored delta drives the incremental reclassify; a
        multi-record catch-up batch publishes once at the batch tip
        (the combined delta is recomputed — still incremental).
        """
        if not records or self.editlog is None:
            return
        version = records[-1].version
        tbox = self.editlog.tbox
        self._logged_version = max(self._logged_version, version)
        record = records[-1] if len(records) == 1 else None
        try:
            with _responsive_gil():
                prepared = await asyncio.to_thread(
                    self.snapshots.prepare, tbox, version=version, record=record
                )
            old = self.snapshots.swap(prepared)
            self._observe_visibility(version)
        except Exception:  # noqa: BLE001 - the channel must survive
            _obs.incr("serve.publish_errors")
            return
        await self._after_publish(old, prepared, record)
        await self._refresh_instdb(prepared)

    async def _on_replicated_base(self, version: int) -> None:
        """Publish a freshly installed base snapshot (full prepare).

        Raises on failure: the installed base already advanced the
        durable log to the primary's tip, so the next pull will never
        re-request it — the channel must keep the publication pending
        and retry it with backoff (``repl.base_install_retries``).
        """
        if self.editlog is None or version <= self.snapshots.version:
            return
        tbox = self.editlog.tbox
        self._logged_version = max(self._logged_version, version)
        try:
            with _responsive_gil():
                prepared = await asyncio.to_thread(
                    self.snapshots.prepare, tbox, version=version
                )
            old = self.snapshots.swap(prepared)
        except Exception:
            _obs.incr("serve.publish_errors")
            raise
        await self._after_publish(old, prepared, None)
        await self._refresh_instdb(prepared)

    def _classify(self, snapshot) -> tuple[int, dict[str, Any]]:
        hierarchy = snapshot.hierarchy
        if hierarchy is None:  # pragma: no cover - retired before release
            hierarchy = snapshot.reasoner.classify()
        body = {
            "tbox_version": snapshot.version,
            "groups": sorted(sorted(g) for g in hierarchy.groups()),
            "parents": {
                group[0]: sorted(hierarchy.parents(group[0]))
                for group in sorted(sorted(g) for g in hierarchy.groups())
            },
            "top_equivalents": sorted(hierarchy.top_equivalents()),
            "unsatisfiable": sorted(hierarchy.equivalents("⊥") - {"⊥"}),
        }
        if hierarchy.incomplete:
            body["incomplete"] = sorted(map(list, hierarchy.incomplete))
            return 206, body
        return 200, body

    def _instances(
        self, snapshot, payload: dict[str, Any], budget: Budget
    ) -> tuple[int, dict[str, Any]]:
        from ..dl.abox import ABox, ConceptAssertion, RoleAssertion
        from ..dl.syntax import Role

        concept = parse_concept(str(require(payload, "concept")))
        if "abox" not in payload:
            # no inline ABox: answer from the server's instance store —
            # atomic concepts push down to an indexed read, no scan
            return self._instances_from_backend(snapshot, payload, concept)
        raw = payload["abox"]
        if not isinstance(raw, dict):
            raise BadRequest("'abox' must be an object")
        assertions: list = []
        for entry in raw.get("concepts", ()):
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise BadRequest(f"abox concept entry {entry!r} is not [ind, concept]")
            assertions.append(
                ConceptAssertion(str(entry[0]), parse_concept(str(entry[1])))
            )
        for entry in raw.get("roles", ()):
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise BadRequest(f"abox role entry {entry!r} is not [s, role, o]")
            assertions.append(
                RoleAssertion(str(entry[0]), str(entry[2]), Role(str(entry[1])))
            )
        abox = ABox(assertions)
        members, non_members, unknown = [], [], {}
        for individual in sorted(abox.individuals()):
            verdict = snapshot.reasoner.is_instance_governed(
                abox, individual, concept, budget.child()
            )
            if verdict.is_unknown:
                unknown[individual] = verdict.reason
            elif verdict.as_bool():
                members.append(individual)
            else:
                non_members.append(individual)
        body = {
            "tbox_version": snapshot.version,
            "members": members,
            "non_members": non_members,
        }
        if unknown:
            body["unknown"] = unknown
            return 206, body
        return 200, body

    def _instances_from_backend(
        self, snapshot, payload: dict[str, Any], concept
    ) -> tuple[int, dict[str, Any]]:
        """Retrieval over the server-resident instance store.

        Unlike the inline-ABox path there is no ``non_members``
        enumeration — at instance-store scale the complement is the
        point of the index.  ``materialized_version`` lets a client
        detect a store still catching up with a just-swapped TBox.
        """
        limit = payload.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise BadRequest(f"'limit' must be a non-negative integer, got {limit!r}")
        with self._instdb_guard:
            members = snapshot.reasoner.retrieve_indexed(
                self.instdb, concept, limit=limit
            )
            materialized = self._instdb_version
        return 200, {
            "tbox_version": snapshot.version,
            "source": "instdb",
            "backend": self.instdb.kind,
            "materialized_version": materialized,
            "members": members,
        }

    # -- instance-store maintenance --------------------------------------- #

    def _instdb_refresh(self, snapshot) -> None:
        """(Re)derive the instance store against ``snapshot`` (blocking)."""
        with self._instdb_guard:
            hierarchy = snapshot.hierarchy
            if hierarchy is None:  # pragma: no cover - swapped-out snapshot
                hierarchy = snapshot.reasoner.classify()
            if self._instdb_closures:
                result = _instdb.refresh(
                    self.instdb,
                    hierarchy,
                    self._instdb_closures,
                    affected=snapshot.reclassify_affected,
                )
            else:
                result = _instdb.materialize(self.instdb, hierarchy)
            self._instdb_closures = result.closures
            self._instdb_version = snapshot.version

    async def _refresh_instdb(self, snapshot) -> None:
        """Post-swap hook: re-derive stored types off the event loop."""
        if not self.config.instdb_refresh or (
            self.instdb.individual_count() == 0 and not self._instdb_closures
        ):
            self._instdb_version = snapshot.version
            return
        try:
            await asyncio.to_thread(self._instdb_refresh, snapshot)
        except Exception:  # noqa: BLE001 - publication must survive
            _obs.incr("instdb.refresh_errors")

    async def _after_publish(self, old, prepared, record) -> None:
        """Hook invoked after every snapshot publication.

        ``old``/``prepared`` are the retired and installed snapshots;
        ``record`` is the edit-log record that produced the publication
        when there was exactly one (None for coalesced publishes, base
        installs, and logless swaps).  The base class does nothing; the
        multi-worker front (:class:`repro.serve.workers.FrontServer`)
        overrides this to ship the delta to every worker.  Must not
        raise — a failed shipment must not fail an already-durable ack.
        """

    async def _critique(
        self, snapshot, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        if "tbox" in payload:
            tbox = parse_tbox(str(payload["tbox"]))
            label = str(payload.get("label", "posted"))
        else:
            tbox = snapshot.tbox
            label = str(payload.get("label", f"tbox-v{snapshot.version}"))
        # the critique builds its own reasoner over a private TBox copy, so
        # it is safe (and worthwhile) to run off the event loop
        report = await asyncio.to_thread(critique, tbox, label=label)
        return 200, {
            "tbox_version": snapshot.version,
            "label": label,
            "defects": len(report.defects()),
            "findings": len(report.findings),
            "report": report.render(),
        }

    async def _swap_tbox(self, payload: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Log-then-publish: ack durability first, swap when allowed.

        The edit is appended to the edit log (when configured) *before*
        the 200 goes out — an acknowledged edit survives any crash.
        Publication is synchronous only when no publication is in
        flight, nothing is queued, and the swap-frequency throttle
        allows; otherwise the edit is queued for the background
        publisher and the response says ``deferred`` (first in the
        queue) or ``coalesced`` (it superseded the queued edit).
        """
        tbox = parse_tbox(str(require(payload, "tbox")))
        record: Optional[EditRecord] = None
        async with self._swap_lock:
            if self.editlog is not None:
                # fsync in a worker thread: the loop keeps serving
                record = await asyncio.to_thread(self.editlog.append, tbox)
                version = record.version
            else:
                version = self._logged_version + 1
            self._logged_version = version
            self._append_times[version] = time.monotonic()
            publish_now = (
                not self._publishing
                and self._pending is None
                and self._throttle_wait() <= 0
            )
            if publish_now:
                self._publishing = True
            else:
                coalesced = self._pending is not None
                self._pending = (version, tbox, record)
        if not publish_now:
            status = "coalesced" if coalesced else "deferred"
            _obs.incr(f"serve.{status}_edits")
            self._kick_publisher()
            return 200, {
                "swap_status": status,
                "tbox_version": version,
                "published_version": self.snapshots.version,
                "axioms": len(tbox),
            }
        try:
            # classification of the successor runs in a worker thread —
            # the event loop keeps answering from the current snapshot;
            # the logged record hands its stored delta to the
            # incremental path (no full-TBox re-diff) when contiguous
            with _responsive_gil():
                prepared = await asyncio.to_thread(
                    self.snapshots.prepare, tbox, version=version, record=record
                )
            old = self.snapshots.swap(prepared)
            # multi-worker front: ship the record while _publishing still
            # holds, so broadcasts reach the workers in version order
            await self._after_publish(old, prepared, record)
        finally:
            async with self._swap_lock:
                self._publishing = False
                self._last_swap = time.monotonic()
        self._observe_visibility(prepared.version)
        await self._refresh_instdb(prepared)
        self._kick_publisher()  # an edit may have queued during prepare
        body = {
            "swap_status": "applied",
            "tbox_version": prepared.version,
            "axioms": len(tbox),
            "retired_version": old.version,
            "retired_refs": old.refs,
            "swap_mode": prepared.swap_mode,
            "delta_from_log": prepared.delta_from_log,
        }
        if prepared.swap_detail is not None:
            body["swap_detail"] = prepared.swap_detail
        return 200, body

    # -- deferred publication -------------------------------------------- #

    def _throttle_wait(self) -> float:
        """Seconds until the swap-frequency throttle allows a publish."""
        return self._min_interval_s - (time.monotonic() - self._last_swap)

    def _observe_visibility(self, published: int) -> None:
        """Credit swap visibility to every edit the publish made live.

        A coalesced edit's own version never publishes, but its content
        is superseded by the version that does — the edit stream is
        visible once the newer version serves, so it is timed against
        that publish.
        """
        now = time.monotonic()
        for version in [v for v in self._append_times if v <= published]:
            elapsed_ms = (now - self._append_times.pop(version)) * 1000.0
            _obs.observe("serve.swap_visibility_ms", elapsed_ms)

    def _kick_publisher(self) -> None:
        if self._pending is None:
            return
        if self._publisher_task is None or self._publisher_task.done():
            self._publisher_task = asyncio.create_task(self._publish_pending())

    async def _publish_pending(self) -> None:
        """Background task: drain the queued edit once the throttle allows."""
        while True:
            async with self._swap_lock:
                if self._pending is None or self._publishing:
                    return
                wait = self._throttle_wait()
                if wait <= 0:
                    version, tbox, record = self._pending
                    self._pending = None
                    self._publishing = True
                else:
                    version = None
            if version is None:
                await asyncio.sleep(wait)
                continue
            try:
                with _responsive_gil():
                    prepared = await asyncio.to_thread(
                        self.snapshots.prepare, tbox, version=version, record=record
                    )
                old = self.snapshots.swap(prepared)
                self._observe_visibility(version)
                await self._after_publish(old, prepared, record)
                await self._refresh_instdb(prepared)
            except Exception:  # noqa: BLE001 - the publisher must survive
                _obs.incr("serve.publish_errors")
            finally:
                async with self._swap_lock:
                    self._publishing = False
                    self._last_swap = time.monotonic()


_BATCHED_POST = frozenset({"/v1/subsumes", "/v1/satisfiable"})
_UNBATCHED_POST = frozenset(
    {"/v1/classify", "/v1/instances", "/v1/critique", "/v1/tbox"}
)
#: replication control plane: admitted outside the load/write policy
_CONTROL_POST = frozenset({"/v1/repl/pull", "/v1/promote", "/v1/fence"})
