"""Request batching: coalesce concurrent checks into one reasoner pass.

Concurrent ``/v1/subsumes`` and ``/v1/satisfiable`` requests are not
independent work: over one TBox snapshot they share a classified
hierarchy, a sat cache, and a subsumption cache.  The batcher holds each
check for a short window (``window_ms``, flushed early at ``max_batch``)
and answers the whole batch from one pass over the shared snapshot:

* **named** questions — both operands atomic names of the snapshot's
  TBox — are answered straight from the pre-classified hierarchy
  (``poset.leq``, zero tableau work): counted in ``serve.batched_hits``;
* duplicate questions inside one batch run once and fan the answer out
  (``serve.dedup_hits``);
* everything else runs governed under the request's budget against the
  snapshot's cached reasoner, whose sat cache is cross-seeded by failed
  subsumption tests exactly as in the one-shot CLI path — so even the
  complex-concept stragglers of a batch help each other.

A batch never mixes snapshot versions: items are grouped by the snapshot
their request acquired at admission, so answers during a hot-swap are
consistent per request (``serve.batch_splits`` counts split flushes).

Counters/histograms: ``serve.batches``, ``serve.batch_size`` (histogram),
``serve.batched_hits``, ``serve.dedup_hits``, ``serve.batch_splits``,
``serve.batch_wait_ms`` (histogram).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from ..dl.hierarchy import BOTTOM_NAME
from ..dl.syntax import Atomic, Concept
from ..obs import recorder as _obs
from ..robust import Budget, Verdict
from .snapshot import Snapshot

#: the two batchable kinds; every other endpoint runs unbatched
KIND_SUBSUMES = "subsumes"
KIND_SATISFIABLE = "satisfiable"


@dataclass
class _Item:
    kind: str
    concepts: tuple[Concept, ...]
    snapshot: Snapshot
    budget: Budget
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.perf_counter)

    @property
    def key(self) -> tuple:
        return (self.kind, self.snapshot.version, self.concepts)


@dataclass(frozen=True)
class BatchAnswer:
    """One resolved check: the verdict plus where the answer came from."""

    verdict: Verdict
    source: str  # "hierarchy" | "tableau"


class Batcher:
    """Time/size-windowed coalescing of subsumption/satisfiability checks."""

    def __init__(self, *, window_ms: float = 5.0, max_batch: int = 64) -> None:
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window_ms = window_ms
        self.max_batch = max_batch
        self._pending: list[_Item] = []
        self._timer: Optional[asyncio.TimerHandle] = None

    # -- submission ------------------------------------------------------ #

    async def submit(
        self,
        kind: str,
        snapshot: Snapshot,
        concepts: tuple[Concept, ...],
        budget: Budget,
    ) -> BatchAnswer:
        """Enqueue one check; resolves when its batch is flushed."""
        if kind not in (KIND_SUBSUMES, KIND_SATISFIABLE):
            raise ValueError(f"unbatchable kind {kind!r}")
        loop = asyncio.get_running_loop()
        item = _Item(kind, concepts, snapshot, budget, loop.create_future())
        self._pending.append(item)
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window_ms / 1000.0, self._flush)
        return await item.future

    def flush_now(self) -> None:
        """Flush whatever is pending (used at drain/shutdown)."""
        self._flush()

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- execution ------------------------------------------------------- #

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        _obs.incr("serve.batches")
        _obs.observe("serve.batch_size", float(len(batch)))
        now = time.perf_counter()
        for item in batch:
            _obs.observe("serve.batch_wait_ms", (now - item.enqueued_at) * 1000.0)

        # one snapshot version per execution group: a flush that straddles
        # a hot-swap answers each request from the version it acquired
        groups: dict[int, list[_Item]] = {}
        for item in batch:
            groups.setdefault(item.snapshot.version, []).append(item)
        if len(groups) > 1:
            _obs.incr("serve.batch_splits")
        for group in groups.values():
            self._execute_group(group)

    def _execute_group(self, group: list[_Item]) -> None:
        by_key: dict[tuple, list[_Item]] = {}
        for item in group:
            by_key.setdefault(item.key, []).append(item)
        for items in by_key.values():
            first = items[0]
            _obs.incr("serve.dedup_hits", len(items) - 1)
            try:
                answer = self._answer(first)
            except Exception as exc:  # pragma: no cover - defensive
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            for item in items:
                if not item.future.done():
                    item.future.set_result(answer)

    def _answer(self, item: _Item) -> BatchAnswer:
        snapshot, reasoner = item.snapshot, item.snapshot.reasoner
        hierarchy = snapshot.hierarchy
        names = _atomic_names(item.concepts)
        if (
            hierarchy is not None
            and hierarchy.complete
            and names is not None
            and all(n in hierarchy.group_of for n in names)
        ):
            _obs.incr("serve.batched_hits")
            if item.kind == KIND_SUBSUMES:
                general, specific = names
                answer = hierarchy.is_subsumed_by(specific, general)
            else:
                (name,) = names
                answer = hierarchy.group_of[name] != BOTTOM_NAME
            return BatchAnswer(Verdict.from_bool(answer), "hierarchy")

        if item.kind == KIND_SUBSUMES:
            general, specific = item.concepts
            verdict = reasoner.subsumes_governed(general, specific, item.budget)
        else:
            (concept,) = item.concepts
            verdict = reasoner.is_satisfiable_governed(concept, item.budget)
        return BatchAnswer(verdict, "tableau")


def _atomic_names(concepts: tuple[Concept, ...]) -> Optional[tuple[str, ...]]:
    """The operand names when every operand is atomic, else ``None``."""
    names = []
    for concept in concepts:
        if not isinstance(concept, Atomic):
            return None
        names.append(concept.name)
    return tuple(names)
