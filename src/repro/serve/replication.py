"""Warm-standby replication: log shipping, fencing epochs, promotion.

A single crash-durable server (PR 6) still means downtime while a
restart replays the log.  This module keeps a **follower** process hot:
it polls the primary for sealed edit-log records over the existing
JSON-over-HTTP protocol, applies them through the incremental-reclassify
publication path so its MVCC snapshot chain stays classified and warm,
and can be **promoted** to primary in milliseconds — no cold rebuild.

Topology and protocol::

    writes ──► primary ──POST /v1/tbox──► edit log ──┐
                  ▲                                   │ POST /v1/repl/pull
                  │ POST /v1/fence (after promotion)  │ {"after": N}
                  │                                   ▼
    reads ◄── follower (read-only, X-Replication-Lag-Records header)

* The follower pulls with its last applied version; the primary answers
  with the sealed records that extend it (:meth:`EditLog.read_records`),
  or a **base snapshot** when compaction has moved the log past the
  follower (:meth:`EditLog.base_snapshot`).
* Every fetched batch passes the :func:`deliver_batches` fault gate
  (``repl-drop`` / ``repl-dup`` / ``repl-truncate`` —
  :mod:`repro.robust.faults`), then :func:`apply_shipped` feeds it
  record-by-record into :meth:`EditLog.append_record`: durable before
  visible, duplicates skipped as stale, gaps rejected loudly.  Follower
  state after ANY fault interleaving plus catch-up therefore equals the
  primary's uninterrupted state (property-tested in
  ``tests/serve/test_replication.py``).

**Split-brain safety** rests on a monotone **fencing epoch** persisted
as ``epoch.json`` in the edit-log directory (:class:`EpochStore`).
Promotion — manual ``POST /v1/promote`` or automatic after N failed
pulls — bumps the epoch above every epoch the follower has seen and
persists it *before* the promoted server acks a write.  The new primary
then fences the old one (``POST /v1/fence`` with the new epoch,
retried until acknowledged): a fenced server persists the fence and
refuses writes with 503 + the new primary's location — even after a
restart, so a resurrected ex-primary can never ack a write its
successor does not have.  A fence carrying a stale (≤ current) epoch is
refused with **409 Conflict**.

Counters: ``repl.shipped``, ``repl.applied``, ``repl.lag_records``
(histogram), ``repl.promotions``, ``repl.fenced_writes``,
``repl.batches_dropped/duplicated/truncated``, ``repl.base_installs``,
``repl.base_publish_failures``, ``repl.base_install_retries``,
``repl.poll_errors``, ``repl.fence_attempts``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from pathlib import Path
from typing import Awaitable, Callable, Optional, Union

from ..obs import recorder as _obs
from ..robust import faults
from ..store import atomic_write_text
from .editlog import EditLog, EditRecord

__all__ = [
    "EpochStore",
    "FollowerChannel",
    "ReplicationError",
    "apply_shipped",
    "deliver_batches",
    "post_json",
]

_EPOCH_NAME = "epoch.json"


class ReplicationError(Exception):
    """The replication channel is unusable (bad URL, bad response, ...)."""


# --------------------------------------------------------------------------- #
# fencing epochs
# --------------------------------------------------------------------------- #


class EpochStore:
    """The fencing epoch, durably bound to one edit-log directory.

    The epoch is a monotone integer totally ordering primaries over one
    log lineage: a server acks writes only while it is unfenced, and a
    fence carrying a *higher* epoch is persisted before it is
    acknowledged — so by the time a promoted follower serves its first
    write, the ex-primary either already refuses writes or has never
    acked anything the new primary lacks.  With no directory the store
    is memory-only (an edit-log-less toy server still gets the
    semantics, just not across restarts).
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.path = (
            Path(directory) / _EPOCH_NAME if directory is not None else None
        )
        self.epoch = 1
        self.role = "primary"
        self.fenced = False
        self.fenced_by: Optional[int] = None
        self.primary_url: Optional[str] = None  # where writes should go
        if self.path is not None and self.path.exists():
            self._load()
        elif self.path is not None:
            self.save()  # a fresh lineage starts at a durable epoch 1

    def _load(self) -> None:
        try:
            row = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReplicationError(f"{self.path}: corrupt epoch file: {exc}")
        self.epoch = int(row.get("epoch", 1))
        self.role = str(row.get("role", "primary"))
        self.fenced = bool(row.get("fenced", False))
        self.fenced_by = row.get("fenced_by")
        self.primary_url = row.get("primary_url")

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.path,
            json.dumps(
                {
                    "epoch": self.epoch,
                    "role": self.role,
                    "fenced": self.fenced,
                    "fenced_by": self.fenced_by,
                    "primary_url": self.primary_url,
                },
                sort_keys=True,
            ),
        )

    def set_role(self, role: str, primary_url: Optional[str] = None) -> None:
        self.role = role
        if primary_url is not None:
            self.primary_url = primary_url
        self.save()

    def observe(self, seen_epoch: int) -> None:
        """Track the highest primary epoch this follower has seen."""
        if seen_epoch > self.epoch:
            self.epoch = seen_epoch
            self.save()

    def promote(self) -> int:
        """Become primary under a fresh epoch higher than any seen.

        Persisted before returning: a crash immediately after promotion
        restarts as the primary it already claimed to be.
        """
        self.epoch += 1
        self.role = "primary"
        self.fenced = False
        self.fenced_by = None
        self.primary_url = None
        self.save()
        return self.epoch

    def fence(self, by_epoch: int, primary_url: Optional[str] = None) -> bool:
        """Accept a fence from a higher epoch; False when it is stale.

        Accepting persists the fence *before* returning — the refusal
        to ack writes must survive a crash-restart of the fenced server.
        """
        if by_epoch <= self.epoch:
            return False
        self.epoch = by_epoch
        self.fenced = True
        self.fenced_by = by_epoch
        if primary_url is not None:
            self.primary_url = primary_url
        self.save()
        return True

    def as_dict(self) -> dict:
        """JSON-ready state for /v1/health and /v1/metrics."""
        return {
            "role": self.role,
            "epoch": self.epoch,
            "fenced": self.fenced,
            "fenced_by": self.fenced_by,
            "primary_url": self.primary_url,
        }


# --------------------------------------------------------------------------- #
# the shipped-batch apply path (shared by the live channel and the tests)
# --------------------------------------------------------------------------- #


def deliver_batches(records: list[EditRecord]) -> list[list[EditRecord]]:
    """The fault gate every fetched batch passes through.

    Returns the batches that actually "arrive": ``repl-drop`` loses the
    whole response, ``repl-truncate`` cuts it to a prefix (the rest is
    re-requested next poll), ``repl-dup`` delivers it twice.  With no
    plan armed this is the identity — one batch, untouched.
    """
    if not records:
        return []
    if faults.should_fire("repl-drop"):
        _obs.incr("repl.batches_dropped")
        return []
    if faults.should_fire("repl-truncate"):
        records = records[: len(records) // 2]
        _obs.incr("repl.batches_truncated")
        if not records:
            return []
    if faults.should_fire("repl-dup"):
        _obs.incr("repl.batches_duplicated")
        return [records, records]
    return [records]


def apply_shipped(
    editlog: EditLog,
    rows: list,
    *,
    on_record: Optional[Callable[[EditRecord], None]] = None,
) -> list[EditRecord]:
    """Apply one pull response's records through the fault gate.

    Decodes the shipped rows (malformed ones are dropped — the next
    poll re-requests from the durable version, so nothing is lost),
    routes them through :func:`deliver_batches`, and feeds each
    surviving record to :meth:`EditLog.append_record`.  Every record is
    durable on the follower's disk before ``on_record`` (the publication
    hook) sees it.  Returns the records that genuinely applied —
    duplicates and stale generations are skipped, a gap raises
    :class:`~repro.serve.editlog.EditLogError`.
    """
    records = [r for r in map(EditRecord.from_json, rows) if r is not None]
    applied: list[EditRecord] = []
    for batch in deliver_batches(records):
        for record in batch:
            if record.version <= editlog.version:
                # cheap pre-check so a duplicated batch does not even
                # reach the log's lock; the log re-checks under it
                _obs.incr("editlog.stale_records_skipped")
                continue
            if editlog.append_record(record):
                _obs.incr("repl.applied")
                applied.append(record)
                if on_record is not None:
                    on_record(record)
    return applied


# --------------------------------------------------------------------------- #
# a minimal asyncio JSON-over-HTTP client (stdlib only, like the server)
# --------------------------------------------------------------------------- #


def parse_url(url: str) -> tuple[str, int]:
    """``http://host:port`` (or bare ``host:port``) → ``(host, port)``."""
    stripped = url.strip()
    for prefix in ("http://", "https://"):
        if stripped.startswith(prefix):
            stripped = stripped[len(prefix):]
            break
    stripped = stripped.rstrip("/")
    host, sep, port = stripped.rpartition(":")
    if not sep or not port.isdigit():
        raise ReplicationError(f"unusable primary URL {url!r}: need host:port")
    return host or "127.0.0.1", int(port)


async def post_json(
    url: str, path: str, payload: dict, *, timeout_s: float = 5.0
) -> tuple[int, dict]:
    """One POST against a peer server; returns ``(status, body)``.

    Opens a fresh connection per call (``Connection: close``): the
    channel polls at human-scale intervals, and a dead peer must fail
    the *next* poll, not poison a kept-alive socket.
    """
    host, port = parse_url(url)

    async def _roundtrip() -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = json.dumps(payload).encode("utf-8")
            head = (
                f"POST {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        header_end = raw.find(b"\r\n\r\n")
        if header_end == -1:
            raise ReplicationError(f"{url}{path}: truncated response")
        head_lines = raw[:header_end].decode("latin-1").split("\r\n")
        parts = head_lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ReplicationError(
                f"{url}{path}: bad status line {head_lines[0]!r}"
            )
        status = int(parts[1])
        try:
            parsed = json.loads(raw[header_end + 4:] or b"{}")
        except json.JSONDecodeError as exc:
            raise ReplicationError(f"{url}{path}: non-JSON body: {exc}")
        return status, parsed if isinstance(parsed, dict) else {}

    return await asyncio.wait_for(_roundtrip(), timeout_s)


# --------------------------------------------------------------------------- #
# the follower's polling channel
# --------------------------------------------------------------------------- #


class FollowerChannel:
    """The follower side: poll, apply, track lag, trigger promotion.

    The channel is owned by a follower-mode :class:`ReasoningServer`.
    Each poll doubles as the primary health probe: a successful pull
    resets the failure streak, and ``auto_promote_after`` consecutive
    failures invoke ``on_auto_promote`` (the server's promotion path).
    Applying records — fsync included — runs in a worker thread so the
    event loop keeps answering read queries while catching up.
    """

    def __init__(
        self,
        primary_url: str,
        editlog: EditLog,
        epochs: EpochStore,
        *,
        on_records: Optional[Callable[[list[EditRecord]], Awaitable[None]]] = None,
        on_base: Optional[Callable[[int], Awaitable[None]]] = None,
        on_auto_promote: Optional[Callable[[], Awaitable[None]]] = None,
        probe_interval_s: float = 0.5,
        auto_promote_after: Optional[int] = None,
        pull_limit: int = 64,
        timeout_s: float = 2.0,
        jitter_seed: Optional[int] = None,
    ) -> None:
        parse_url(primary_url)  # fail fast on an unusable URL
        self.primary_url = primary_url
        self.editlog = editlog
        self.epochs = epochs
        self.on_records = on_records
        self.on_base = on_base
        self.on_auto_promote = on_auto_promote
        self.probe_interval_s = probe_interval_s
        self.auto_promote_after = auto_promote_after
        self.pull_limit = pull_limit
        self.timeout_s = timeout_s
        self.last_primary_version: Optional[int] = None
        self.consecutive_failures = 0
        self.polls = 0
        self.stopped = False
        # -- pending base publication ----------------------------------- #
        # install_base advances the durable log to the primary's tip, so
        # a failed on_base publication is never re-requested by a later
        # pull — it must be retried locally (with backoff) until the
        # snapshot chain catches up with the log.
        self._pending_base: Optional[int] = None
        self._base_backoff_s = 0.0
        self._base_retry_at = 0.0
        # per-channel jitter source: after a primary restart every
        # follower fails its base publication at the same instant, and
        # without jitter their exponential backoffs stay phase-locked —
        # N followers re-hammer the primary in lockstep forever.
        self._jitter = random.Random(jitter_seed)

    def lag_records(self) -> Optional[int]:
        """Records behind the last-seen primary tip; None before contact."""
        if self.last_primary_version is None:
            return None
        return max(0, self.last_primary_version - self.editlog.version)

    @property
    def base_publish_pending(self) -> bool:
        """True while an installed base awaits (re)publication."""
        return self._pending_base is not None

    async def _publish_base(self, version: int) -> None:
        """Run the base-publication hook; arm a backoff retry on failure."""
        if self.on_base is None:
            self._pending_base = None
            return
        try:
            await self.on_base(version)
        except Exception:  # noqa: BLE001 - keep the base pending instead
            _obs.incr("repl.base_publish_failures")
            self._pending_base = version
            self._base_backoff_s = (
                min(self._base_backoff_s * 2, 30.0)
                if self._base_backoff_s
                else max(0.01, self.probe_interval_s)
            )
            # jitter the armed delay by x0.5..x1.5 so followers that all
            # failed together do not retry together (stampede herd)
            delay = self._base_backoff_s * (0.5 + self._jitter.random())
            self._base_retry_at = time.monotonic() + delay
        else:
            self._pending_base = None
            self._base_backoff_s = 0.0

    async def poll_once(self) -> str:
        """One pull-and-apply round; returns ``ok`` / ``unreachable`` /
        ``error``."""
        self.polls += 1
        if (
            self._pending_base is not None
            and time.monotonic() >= self._base_retry_at
        ):
            # publication is purely local work — retry it even while the
            # primary is unreachable
            _obs.incr("repl.base_install_retries")
            await self._publish_base(self._pending_base)
        payload = {"after": self.editlog.version, "epoch": self.epochs.epoch}
        try:
            status, body = await post_json(
                self.primary_url,
                "/v1/repl/pull",
                payload,
                timeout_s=self.timeout_s,
            )
        except (OSError, asyncio.TimeoutError, ReplicationError):
            self.consecutive_failures += 1
            return "unreachable"
        if status != 200:
            _obs.incr("repl.poll_errors")
            self.consecutive_failures += 1
            return "error"
        self.consecutive_failures = 0
        if isinstance(body.get("epoch"), int):
            self.epochs.observe(body["epoch"])
        if isinstance(body.get("version"), int):
            self.last_primary_version = body["version"]

        base = body.get("base")
        if isinstance(base, dict) and isinstance(base.get("version"), int):
            version, text = base["version"], base.get("tbox")
            if isinstance(text, str) and version > self.editlog.version:
                await asyncio.to_thread(
                    self.editlog.install_base, version, text
                )
                _obs.incr("repl.base_installs")
                await self._publish_base(version)

        rows = body.get("records")
        if isinstance(rows, list) and rows:
            applied = await asyncio.to_thread(apply_shipped, self.editlog, rows)
            if applied and self.on_records is not None:
                await self.on_records(applied)
        lag = self.lag_records()
        if lag is not None:
            _obs.observe("repl.lag_records", float(lag))
        return "ok"

    async def run(self) -> None:
        """The poll loop a follower server runs until promoted/stopped."""
        while not self.stopped:
            try:
                outcome = await self.poll_once()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the channel must survive
                _obs.incr("repl.poll_errors")
                self.consecutive_failures += 1
                outcome = "error"
            if (
                outcome != "ok"
                and self.auto_promote_after is not None
                and self.consecutive_failures >= self.auto_promote_after
                and self.on_auto_promote is not None
            ):
                await self.on_auto_promote()
                return
            # catch up as fast as the primary can ship while behind;
            # probe gently once caught up
            lag = self.lag_records()
            if outcome == "ok" and lag is not None and lag > 0:
                continue
            await asyncio.sleep(self.probe_interval_s)

    def stop(self) -> None:
        self.stopped = True
