"""Multi-worker serving: fork-shared snapshots behind a routing front.

``python -m repro serve --workers N`` starts one **front process** — it
owns the listening TCP socket, the edit log, replication, and admission
— plus N **worker processes** that each hold the pre-classified
snapshot and answer the reasoning routes over per-worker Unix-domain
sockets (:mod:`repro.serve.control`).

**Worker creation.** The default (``--worker-start-method fork``, auto
-selected where :func:`os.fork` exists) forks *after* the front has
classified, so the hierarchy, the interned tables, and the reasoner
caches are shared copy-on-write — a worker boots in milliseconds and
costs no re-classification.  The ``spawn`` fallback writes a spec file
(TBox text via :mod:`repro.dl.serialize`, version, config) and launches
``python -m repro serve-worker``; the worker re-classifies at boot,
which the saturation fast path keeps cheap.  Either way the worker
opens its **own** sqlite instance-store connection — inherited sqlite
handles are unsafe across ``fork()`` and the backend's pid guard
(:mod:`repro.instdb.sqlite`) would refuse them.

**Hot swaps** stay cheap at any N: the front appends to the edit log
and reclassifies *once*, then ships the sealed edit record to every
worker over the control channel; each worker replays the record's delta
through its incremental path (:meth:`SnapshotManager.prepare_delta`) —
an axiom-texts apply plus a delta reclassify, never a full-TBox re-diff
or re-classification.  Shipments carry the predecessor version; a
worker whose base doesn't match answers 409 and is restarted (re-forked
from the front's *current* snapshot), so version skew among live
workers is bounded by one pending swap — reported as
``max_version_skew`` in ``/v1/health``.

**Admission and shares.** The front admits against the *unchanged*
server-wide limits, so 429/503 thresholds are identical at N=1 and N>1,
and every worker computes per-request budgets from the same global
``node_allowance``/``soft_limit`` pair, so a query's resource envelope
(and verdict) is N-independent.  The server-wide allowance is split
into per-worker shares (:func:`repro.serve.admission.slice_allowance`)
that the front *enforces in routing*: at most ``share.soft_limit``
requests run on one worker at a time, so one worker can never spend
more than its slice of the allowance concurrently.

**Failure semantics.** A supervisor task reaps dead workers and
restarts them from the current snapshot; in-flight proxied requests
that hit a dying worker are retried on a live sibling (reads only are
proxied, so the retry is safe), and edits are acknowledged only after
the front's durable log append — a worker death loses no acked request
and no acked edit.

Counters: ``workers.started``, ``workers.deaths``, ``workers.restarts``,
``workers.proxied``, ``workers.proxy_retries``,
``workers.proxy_failures``, ``workers.swap_ship_errors``,
``workers.stale_swaps_skipped``, ``workers.forced_resyncs``; the
``workers.swap_broadcast_ms`` histogram times record fan-out.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import traceback
from typing import Any, Optional

from ..dl import parse_tbox
from ..dl.diff import axiom_diff
from ..dl.serialize import tbox_to_text
from ..obs import recorder as _obs
from .admission import AdmissionError, WorkerShare, slice_allowance
from .control import WorkerClient
from .editlog import EditRecord
from .protocol import BadRequest, HttpRequest, error_body
from .server import ReasoningServer, ServeConfig, _responsive_gil
from .snapshot import SnapshotManager

__all__ = [
    "FrontServer",
    "WorkerServer",
    "WorkerSupervisor",
    "WorkerStartError",
    "run_spawn_worker",
]

#: the read routes the front proxies to workers (writes and the control
#: plane stay on the front, which owns the log and replication)
PROXIED_POSTS = frozenset(
    {"/v1/subsumes", "/v1/satisfiable", "/v1/classify", "/v1/instances",
     "/v1/critique"}
)

#: how long the front waits for a routing slot before giving up (503);
#: only reached when every live worker is at its share capacity
SLOT_WAIT_S = 5.0
#: ship timeout per worker per swap — a reclassify can be slow
SWAP_SHIP_TIMEOUT_S = 300.0
#: supervisor death-check cadence
WATCH_INTERVAL_S = 0.2


class WorkerStartError(Exception):
    """A worker process failed to come up (or come back up)."""


# --------------------------------------------------------------------- #
# the worker side
# --------------------------------------------------------------------- #


class WorkerServer(ReasoningServer):
    """One worker process: the full reasoning server over a Unix socket.

    Inherits every data-plane route; adds the control plane the front
    drives (``/v1/ctl/ping``, ``/v1/ctl/swap``, ``/v1/ctl/obs``).  Has
    no edit log, no replication, and no publisher of its own — edits
    arrive only as shipped records.
    """

    def __init__(
        self,
        config: ServeConfig,
        *,
        index: int,
        socket_path: str,
        snapshot_manager: Optional[SnapshotManager] = None,
        tbox=None,
    ) -> None:
        super().__init__(tbox, config, snapshot_manager=snapshot_manager)
        self.index = index
        self.socket_path = socket_path

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_unix_server(
            self._on_connection, path=self.socket_path
        )
        self.address = (self.socket_path, 0)
        return self.address

    async def stop(self) -> None:
        await super().stop()
        with contextlib.suppress(FileNotFoundError, OSError):
            os.unlink(self.socket_path)

    async def _dispatch(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any], Optional[dict[str, str]]]:
        if request.path.startswith("/v1/ctl/"):
            try:
                route = (request.method, request.path)
                if route == ("GET", "/v1/ctl/ping"):
                    return (*self._ctl_ping(), None)
                if route == ("GET", "/v1/ctl/obs"):
                    return 200, {
                        "index": self.index,
                        "pid": os.getpid(),
                        "version": self.snapshots.version,
                        "recorder": _obs.get_recorder().snapshot(samples=True),
                    }, None
                if route == ("POST", "/v1/ctl/swap"):
                    status, body = await self._ctl_swap(request.json())
                    return status, body, None
                return (
                    *error_body(404, f"no control route {request.method} "
                                     f"{request.path}"),
                    None,
                )
            except BadRequest as exc:
                return (*error_body(400, str(exc)), None)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                _obs.incr("serve.internal_errors")
                return (*error_body(500, f"{type(exc).__name__}: {exc}"), None)
        return await super()._dispatch(request)

    def _ctl_ping(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "index": self.index,
            "pid": os.getpid(),
            "version": self.snapshots.version,
            "inflight": self.admission.inflight,
            "axioms": len(self.snapshots.current.tbox),
        }

    async def _ctl_swap(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Apply one shipped edit record through the incremental path."""
        record = EditRecord.from_json(payload.get("record"))
        if record is None:
            raise BadRequest("swap requires a well-formed record")
        base_version = payload.get("base_version")
        async with self._swap_lock:
            current = self.snapshots.version
            if record.version <= current:
                # a restarted worker forked from the already-new
                # snapshot: the in-flight broadcast is old news
                _obs.incr("workers.stale_swaps_skipped")
                return 200, {
                    "applied": False, "reason": "stale", "version": current,
                }
            if isinstance(base_version, int) and base_version != current:
                # the record's delta was computed against a version this
                # worker never held; applying it would corrupt — ask the
                # supervisor for a resync (restart from current) instead
                return 409, {
                    "applied": False, "reason": "out-of-sync",
                    "version": current,
                }
            with _responsive_gil():
                prepared = await asyncio.to_thread(
                    self.snapshots.prepare_delta, record
                )
            self.snapshots.swap(prepared)
            self._logged_version = max(self._logged_version, prepared.version)
        await self._refresh_instdb(prepared)
        return 200, {
            "applied": True,
            "version": prepared.version,
            "swap_mode": prepared.swap_mode,
            "delta_from_log": prepared.delta_from_log,
        }


async def _serve_worker(
    config: ServeConfig,
    manager: SnapshotManager,
    socket_path: str,
    index: int,
    parent_pid: int,
) -> None:
    """Run one worker until SIGTERM or the front process disappears."""
    server = WorkerServer(
        config, index=index, socket_path=socket_path, snapshot_manager=manager
    )
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
        loop.add_signal_handler(signal.SIGTERM, stop.set)

    async def watch_parent() -> None:
        while not stop.is_set():
            await asyncio.sleep(0.5)
            if os.getppid() != parent_pid:
                # orphaned: the front died without cleaning us up
                stop.set()

    watcher = asyncio.create_task(watch_parent())
    try:
        await stop.wait()
    finally:
        watcher.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await watcher
        await server.stop()


def _run_worker_child(
    config: ServeConfig,
    manager: SnapshotManager,
    socket_path: str,
    index: int,
    parent_pid: int,
) -> None:
    """The forked child's entire life; never returns (``os._exit``).

    Fork hygiene, in order: reset inherited signal dispositions, close
    every inherited descriptor above stderr (the front's listener, its
    sqlite handles, its event-loop plumbing), start a *fresh* recorder
    (the inherited one holds the front's boot counters, which would
    double-count in the metrics merge), and build a brand-new event
    loop — the inherited one is unusable after fork.
    """
    status = 1
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        with contextlib.suppress(ValueError, OSError):
            signal.set_wakeup_fd(-1)
        os.closerange(3, 65536)
        if _obs.get_recorder() is not _obs.NULL:
            _obs.set_recorder(_obs.Recorder())
        with contextlib.suppress(AttributeError):
            # the thread-local "a loop is running" marker survives the
            # fork when the parent forked from inside its loop
            asyncio._set_running_loop(None)  # type: ignore[attr-defined]
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.run_until_complete(
            _serve_worker(
                config, manager.fork_clone(), socket_path, index, parent_pid
            )
        )
        status = 0
    except BaseException:  # noqa: BLE001 - last-chance diagnostics
        with contextlib.suppress(BaseException):
            traceback.print_exc()
    finally:
        os._exit(status)


def run_spawn_worker(spec_path: str) -> int:
    """Entry point for ``python -m repro serve-worker --spec FILE``.

    The spawn fallback: no shared address space, so the spec file
    carries everything — the TBox text, the version to boot at, the
    socket path, and the worker's :class:`ServeConfig` as a dict.  The
    worker classifies at boot (cheap via the saturation fast path) and
    then behaves exactly like a forked worker.
    """
    with open(spec_path, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    config = ServeConfig(**spec["config"])
    manager = SnapshotManager(
        parse_tbox(spec["tbox"]),
        max_nodes=config.max_nodes,
        incremental=config.incremental_swap,
        max_affected_fraction=config.incremental_threshold,
        initial_version=int(spec["version"]),
    )
    _obs.set_recorder(_obs.Recorder())
    index = int(spec["index"])
    print(f"worker {index} serving on {spec['socket']}", flush=True)
    asyncio.run(
        _serve_worker(
            config, manager, spec["socket"], index, int(spec["parent_pid"])
        )
    )
    return 0


# --------------------------------------------------------------------- #
# the front side
# --------------------------------------------------------------------- #


@dataclasses.dataclass
class WorkerHandle:
    """The front's view of one worker process."""

    index: int
    share: WorkerShare
    config: ServeConfig
    socket_path: str
    client: WorkerClient
    pid: Optional[int] = None
    popen: Optional[subprocess.Popen] = None
    state: str = "starting"  # "starting" | "up" | "dead"
    version: int = 0
    inflight: int = 0
    restarts: int = 0
    spec_path: Optional[str] = None


class WorkerSupervisor:
    """Creates, watches, restarts, and routes to the worker pool."""

    def __init__(
        self,
        front: "FrontServer",
        config: ServeConfig,
    ) -> None:
        if config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {config.workers}")
        method = config.worker_start_method
        if method == "auto":
            method = "fork" if hasattr(os, "fork") else "spawn"
        if method not in ("fork", "spawn"):
            raise ValueError(
                f"worker_start_method must be auto|fork|spawn, got {method!r}"
            )
        if method == "fork" and not hasattr(os, "fork"):
            raise ValueError("fork start method unavailable on this platform")
        self.front = front
        self.start_method = method
        self._dir_obj: Optional[tempfile.TemporaryDirectory] = None
        if config.worker_dir is None:
            self._dir_obj = tempfile.TemporaryDirectory(prefix="repro-workers-")
            self.worker_dir = self._dir_obj.name
        else:
            self.worker_dir = config.worker_dir
            os.makedirs(self.worker_dir, exist_ok=True)
        shares = slice_allowance(
            soft_limit=config.soft_limit,
            hard_limit=config.hard_limit,
            node_allowance=config.node_allowance,
            workers=config.workers,
        )
        file_backed_instdb = (
            config.abox_backend == "sqlite" and config.abox_db is not None
        )
        self.handles: list[WorkerHandle] = []
        for index, share in enumerate(shares):
            socket_path = os.path.join(self.worker_dir, f"worker-{index}.sock")
            # budgets and refusal thresholds stay *global* in the worker
            # (parity with N=1: same per-request slice, and its limits
            # are a backstop the front's routing never normally hits);
            # the share bounds concurrency at the routing layer instead.
            # N workers sharing one sqlite file elect index 0 as the
            # refresh owner so a swap re-derives rows once, not N times.
            worker_config = dataclasses.replace(
                config,
                workers=0,
                worker_dir=None,
                edit_log=None,
                follow=None,
                auto_promote_after=None,
                tbox_store=None,
                min_swap_interval_ms=0.0,
                instdb_refresh=config.instdb_refresh
                and (index == 0 or not file_backed_instdb),
            )
            self.handles.append(
                WorkerHandle(
                    index=index,
                    share=share,
                    config=worker_config,
                    socket_path=socket_path,
                    client=WorkerClient(socket_path),
                )
            )
        self._watch_task: Optional[asyncio.Task] = None
        self._stopping = False

    # -- lifecycle ----------------------------------------------------- #

    async def start(self) -> None:
        for handle in self.handles:
            self._launch(handle)
        timeout = 30.0 if self.start_method == "fork" else 120.0
        await asyncio.gather(
            *(self._wait_ready(h, timeout) for h in self.handles)
        )
        self._watch_task = asyncio.create_task(self._watch())

    async def stop(self) -> None:
        self._stopping = True
        if self._watch_task is not None:
            self._watch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watch_task
            self._watch_task = None
        for handle in self.handles:
            await handle.client.close()
            handle.state = "dead"
            if handle.pid is not None:
                with contextlib.suppress(ProcessLookupError, OSError):
                    os.kill(handle.pid, signal.SIGTERM)
        deadline = time.monotonic() + 5.0
        for handle in self.handles:
            while self._alive(handle) and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            if self._alive(handle) and handle.pid is not None:
                with contextlib.suppress(ProcessLookupError, OSError):
                    os.kill(handle.pid, signal.SIGKILL)
                while self._alive(handle):
                    await asyncio.sleep(0.02)
        if self._dir_obj is not None:
            with contextlib.suppress(OSError):
                self._dir_obj.cleanup()
            self._dir_obj = None

    def _launch(self, handle: WorkerHandle) -> None:
        handle.state = "starting"
        with contextlib.suppress(FileNotFoundError, OSError):
            os.unlink(handle.socket_path)
        if self.start_method == "fork":
            self._launch_fork(handle)
        else:
            self._launch_spawn(handle)

    def _launch_fork(self, handle: WorkerHandle) -> None:
        manager = self.front.snapshots
        parent_pid = os.getpid()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            _run_worker_child(
                handle.config, manager, handle.socket_path, handle.index,
                parent_pid,
            )
            os._exit(1)  # pragma: no cover - _run_worker_child never returns
        handle.pid = pid
        handle.popen = None
        handle.version = manager.version

    def _launch_spawn(self, handle: WorkerHandle) -> None:
        manager = self.front.snapshots
        spec = {
            "socket": handle.socket_path,
            "index": handle.index,
            "tbox": tbox_to_text(manager.current.tbox),
            "version": manager.version,
            "parent_pid": os.getpid(),
            "config": dataclasses.asdict(handle.config),
        }
        handle.spec_path = os.path.join(
            self.worker_dir, f"worker-{handle.index}.json"
        )
        with open(handle.spec_path, "w", encoding="utf-8") as fh:
            json.dump(spec, fh)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        handle.popen = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve-worker", "--spec",
             handle.spec_path],
            env=env,
        )
        handle.pid = handle.popen.pid
        handle.version = manager.version

    async def _wait_ready(self, handle: WorkerHandle, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if not self._alive(handle):
                raise WorkerStartError(
                    f"worker {handle.index} died during startup"
                )
            try:
                status, body = await handle.client.request_json(
                    "GET", "/v1/ctl/ping", timeout_s=2.0
                )
            except Exception:  # noqa: BLE001 - socket not bound yet
                await asyncio.sleep(0.02)
                continue
            if status == 200:
                handle.version = int(body.get("version", handle.version))
                handle.state = "up"
                _obs.incr("workers.started")
                return
            await asyncio.sleep(0.02)
        raise WorkerStartError(
            f"worker {handle.index} not ready after {timeout_s:.0f}s"
        )

    def _alive(self, handle: WorkerHandle) -> bool:
        if handle.popen is not None:
            return handle.popen.poll() is None
        if handle.pid is None:
            return False
        try:
            done, _ = os.waitpid(handle.pid, os.WNOHANG)
        except ChildProcessError:
            return False
        return done == 0

    async def _watch(self) -> None:
        """Reap dead workers and restart them from the current snapshot."""
        timeout = 30.0 if self.start_method == "fork" else 120.0
        while not self._stopping:
            await asyncio.sleep(WATCH_INTERVAL_S)
            for handle in self.handles:
                if self._stopping or self._alive(handle):
                    continue
                if handle.state != "dead":
                    _obs.incr("workers.deaths")
                handle.state = "dead"
                handle.restarts += 1
                _obs.incr("workers.restarts")
                try:
                    await handle.client.close()
                    handle.client = WorkerClient(handle.socket_path)
                    self._launch(handle)
                    await self._wait_ready(handle, timeout)
                except Exception:  # noqa: BLE001 - retried next tick
                    _obs.incr("workers.restart_failures")
                    handle.state = "dead"

    # -- routing -------------------------------------------------------- #

    async def acquire_slot(
        self, exclude: set[int], timeout_s: float = SLOT_WAIT_S
    ) -> Optional[WorkerHandle]:
        """Reserve a routing slot on the least-loaded eligible worker.

        Enforces the per-worker share: a worker already running
        ``share.soft_limit`` proxied requests is skipped.  When every
        eligible worker is at capacity (e.g. mid worker-restart with the
        survivors saturated) the front briefly *queues* here rather
        than failing the request — the front's own admission has already
        bounded total concurrency at the global limit.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            best: Optional[WorkerHandle] = None
            for handle in self.handles:
                if handle.state != "up" or handle.index in exclude:
                    continue
                if handle.inflight >= handle.share.soft_limit:
                    continue
                if best is None or handle.inflight < best.inflight:
                    best = handle
            if best is not None:
                best.inflight += 1
                return best
            if time.monotonic() >= deadline or self._stopping:
                return None
            await asyncio.sleep(0.002)

    def release_slot(self, handle: WorkerHandle) -> None:
        handle.inflight -= 1

    # -- swap fan-out ---------------------------------------------------- #

    async def broadcast_swap(self, record: EditRecord, base_version: int) -> None:
        """Ship one sealed record to every live worker and await acks.

        Called from inside the front's publish critical section, so
        broadcasts are serialized in version order and a live worker is
        never more than one swap behind.  A worker that fails shipment
        (or reports out-of-sync) is killed and restarted from the
        front's current snapshot — restart *is* resync under fork.
        """
        payload = {"record": record.to_json(), "base_version": base_version}

        async def ship(handle: WorkerHandle) -> None:
            if handle.state != "up":
                return  # its restart will adopt the new snapshot directly
            try:
                status, body = await handle.client.request_json(
                    "POST", "/v1/ctl/swap", payload,
                    timeout_s=SWAP_SHIP_TIMEOUT_S,
                )
            except Exception:  # noqa: BLE001 - death handled by the watcher
                _obs.incr("workers.swap_ship_errors")
                return
            if status == 200 and body.get("applied"):
                handle.version = int(body.get("version", record.version))
            elif status == 200 and body.get("reason") == "stale":
                handle.version = max(
                    handle.version, int(body.get("version", 0))
                )
            else:
                self._force_resync(handle)

        t0 = time.perf_counter()
        await asyncio.gather(*(ship(handle) for handle in self.handles))
        _obs.observe(
            "workers.swap_broadcast_ms", (time.perf_counter() - t0) * 1000.0
        )

    def _force_resync(self, handle: WorkerHandle) -> None:
        _obs.incr("workers.forced_resyncs")
        handle.state = "dead"
        if handle.pid is not None:
            with contextlib.suppress(ProcessLookupError, OSError):
                os.kill(handle.pid, signal.SIGKILL)

    # -- reporting ------------------------------------------------------- #

    def health_block(self) -> dict[str, Any]:
        published = self.front.snapshots.version
        rows = []
        max_skew = 0
        for handle in self.handles:
            if handle.state == "up":
                max_skew = max(max_skew, published - handle.version)
            rows.append(
                {
                    "index": handle.index,
                    "pid": handle.pid,
                    "state": handle.state,
                    "version": handle.version,
                    "inflight": handle.inflight,
                    "restarts": handle.restarts,
                    "soft_share": handle.share.soft_limit,
                    "node_share": handle.share.node_allowance,
                }
            )
        return {
            "count": len(self.handles),
            "start_method": self.start_method,
            "up": sum(1 for h in self.handles if h.state == "up"),
            "restarts": sum(h.restarts for h in self.handles),
            "max_version_skew": max_skew,
            "workers": rows,
        }


class FrontServer(ReasoningServer):
    """The routing front: accept, admission, proxy, swap fan-out.

    Inherits the whole single-process server — edit log, recovery,
    replication, publisher, epochs — and overrides exactly three seams:
    reads are proxied to workers instead of answered locally, every
    snapshot publication additionally ships its record to the pool
    (:meth:`_after_publish`), and health/metrics aggregate the pool.
    """

    def __init__(
        self, tbox=None, config: Optional[ServeConfig] = None
    ) -> None:
        config = config or ServeConfig(workers=1)
        if config.workers < 1:
            raise ValueError("FrontServer requires config.workers >= 1")
        # the front never materializes the instance store itself — the
        # elected refresh-owner worker does; its backend handle is only
        # read for the health block
        super().__init__(
            tbox, dataclasses.replace(config, instdb_refresh=False)
        )
        self.supervisor = WorkerSupervisor(self, config)

    async def start(self) -> tuple[str, int]:
        address = await super().start()
        try:
            await self.supervisor.start()
        except BaseException:
            await self.supervisor.stop()
            await super().stop()
            raise
        return address

    async def stop(self) -> None:
        await self.supervisor.stop()
        await super().stop()

    # -- publication fan-out -------------------------------------------- #

    async def _after_publish(self, old, prepared, record) -> None:
        try:
            rec = record
            if (
                rec is None
                or rec.version != prepared.version
                or rec.version != old.version + 1
            ):
                # no usable log record (logless swap, coalesced publish,
                # catch-up batch, base install): synthesize one that is
                # by construction exactly the old → prepared delta
                rec = EditRecord.from_diff(
                    prepared.version, axiom_diff(old.tbox, prepared.tbox)
                )
            await self.supervisor.broadcast_swap(rec, old.version)
        except Exception:  # noqa: BLE001 - never fail a durable ack
            _obs.incr("workers.publish_ship_errors")

    # -- routing --------------------------------------------------------- #

    async def _dispatch(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any], Optional[dict[str, str]]]:
        if (request.method, request.path) == ("GET", "/v1/metrics"):
            try:
                return (*await self._metrics_aggregate(), None)
            except Exception as exc:  # noqa: BLE001
                _obs.incr("serve.internal_errors")
                return (*error_body(500, f"{type(exc).__name__}: {exc}"), None)
        if request.method == "POST" and request.path in PROXIED_POSTS:
            try:
                self._check_lag_bound(request)
                ticket = self.admission.admit(write=False)
            except BadRequest as exc:
                return (*error_body(400, str(exc)), None)
            except AdmissionError as exc:
                extra = {} if exc.location is None else {"primary": exc.location}
                status, body = error_body(exc.status, str(exc), **extra)
                return status, body, {"Retry-After": f"{exc.retry_after_s:.3f}"}
            try:
                return await self._proxy(request)
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                _obs.incr("serve.internal_errors")
                return (*error_body(500, f"{type(exc).__name__}: {exc}"), None)
            finally:
                ticket.finish()
        return await super()._dispatch(request)

    async def _proxy(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any], Optional[dict[str, str]]]:
        """Relay one read to a worker; retry siblings on transport death.

        Only reads are proxied, so a retry after a mid-request worker
        death is safe — the client sees one answer from whichever
        sibling completed it.
        """
        tried: set[int] = set()
        last_error: Optional[BaseException] = None
        for _ in range(len(self.supervisor.handles) + 1):
            handle = await self.supervisor.acquire_slot(tried)
            if handle is None:
                break
            try:
                status, headers, payload = await handle.client.request(
                    request.method, request.path, request.body
                )
            except Exception as exc:  # noqa: BLE001 - retry a sibling
                last_error = exc
                tried.add(handle.index)
                _obs.incr("workers.proxy_retries")
                continue
            finally:
                self.supervisor.release_slot(handle)
            try:
                body = json.loads(payload) if payload else {}
            except json.JSONDecodeError:
                body = {"error": "malformed worker response"}
                status = 500
            if not isinstance(body, dict):  # pragma: no cover - own server
                body = {"value": body}
            extra = None
            if "retry-after" in headers:
                extra = {"Retry-After": headers["retry-after"]}
            _obs.incr("workers.proxied")
            return status, body, extra
        _obs.incr("workers.proxy_failures")
        detail = f": {last_error}" if last_error is not None else ""
        status, body = error_body(503, f"no worker available{detail}")
        return status, body, {"Retry-After": "0.2"}

    # -- aggregation ------------------------------------------------------ #

    def _health(self) -> tuple[int, dict[str, Any]]:
        status, body = super()._health()
        body["workers"] = self.supervisor.health_block()
        return status, body

    async def _metrics_aggregate(self) -> tuple[int, dict[str, Any]]:
        """``/v1/metrics`` with the recorder merged across the pool.

        The front's recorder (admission, routing, publication) and each
        worker's recorder (batching, reasoning, instdb) are disjoint
        views of the same service; ``Recorder.merge_snapshot`` folds the
        workers' wire-shipped snapshots — including raw sample rings, so
        latency quantiles are pool-wide.
        """
        status, body = self._metrics()
        merged = _obs.Recorder()
        front_recorder = _obs.get_recorder()
        if front_recorder is not _obs.NULL:
            merged.merge(front_recorder)
        rows = await asyncio.gather(
            *(self._fetch_obs(handle) for handle in self.handles_up())
        )
        errors = 0
        for row in rows:
            if row is None:
                errors += 1
            else:
                merged.merge_snapshot(row)
        body["metrics"] = merged.snapshot()
        block = self.supervisor.health_block()
        if errors:
            block["obs_errors"] = errors
        body["serve"]["workers"] = block
        return status, body

    def handles_up(self) -> list[WorkerHandle]:
        return [h for h in self.supervisor.handles if h.state == "up"]

    async def _fetch_obs(
        self, handle: WorkerHandle
    ) -> Optional[dict[str, Any]]:
        try:
            status, body = await handle.client.request_json(
                "GET", "/v1/ctl/obs", timeout_s=5.0
            )
        except Exception:  # noqa: BLE001 - a dying worker just drops out
            return None
        if status != 200:
            return None
        snap = body.get("recorder")
        return snap if isinstance(snap, dict) else None
