"""Versioned, refcounted TBox snapshots with atomic hot-swap.

A serving process must be able to load a new TBox without dropping
traffic.  The scheme here is the classic immutable-snapshot swap:

* a :class:`Snapshot` pairs one (frozen) TBox version with its own
  cached :class:`repro.dl.Reasoner` and pre-classified hierarchy; it is
  never mutated after :meth:`Snapshot.prepare`;
* every request *acquires* the current snapshot on admission and
  *releases* it when its response is written, so the answer — including
  every item of a coalesced batch — comes from exactly one TBox version;
* ``POST /v1/tbox`` builds and pre-classifies the successor **off the
  serving path**, persists its text crash-safely
  (:func:`repro.store.atomic_write_text`), then swaps the manager's
  ``current`` pointer.  In-flight requests finish against the old
  version; when the last of them releases, the retired snapshot drops
  its reasoner caches (:meth:`repro.dl.Reasoner.release`) so superseded
  sat/subsumption entries do not stay memory-resident.

Since the successor usually differs from its predecessor by a handful of
axioms, :meth:`SnapshotManager.prepare` defaults to *incremental*
preparation (:meth:`Snapshot.prepare_from`): the new hierarchy is
reclassified from the old one via :mod:`repro.dl.incremental`, falling
back to a full classification on structural upheaval.  When the edit
arrived through the edit log (or the replication channel), the stored
:class:`~repro.serve.editlog.EditRecord` already carries the delta —
``prepare(..., record=...)`` rehydrates it and hands it straight to the
reclassification instead of re-diffing two full TBoxes, *provided* the
record extends the predecessor directly (coalescing can skip versions,
in which case the record's single-edit delta would be unsound and the
diff is recomputed).  Stored-delta publishes are counted in
``serve.delta_swaps``.

The manager is an **MVCC chain**: at any instant several versions can be
live at once — the current snapshot plus retired predecessors still
pinned by in-flight requests.  :meth:`SnapshotManager.live` enumerates
them for observability, and versions need not be consecutive: when the
serving layer coalesces queued edits, :meth:`SnapshotManager.prepare`
accepts the (edit-log-assigned) version of the newest coalesced edit, so
the published chain can legitimately skip numbers that were logged but
never served.

Counters: ``serve.tbox_swaps``, ``serve.incremental_swaps``,
``serve.full_swaps``, ``serve.snapshots_retired``,
``serve.snapshots_released``.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from ..dl import ConceptHierarchy, Reasoner, TBox
from ..dl.serialize import tbox_to_text
from ..obs import recorder as _obs
from ..store import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..dl.diff import AxiomDelta
    from .editlog import EditRecord


class SnapshotError(Exception):
    """Lifecycle misuse: acquiring a dead snapshot, double-release, ..."""


class Snapshot:
    """One immutable TBox version with its reasoner and hierarchy.

    Refcounting is explicit rather than relying on the garbage
    collector because the point is *promptness*: the test suite asserts
    that a retired version's caches are empty the moment its last
    request finishes, not whenever a collection happens to run.
    """

    def __init__(self, tbox: TBox, version: int, *, max_nodes: int = 2000) -> None:
        self.tbox = tbox
        self.version = version
        self.reasoner = Reasoner(tbox, max_nodes=max_nodes)
        self.hierarchy: Optional[ConceptHierarchy] = None
        #: how this snapshot's hierarchy was obtained: "full" or
        #: "incremental"; when full because an incremental attempt fell
        #: back, ``swap_detail`` carries the reason
        self.swap_mode: str = "full"
        self.swap_detail: Optional[str] = None
        #: True when the hierarchy was reclassified from a stored
        #: edit-record delta rather than a recomputed full-TBox diff
        self.delta_from_log: bool = False
        #: names the reclassification (re)inserted — a sound
        #: overapproximation of every concept whose ancestry could have
        #: changed; None on a from-scratch classification.  The instance
        #: store's refresh uses it to skip untouched told concepts.
        self.reclassify_affected: Optional[frozenset[str]] = None
        self._refs = 0
        self._retired = False
        self._released = False
        self._lock = threading.Lock()

    # -- preparation (off the serving path) ----------------------------- #

    def prepare(self) -> "Snapshot":
        """Pre-classify so serving never pays for the first classification.

        Safe to call from a worker thread: nothing else references this
        snapshot until the manager swaps it in.
        """
        self.hierarchy = self.reasoner.classify()
        return self

    def prepare_from(
        self,
        predecessor: "Snapshot",
        *,
        max_affected_fraction: float = 0.5,
        delta: Optional["AxiomDelta"] = None,
    ) -> "Snapshot":
        """Pre-classify by *reclassifying* the predecessor's hierarchy.

        The delta-driven path of :mod:`repro.dl.incremental`: only
        concepts affected by the edit are re-inserted, unaffected cover
        edges and still-valid reasoner cache entries are carried over.
        Reading the predecessor is safe while it serves traffic — its
        hierarchy is immutable and cache adoption snapshots the dicts.
        ``delta`` (when the caller already holds the edit's delta, e.g.
        from a stored :class:`~repro.serve.editlog.EditRecord`) skips
        the full-TBox re-diff; it MUST describe exactly the
        predecessor→successor edit.  Falls back to :meth:`prepare` when
        the predecessor has no hierarchy left (already released) or it
        is budget-incomplete, and records the outcome in
        :attr:`swap_mode`/:attr:`swap_detail`.
        """
        old = predecessor.hierarchy
        if old is None or old.incomplete:
            self.swap_detail = (
                "predecessor hierarchy unavailable"
                if old is None
                else "predecessor hierarchy incomplete"
            )
            return self.prepare()
        result = self.reasoner.reclassify(
            old, delta=delta, max_affected_fraction=max_affected_fraction
        )
        self.hierarchy = result.hierarchy
        self.swap_mode = result.mode
        self.swap_detail = result.fallback_reason
        # on fallback ``affected`` covers every name, which degrades the
        # instdb refresh prefilter to "recompute all" — still sound
        self.reclassify_affected = result.affected
        if delta is not None:
            self.delta_from_log = True
            _obs.incr("serve.delta_swaps")
        return self

    # -- refcounting ----------------------------------------------------- #

    def acquire(self) -> "Snapshot":
        with self._lock:
            if self._released:
                raise SnapshotError(
                    f"snapshot v{self.version} already fully released"
                )
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            if self._refs <= 0:
                raise SnapshotError(f"snapshot v{self.version} over-released")
            self._refs -= 1
            drop = self._retired and self._refs == 0
            if drop:
                self._released = True
        if drop:
            self._drop_caches()

    def retire(self) -> None:
        """Mark superseded; caches drop once the refcount reaches zero."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
            drop = self._refs == 0
            if drop:
                self._released = True
        _obs.incr("serve.snapshots_retired")
        if drop:
            self._drop_caches()

    def _drop_caches(self) -> None:
        self.reasoner.release()
        self.hierarchy = None
        _obs.incr("serve.snapshots_released")

    # -- inspection ------------------------------------------------------ #

    @property
    def classify_algorithm(self) -> Optional[str]:
        """The resolved classification algorithm behind this version's
        hierarchy ("saturation" on a fully Horn/EL TBox, "enhanced"
        otherwise — including seeded incremental swaps); None once
        released."""
        return None if self.hierarchy is None else self.hierarchy.algorithm

    @property
    def refs(self) -> int:
        return self._refs

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def released(self) -> bool:
        return self._released

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else (
            "retired" if self._retired else "active"
        )
        return f"Snapshot(v{self.version}, refs={self._refs}, {state})"


class SnapshotManager:
    """Owns the ``current`` snapshot pointer and the swap discipline."""

    def __init__(
        self,
        tbox: Optional[TBox] = None,
        *,
        max_nodes: int = 2000,
        store_path: Optional[str | Path] = None,
        incremental: bool = True,
        max_affected_fraction: float = 0.5,
        initial_version: int = 1,
    ) -> None:
        self._max_nodes = max_nodes
        self._store_path = Path(store_path) if store_path is not None else None
        self._incremental = incremental
        self._max_affected_fraction = max_affected_fraction
        self._lock = threading.Lock()
        self._current = Snapshot(
            tbox if tbox is not None else TBox(),
            initial_version,
            max_nodes=max_nodes,
        ).prepare()
        #: every snapshot whose caches may still be resident: the current
        #: one plus retired predecessors pinned by in-flight requests
        self._chain: list[Snapshot] = [self._current]

    @property
    def current(self) -> Snapshot:
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    def acquire(self) -> Snapshot:
        """Acquire the current snapshot for one request.

        The manager lock makes pointer-read + refcount-bump atomic with
        respect to :meth:`swap`, so a request can never acquire a
        snapshot that was already retired with zero refs.
        """
        with self._lock:
            return self._current.acquire()

    def prepare(
        self,
        tbox: TBox,
        *,
        version: Optional[int] = None,
        record: Optional["EditRecord"] = None,
    ) -> Snapshot:
        """Build and pre-classify the successor without swapping it in.

        This is the expensive part; the server runs it in a worker
        thread so the event loop keeps serving from the old version.
        With ``incremental=True`` (the default) the successor is
        reclassified from the current snapshot instead of from scratch,
        falling back to a full classification above the configured
        affected-fraction threshold.

        ``version`` defaults to the successor of the current version;
        pass an explicit (larger) one to publish a coalesced edit under
        its edit-log-assigned version.  ``record`` is the edit-log
        record that produced ``tbox``: when it extends the predecessor
        *directly* (``record.version == predecessor.version + 1``) its
        stored delta is rehydrated and drives the reclassification —
        no full-TBox re-diff.  A record that skipped versions
        (coalescing, base resync, records from before delta-carrying
        publication) is ignored and the diff is computed, which is
        always sound.
        """
        predecessor = self._current
        if version is None:
            version = predecessor.version + 1
        elif version <= predecessor.version:
            raise SnapshotError(
                f"cannot prepare v{version} on top of v{predecessor.version}"
            )
        successor = Snapshot(tbox, version, max_nodes=self._max_nodes)
        if self._incremental:
            delta = None
            if (
                record is not None
                and record.version == predecessor.version + 1
                and record.version == version
            ):
                delta = record.to_delta(predecessor.tbox, tbox)
            return successor.prepare_from(
                predecessor,
                max_affected_fraction=self._max_affected_fraction,
                delta=delta,
            )
        return successor.prepare()

    def fork_clone(self) -> "SnapshotManager":
        """A fresh manager serving this manager's current snapshot.

        Built for the just-forked worker of :mod:`repro.serve.workers`:
        the clone's boot snapshot *shares* the parent's prepared
        hierarchy, reasoner (with its warm caches), and interned tables
        — the whole point of forking after classification, the pages
        stay copy-on-write — but none of the lifecycle state.  The
        clone starts with a clean refcount and a one-element chain, so
        pins held by the parent's in-flight requests at fork time don't
        leak into the child, and ``store_path`` is dropped so N workers
        never race the front for the persisted TBox file.
        """
        current = self._current
        boot = Snapshot(current.tbox, current.version, max_nodes=self._max_nodes)
        # adopt the prepared state instead of re-classifying: Reasoner
        # and ConceptHierarchy are immutable-after-prepare, so sharing
        # them across the fork boundary is exactly the CoW contract
        boot.reasoner = current.reasoner
        boot.hierarchy = current.hierarchy
        boot.swap_mode = current.swap_mode
        boot.swap_detail = current.swap_detail
        clone = SnapshotManager.__new__(SnapshotManager)
        clone._max_nodes = self._max_nodes
        clone._store_path = None
        clone._incremental = self._incremental
        clone._max_affected_fraction = self._max_affected_fraction
        clone._lock = threading.Lock()
        clone._current = boot
        clone._chain = [boot]
        return clone

    def prepare_delta(self, record: "EditRecord") -> Snapshot:
        """Prepare the successor from a shipped edit record alone.

        The multi-worker path: the front process reclassifies once and
        ships each worker the sealed record whose delta is — by the
        front's construction — exactly current → ``record.version``, so
        the worker applies the axiom texts and reclassifies from its
        current snapshot without ever re-diffing full TBoxes.  Unlike
        :meth:`prepare`, the record's version may skip numbers (the
        front coalesces); the caller guarantees the record's base is the
        worker's current version (enforced by the control protocol's
        ``base_version`` check).
        """
        predecessor = self._current
        if record.version <= predecessor.version:
            raise SnapshotError(
                f"stale record: v{record.version} <= current "
                f"v{predecessor.version}"
            )
        tbox = record.apply(predecessor.tbox)
        successor = Snapshot(tbox, record.version, max_nodes=self._max_nodes)
        if self._incremental:
            return successor.prepare_from(
                predecessor,
                max_affected_fraction=self._max_affected_fraction,
                delta=record.to_delta(predecessor.tbox, tbox),
            )
        return successor.prepare()

    def swap(self, prepared: Snapshot) -> Snapshot:
        """Atomically install ``prepared``; retire and return the old one."""
        if prepared.hierarchy is None:
            raise SnapshotError("swap target was not prepared")
        if self._store_path is not None:
            atomic_write_text(self._store_path, tbox_to_text(prepared.tbox))
        with self._lock:
            if prepared.version <= self._current.version:
                raise SnapshotError(
                    f"stale swap: v{prepared.version} <= current "
                    f"v{self._current.version}"
                )
            old, self._current = self._current, prepared
            self._chain.append(prepared)
        old.retire()
        with self._lock:
            self._chain = [s for s in self._chain if not s.released]
        _obs.incr("serve.tbox_swaps")
        _obs.incr(
            "serve.incremental_swaps"
            if prepared.swap_mode == "incremental"
            else "serve.full_swaps"
        )
        return old

    def live(self) -> list[dict]:
        """The MVCC chain: every version whose caches may be resident.

        Pruned of fully released snapshots on each call; the current
        version is always the last entry.
        """
        with self._lock:
            self._chain = [s for s in self._chain if not s.released]
            return [
                {
                    "version": s.version,
                    "refs": s.refs,
                    "retired": s.retired,
                    "algorithm": s.classify_algorithm,
                }
                for s in self._chain
            ]

    def load_and_swap(self, tbox: TBox) -> Snapshot:
        """Convenience: prepare + swap in one (blocking) call."""
        return self.swap(self.prepare(tbox))
