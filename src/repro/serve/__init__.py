"""The serving layer: a batched, budget-governed reasoning service.

Composes the substrate the earlier PRs built — obs counters/timers
(:mod:`repro.obs`), the cached revision-guarded :class:`repro.dl.Reasoner`,
and :mod:`repro.robust` budgets with three-valued verdicts — into a
long-lived asyncio process (``python -m repro serve``) instead of
one-shot CLI invocations that re-parse and re-classify per call:

* :mod:`repro.serve.server` — routes, lifecycle, degradation contract;
* :mod:`repro.serve.batcher` — coalesces concurrent checks over one
  shared snapshot pass (``serve.batched_hits``);
* :mod:`repro.serve.admission` — 429/503 load shedding and per-request
  budget slices of a server-wide allowance;
* :mod:`repro.serve.snapshot` — the MVCC snapshot chain: refcounted,
  hot-swappable TBox versions (in-flight requests finish on the version
  they started on; retired versions drop caches at their last release);
* :mod:`repro.serve.editlog` — the durable append-only edit log with
  replay-on-start crash recovery (acknowledged edits survive SIGKILL);
* :mod:`repro.serve.replication` — warm-standby log shipping: a
  follower pulls sealed records, applies them through the incremental
  publication path, and can be promoted under a persisted fencing
  epoch (split-brain-safe failover);
* :mod:`repro.serve.workers` — the multi-worker mode: a routing
  front process plus N fork-shared (or spawn-loaded) worker processes
  with delta-shipped hot swaps (``--workers N``);
* :mod:`repro.serve.control` — the front↔worker control channel
  (HTTP/1.1 over per-worker Unix sockets);
* :mod:`repro.serve.protocol` — HTTP/1.1 framing and the JSON bodies;
* :mod:`repro.serve.loadgen` — in-process server thread, subprocess
  server, client, closed-loop load generator, and edit-stream driver
  for tests, CI smoke, and the B7/B9/B11 benches.
"""

from .admission import (
    AdmissionController,
    AdmissionError,
    Ticket,
    WorkerShare,
    slice_allowance,
)
from .batcher import BatchAnswer, Batcher
from .editlog import EditLog, EditLogError, EditRecord, Recovery
from .loadgen import (
    EditReport,
    LoadReport,
    ServeClient,
    ServeProcess,
    ServerThread,
    closed_loop,
    edit_stream,
)
from .protocol import BadRequest, HttpRequest, ProtocolError
from .replication import (
    EpochStore,
    FollowerChannel,
    ReplicationError,
    apply_shipped,
    deliver_batches,
)
from .control import WorkerClient, WorkerProtocolError
from .server import ReasoningServer, ServeConfig
from .snapshot import Snapshot, SnapshotError, SnapshotManager
from .workers import (
    FrontServer,
    WorkerServer,
    WorkerStartError,
    WorkerSupervisor,
    run_spawn_worker,
)

__all__ = [
    "ReasoningServer",
    "ServeConfig",
    "Batcher",
    "BatchAnswer",
    "AdmissionController",
    "AdmissionError",
    "Ticket",
    "Snapshot",
    "SnapshotManager",
    "SnapshotError",
    "EditLog",
    "EditLogError",
    "EditRecord",
    "Recovery",
    "HttpRequest",
    "ProtocolError",
    "BadRequest",
    "ServerThread",
    "ServeClient",
    "ServeProcess",
    "LoadReport",
    "EditReport",
    "closed_loop",
    "edit_stream",
    "EpochStore",
    "FollowerChannel",
    "ReplicationError",
    "apply_shipped",
    "deliver_batches",
    "FrontServer",
    "WorkerServer",
    "WorkerSupervisor",
    "WorkerStartError",
    "WorkerShare",
    "slice_allowance",
    "WorkerClient",
    "WorkerProtocolError",
    "run_spawn_worker",
]
