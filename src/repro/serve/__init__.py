"""The serving layer: a batched, budget-governed reasoning service.

Composes the substrate the earlier PRs built — obs counters/timers
(:mod:`repro.obs`), the cached revision-guarded :class:`repro.dl.Reasoner`,
and :mod:`repro.robust` budgets with three-valued verdicts — into a
long-lived asyncio process (``python -m repro serve``) instead of
one-shot CLI invocations that re-parse and re-classify per call:

* :mod:`repro.serve.server` — routes, lifecycle, degradation contract;
* :mod:`repro.serve.batcher` — coalesces concurrent checks over one
  shared snapshot pass (``serve.batched_hits``);
* :mod:`repro.serve.admission` — 429/503 load shedding and per-request
  budget slices of a server-wide allowance;
* :mod:`repro.serve.snapshot` — refcounted, hot-swappable TBox
  snapshots (in-flight requests finish on the version they started on);
* :mod:`repro.serve.protocol` — HTTP/1.1 framing and the JSON bodies;
* :mod:`repro.serve.loadgen` — in-process server thread, client, and
  closed-loop load generator for tests, CI smoke, and the B7 bench.
"""

from .admission import AdmissionController, AdmissionError, Ticket
from .batcher import BatchAnswer, Batcher
from .loadgen import LoadReport, ServeClient, ServerThread, closed_loop
from .protocol import BadRequest, HttpRequest, ProtocolError
from .server import ReasoningServer, ServeConfig
from .snapshot import Snapshot, SnapshotError, SnapshotManager

__all__ = [
    "ReasoningServer",
    "ServeConfig",
    "Batcher",
    "BatchAnswer",
    "AdmissionController",
    "AdmissionError",
    "Ticket",
    "Snapshot",
    "SnapshotManager",
    "SnapshotError",
    "HttpRequest",
    "ProtocolError",
    "BadRequest",
    "ServerThread",
    "ServeClient",
    "LoadReport",
    "closed_loop",
]
