"""The front↔worker control channel: HTTP/1.1 over Unix sockets.

The multi-worker mode (:mod:`repro.serve.workers`) keeps the wire
format of the public API — JSON bodies framed as HTTP/1.1 — but runs it
over per-worker Unix-domain stream sockets, so the front process can
reuse one parser for both planes:

* the **data plane**: query routes (``/v1/subsumes``, ...) proxied
  verbatim to a worker and the worker's response relayed back;
* the **control plane**: worker-only routes under ``/v1/ctl/`` —
  ``ping`` (readiness + version), ``swap`` (apply one shipped edit
  record), ``obs`` (the worker's recorder snapshot for metrics
  aggregation).

:class:`WorkerClient` is the front's side: a small pool of keep-alive
connections per worker, one in-flight request per connection (HTTP/1.1
without pipelining), opened lazily and discarded on any error.  A
request on a connection that fails is *not* retried here — routing owns
retry policy, because only it knows which requests are idempotent and
which other workers are alive.

Counters: ``workers.ctl_requests``, ``workers.ctl_reconnects``,
``workers.ctl_errors``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

from ..obs import recorder as _obs

__all__ = [
    "WorkerProtocolError",
    "WorkerClient",
    "read_response",
]

#: response head larger than this is a protocol violation, not a slow peer
MAX_RESPONSE_HEAD = 16 * 1024
#: response bodies are JSON documents, same ceiling as the public API
MAX_RESPONSE_BODY = 4 * 1024 * 1024


class WorkerProtocolError(Exception):
    """The worker sent something that is not a well-formed response."""


async def read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Read one HTTP/1.1 response: ``(status, headers, body)``.

    Raises :class:`WorkerProtocolError` on malformed framing and
    ``IncompleteReadError``/``ConnectionError`` when the peer vanishes
    mid-response — both mean the connection is poisoned and must be
    discarded.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError as exc:
        raise WorkerProtocolError("response head too large") from exc
    if len(head) > MAX_RESPONSE_HEAD:
        raise WorkerProtocolError("response head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise WorkerProtocolError(f"bad status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise WorkerProtocolError(f"bad status code: {parts[1]!r}") from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise WorkerProtocolError(f"bad header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as exc:
        raise WorkerProtocolError("bad Content-Length") from exc
    if length < 0 or length > MAX_RESPONSE_BODY:
        raise WorkerProtocolError(f"unreasonable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def _encode_request(method: str, path: str, body: Optional[bytes]) -> bytes:
    payload = body or b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: worker\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: keep-alive\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + payload


class WorkerClient:
    """Pooled keep-alive requests to one worker's Unix socket.

    Not thread-safe; lives on the front's event loop.  ``pool_max``
    bounds how many idle connections are retained — bursts above it
    open short-lived extra connections that close after their request.
    """

    def __init__(
        self,
        socket_path: str,
        *,
        timeout_s: float = 60.0,
        pool_max: int = 8,
    ) -> None:
        self.socket_path = socket_path
        self.timeout_s = timeout_s
        self.pool_max = pool_max
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._closed = False

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        *,
        timeout_s: Optional[float] = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request/response exchange; raises on any transport fault.

        A pooled connection that turns out to be stale (the worker
        closed it while idle) is retried once on a fresh connection —
        that retry is safe even for non-idempotent requests because the
        stale close happened *before* the request was received.
        """
        if self._closed:
            raise WorkerProtocolError("client closed")
        timeout = self.timeout_s if timeout_s is None else timeout_s
        _obs.incr("workers.ctl_requests")
        pooled = bool(self._idle)
        reader, writer = (
            self._idle.pop() if pooled else await self._connect(timeout)
        )
        try:
            return await asyncio.wait_for(
                self._exchange(reader, writer, method, path, body), timeout
            )
        except asyncio.TimeoutError:
            # a timeout is not a stale connection — surface it (the
            # worker may be mid-request; the connection is poisoned)
            self._discard(writer)
            _obs.incr("workers.ctl_errors")
            raise
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            self._discard(writer)
            if not pooled:
                _obs.incr("workers.ctl_errors")
                raise
            # stale keep-alive connection: one fresh-connection retry
            _obs.incr("workers.ctl_reconnects")
            reader, writer = await self._connect(timeout)
            try:
                return await asyncio.wait_for(
                    self._exchange(reader, writer, method, path, body), timeout
                )
            except Exception:
                self._discard(writer)
                _obs.incr("workers.ctl_errors")
                raise
        except Exception:
            self._discard(writer)
            _obs.incr("workers.ctl_errors")
            raise

    async def request_json(
        self,
        method: str,
        path: str,
        payload: Optional[dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = None,
    ) -> tuple[int, dict[str, Any]]:
        """:meth:`request` with JSON encoding/decoding on both sides."""
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        status, _, raw = await self.request(
            method, path, body, timeout_s=timeout_s
        )
        if not raw:
            return status, {}
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise WorkerProtocolError(f"non-JSON body from worker: {exc}")
        if not isinstance(decoded, dict):
            raise WorkerProtocolError("worker body is not a JSON object")
        return status, decoded

    async def _exchange(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: Optional[bytes],
    ) -> tuple[int, dict[str, str], bytes]:
        writer.write(_encode_request(method, path, body))
        await writer.drain()
        status, headers, payload = await read_response(reader)
        if (
            self._closed
            or headers.get("connection", "keep-alive").lower() == "close"
            or len(self._idle) >= self.pool_max
        ):
            self._discard(writer)
        else:
            self._idle.append((reader, writer))
        return status, headers, payload

    async def _connect(
        self, timeout: float
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.wait_for(
            asyncio.open_unix_connection(self.socket_path), timeout
        )

    def _discard(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # pragma: no cover - best-effort close
            pass

    async def close(self) -> None:
        """Close every idle connection; in-flight requests finish alone."""
        self._closed = True
        while self._idle:
            _, writer = self._idle.pop()
            self._discard(writer)
