"""Serving harness utilities: in-process server thread, client, load gen.

Three pieces shared by the test suite, the CI smoke script, and the B7
bench — none of them belong in the server proper:

* :class:`ServerThread` — runs a :class:`repro.serve.ReasoningServer`
  on its own event loop in a daemon thread, bound to an ephemeral port;
  a context manager, so tests and benches get a real TCP server with
  deterministic teardown;
* :class:`ServeClient` — a minimal keep-alive JSON client over
  ``http.client`` (stdlib only), one connection per client, safe to use
  from one thread at a time;
* :func:`closed_loop` — a closed-loop load generator: ``concurrency``
  worker threads each drain a shared request list back-to-back (next
  request issued the moment the previous response lands), collecting
  per-request latency and status counts.  Closed-loop is the right
  model for the B7 bench: offered load adapts to service rate, so the
  measured p50/p99 reflect queueing inside the server (batch window,
  admission), not client-side backlog;
* :func:`edit_stream` — the B9 companion: drives a chain of TBox texts
  through ``POST /v1/tbox`` on one connection, recording per-edit ack
  latency and the ``swap_status`` distribution
  (applied/deferred/coalesced), so a mixed bench can measure the edit
  side of the closed loop while :func:`closed_loop` measures queries;
* :class:`ServeProcess` — a **real** ``python -m repro serve`` child
  process (not a thread): the only honest way to exercise ``kill -9``
  crash/failover scenarios, used by the B9/B11 kill phases and the
  recover/failover smoke scripts.  Supports primary and ``--follow``
  follower invocations alike.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import asyncio

from ..dl import TBox
from .server import ReasoningServer, ServeConfig


class ServeHarnessError(Exception):
    """The in-process server failed to start or respond."""


class ServerThread:
    """A live reasoning server on a background thread (context manager).

    >>> from repro.dl import parse_tbox
    >>> with ServerThread(parse_tbox("car [= motorvehicle")) as server:
    ...     status, body = server.request("POST", "/v1/subsumes",
    ...         {"general": "motorvehicle", "specific": "car"})
    >>> status, body["answer"]
    (200, True)
    """

    def __init__(
        self,
        tbox: Optional[TBox] = None,
        config: Optional[ServeConfig] = None,
        *,
        startup_timeout_s: float = 30.0,
    ) -> None:
        # port 0 = ephemeral: parallel test runs cannot collide
        self.config = config or ServeConfig(port=0)
        self.server = ReasoningServer(tbox, self.config)
        self._startup_timeout_s = startup_timeout_s
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    # -- lifecycle ------------------------------------------------------- #

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(self._startup_timeout_s):
            raise ServeHarnessError("server did not start in time")
        if self._failure is not None:
            raise ServeHarnessError(f"server failed to start: {self._failure!r}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=self._startup_timeout_s)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- client access --------------------------------------------------- #

    @property
    def address(self) -> tuple[str, int]:
        if self.server.address is None:
            raise ServeHarnessError("server not started")
        return self.server.address

    def client(self, timeout_s: float = 30.0) -> "ServeClient":
        host, port = self.address
        return ServeClient(host, port, timeout_s=timeout_s)

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict[str, Any]] = None,
        *,
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, Any]]:
        """One-shot convenience request on a fresh connection."""
        with self.client() as client:
            return client.request(method, path, body, headers=headers)


class ServeClient:
    """A persistent keep-alive JSON client for one server."""

    def __init__(self, host: str, port: int, *, timeout_s: float = 30.0) -> None:
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout_s)

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict[str, Any]] = None,
        *,
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, Any]]:
        payload = None if body is None else json.dumps(body)
        sent = {"Content-Type": "application/json"} if payload else {}
        if headers:
            sent.update(headers)
        self._conn.request(method, path, body=payload, headers=sent)
        response = self._conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServeHarnessError(
                f"non-JSON response ({response.status}): {raw[:200]!r}"
            ) from exc
        return response.status, decoded

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ServeProcess:
    """A ``python -m repro serve`` child on an ephemeral port.

    Startup blocks until the child prints its ``http://host:port``
    banner (the recovery and follower banners precede it).  Unlike
    :class:`ServerThread` this is a separate interpreter with its own
    event loop, so ``kill -9`` genuinely destroys in-memory state —
    which is the entire point for crash-recovery and failover tests.

    >>> with ServeProcess(["--edit-log", log_dir]) as primary:        # doctest: +SKIP
    ...     follower = ServeProcess(
    ...         ["--edit-log", f_dir, "--follow", primary.url]
    ...     ).start()
    """

    def __init__(
        self,
        args: Sequence[str],
        *,
        env: Optional[dict[str, str]] = None,
        startup_timeout_s: float = 60.0,
        banner_lines: int = 20,
    ) -> None:
        self.args = list(args)
        self.env = dict(os.environ if env is None else env)
        self.env.setdefault("PYTHONPATH", "src")
        self._startup_timeout_s = startup_timeout_s
        self._banner_lines = banner_lines
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None

    def start(self) -> "ServeProcess":
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *self.args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=self.env,
        )
        for _ in range(self._banner_lines):
            line = self.process.stdout.readline()
            if not line:
                break
            # anchored on the serving banner: a follower also echoes the
            # primary's URL in its "following ..." line
            match = re.search(r"serving .* on http://[\d.]+:(\d+)", line)
            if match:
                self.port = int(match.group(1))
                break
        if self.port is None:
            self.kill()
            raise ServeHarnessError("serve child printed no address banner")
        return self

    @property
    def url(self) -> str:
        if self.port is None:
            raise ServeHarnessError("server not started")
        return f"http://127.0.0.1:{self.port}"

    def client(self, timeout_s: float = 30.0) -> ServeClient:
        if self.port is None:
            raise ServeHarnessError("server not started")
        return ServeClient("127.0.0.1", self.port, timeout_s=timeout_s)

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict[str, Any]] = None,
        *,
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, Any]]:
        """One-shot convenience request on a fresh connection."""
        with self.client() as client:
            return client.request(method, path, body, headers=headers)

    def kill(self) -> None:
        """``SIGKILL``: no flush, no graceful anything — the crash case."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=30)

    def terminate(self, timeout_s: float = 30.0) -> None:
        if self.process is None or self.process.poll() is not None:
            return
        self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            self.process.kill()
            self.process.wait(timeout=timeout_s)

    def __enter__(self) -> "ServeProcess":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.terminate()


# ---------------------------------------------------------------------- #
# closed-loop load generation
# ---------------------------------------------------------------------- #


@dataclass
class LoadReport:
    """What one closed-loop run measured."""

    latencies_ms: list[float] = field(default_factory=list)
    status_counts: dict[int, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.latencies_ms)

    def percentile(self, q: float) -> float:
        """Nearest-rank latency percentile in milliseconds (0 when empty)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def throughput_rps(self) -> float:
        return self.requests / self.wall_time_s if self.wall_time_s > 0 else 0.0


def closed_loop(
    server: ServerThread,
    requests: Sequence[tuple[str, str, Optional[dict[str, Any]]]],
    *,
    concurrency: int = 8,
) -> LoadReport:
    """Drive ``requests`` through ``concurrency`` closed-loop workers.

    Each worker owns one keep-alive connection and pulls the next
    ``(method, path, body)`` tuple the moment its previous response
    arrives.  Transport-level failures are recorded, not raised — a load
    test that dies on its first refused connection measures nothing.
    """
    report = LoadReport()
    lock = threading.Lock()
    queue = list(requests)
    position = 0

    def worker() -> None:
        nonlocal position
        client = server.client()
        try:
            while True:
                with lock:
                    if position >= len(queue):
                        return
                    index = position
                    position += 1
                method, path, body = queue[index]
                t0 = time.perf_counter()
                try:
                    status, _payload = client.request(method, path, body)
                except (OSError, http.client.HTTPException) as exc:
                    with lock:
                        report.errors.append(f"{path}: {type(exc).__name__}: {exc}")
                    continue
                elapsed_ms = (time.perf_counter() - t0) * 1000.0
                with lock:
                    report.latencies_ms.append(elapsed_ms)
                    report.status_counts[status] = (
                        report.status_counts.get(status, 0) + 1
                    )
        finally:
            client.close()

    workers = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(1, concurrency))
    ]
    t0 = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    report.wall_time_s = time.perf_counter() - t0
    return report


# ---------------------------------------------------------------------- #
# edit-stream generation (the B9 mixed bench's write side)
# ---------------------------------------------------------------------- #


@dataclass
class EditReport:
    """What one :func:`edit_stream` run measured."""

    ack_latencies_ms: list[float] = field(default_factory=list)
    swap_statuses: dict[str, int] = field(default_factory=dict)
    acked_versions: list[int] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def edits(self) -> int:
        return len(self.ack_latencies_ms)

    def percentile(self, q: float) -> float:
        """Nearest-rank ack-latency percentile in ms (0 when empty)."""
        if not self.ack_latencies_ms:
            return 0.0
        ordered = sorted(self.ack_latencies_ms)
        rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return ordered[rank]


def edit_stream(
    server: ServerThread,
    tbox_texts: Sequence[str],
    *,
    interval_s: float = 0.0,
) -> EditReport:
    """POST each text to ``/v1/tbox`` in order, ``interval_s`` apart.

    One keep-alive connection, edits issued sequentially — a curation
    stream is a single writer.  Records the ack latency, the reported
    ``swap_status`` (``applied`` for servers predating the field), and
    the acknowledged (logged) version of every 200.  Transport errors
    are recorded, not raised, mirroring :func:`closed_loop`.
    """
    report = EditReport()
    client = server.client()
    t_start = time.perf_counter()
    try:
        for text in tbox_texts:
            t0 = time.perf_counter()
            try:
                status, body = client.request("POST", "/v1/tbox", {"tbox": text})
            except (OSError, http.client.HTTPException) as exc:
                report.errors.append(f"/v1/tbox: {type(exc).__name__}: {exc}")
                continue
            elapsed_ms = (time.perf_counter() - t0) * 1000.0
            if status == 200:
                report.ack_latencies_ms.append(elapsed_ms)
                swap_status = body.get("swap_status", "applied")
                report.swap_statuses[swap_status] = (
                    report.swap_statuses.get(swap_status, 0) + 1
                )
                report.acked_versions.append(int(body["tbox_version"]))
            else:
                report.errors.append(f"/v1/tbox: HTTP {status}")
            if interval_s > 0:
                time.sleep(interval_s)
    finally:
        client.close()
    report.wall_time_s = time.perf_counter() - t_start
    return report
