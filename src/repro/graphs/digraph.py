"""Labeled directed graphs.

The graph substrate underlying the rest of the library: definition graphs
extracted from description-logic TBoxes (``repro.dl.defgraph``), the
definitional-dependency graphs used by the circularity analysis
(``repro.intensional.circularity``), Hasse diagrams of posets
(``repro.order.poset``), and the structural-meaning machinery of the
critique engine all sit on :class:`DiGraph`.

Nodes are arbitrary hashable objects and may carry a *node label*; edges
are directed and may carry *edge labels*.  Between two nodes any number of
distinctly-labeled edges may exist (a labeled multidigraph quotiented by
label equality), which is exactly what a role-labeled definition graph
needs: ``car --size--> small`` and ``car --uses--> small`` are different
edges even though they connect the same nodes.

The implementation is deliberately self-contained (no networkx): the paper
argues that structural claims must be checkable from the artifact alone,
and the same spirit applies to this library's foundations.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping, Optional


class GraphError(Exception):
    """Raised on structurally invalid graph operations."""


class DiGraph:
    """A directed graph with hashable nodes, node labels and edge labels.

    >>> g = DiGraph()
    >>> g.add_edge("car", "motorvehicle", label="isa")
    >>> g.add_edge("car", "small", label="size")
    >>> sorted(g.successors("car"))
    ['motorvehicle', 'small']
    >>> g.edge_labels("car", "small")
    frozenset({'size'})
    """

    def __init__(self) -> None:
        self._node_labels: dict[Hashable, Any] = {}
        # adjacency: u -> v -> frozen-able set of labels on u->v edges
        self._succ: dict[Hashable, dict[Hashable, set[Any]]] = {}
        self._pred: dict[Hashable, dict[Hashable, set[Any]]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_node(self, node: Hashable, label: Any = None) -> None:
        """Add ``node``; if it exists, update its label when one is given."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            self._node_labels[node] = label
        elif label is not None:
            self._node_labels[node] = label

    def add_edge(self, u: Hashable, v: Hashable, label: Any = None) -> None:
        """Add a directed edge ``u -> v`` carrying ``label``.

        Missing endpoints are created (with ``None`` node labels).  Adding
        the same (u, v, label) triple twice is idempotent.
        """
        self.add_node(u)
        self.add_node(v)
        self._succ[u].setdefault(v, set()).add(label)
        self._pred[v].setdefault(u, set()).add(label)

    def remove_edge(self, u: Hashable, v: Hashable, label: Any = None) -> None:
        """Remove the edge ``(u, v, label)``; raise :class:`GraphError` if absent."""
        labels = self._succ.get(u, {}).get(v)
        if not labels or label not in labels:
            raise GraphError(f"no edge {u!r} -> {v!r} with label {label!r}")
        labels.discard(label)
        self._pred[v][u].discard(label)
        if not labels:
            del self._succ[u][v]
            del self._pred[v][u]

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._succ:
            raise GraphError(f"no node {node!r}")
        for v in list(self._succ[node]):
            del self._pred[v][node]
        for u in list(self._pred[node]):
            del self._succ[u][node]
        del self._succ[node]
        del self._pred[node]
        del self._node_labels[node]

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def nodes(self) -> Iterator[Hashable]:
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[Hashable, Hashable, Any]]:
        """Iterate ``(u, v, label)`` triples."""
        for u, targets in self._succ.items():
            for v, labels in targets.items():
                for label in labels:
                    yield (u, v, label)

    def edge_count(self) -> int:
        return sum(len(labels) for targets in self._succ.values() for labels in targets.values())

    def node_label(self, node: Hashable) -> Any:
        if node not in self._node_labels:
            raise GraphError(f"no node {node!r}")
        return self._node_labels[node]

    def set_node_label(self, node: Hashable, label: Any) -> None:
        if node not in self._node_labels:
            raise GraphError(f"no node {node!r}")
        self._node_labels[node] = label

    def has_edge(self, u: Hashable, v: Hashable, label: Any = ...) -> bool:
        """True if an edge ``u -> v`` exists (with ``label``, when given)."""
        labels = self._succ.get(u, {}).get(v)
        if labels is None:
            return False
        if label is ...:
            return True
        return label in labels

    def edge_labels(self, u: Hashable, v: Hashable) -> frozenset:
        """The set of labels on edges ``u -> v`` (empty if none)."""
        return frozenset(self._succ.get(u, {}).get(v, ()))

    def successors(self, node: Hashable) -> Iterator[Hashable]:
        if node not in self._succ:
            raise GraphError(f"no node {node!r}")
        return iter(self._succ[node])

    def predecessors(self, node: Hashable) -> Iterator[Hashable]:
        if node not in self._pred:
            raise GraphError(f"no node {node!r}")
        return iter(self._pred[node])

    def out_edges(self, node: Hashable) -> Iterator[tuple[Hashable, Any]]:
        """Iterate ``(target, label)`` for edges leaving ``node``."""
        for v, labels in self._succ.get(node, {}).items():
            for label in labels:
                yield (v, label)

    def in_edges(self, node: Hashable) -> Iterator[tuple[Hashable, Any]]:
        """Iterate ``(source, label)`` for edges entering ``node``."""
        for u, labels in self._pred.get(node, {}).items():
            for label in labels:
                yield (u, label)

    def out_degree(self, node: Hashable) -> int:
        return sum(len(labels) for labels in self._succ.get(node, {}).values())

    def in_degree(self, node: Hashable) -> int:
        return sum(len(labels) for labels in self._pred.get(node, {}).values())

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def copy(self) -> "DiGraph":
        g = DiGraph()
        for node, label in self._node_labels.items():
            g.add_node(node, label)
        for u, v, label in self.edges():
            g.add_edge(u, v, label)
        return g

    def subgraph(self, nodes: Iterable[Hashable]) -> "DiGraph":
        """The induced subgraph on ``nodes`` (unknown nodes are ignored)."""
        keep = {n for n in nodes if n in self._succ}
        g = DiGraph()
        for n in keep:
            g.add_node(n, self._node_labels[n])
        for u in keep:
            for v, labels in self._succ[u].items():
                if v in keep:
                    for label in labels:
                        g.add_edge(u, v, label)
        return g

    def reversed(self) -> "DiGraph":
        """The graph with every edge direction flipped."""
        g = DiGraph()
        for node, label in self._node_labels.items():
            g.add_node(node, label)
        for u, v, label in self.edges():
            g.add_edge(v, u, label)
        return g

    def relabel_nodes(self, mapping: Mapping[Hashable, Hashable]) -> "DiGraph":
        """A copy with node identities renamed through ``mapping``.

        Nodes absent from ``mapping`` keep their identity.  Raises
        :class:`GraphError` if the mapping merges two nodes.
        """
        image = [mapping.get(n, n) for n in self._succ]
        if len(set(image)) != len(image):
            raise GraphError("relabeling would merge distinct nodes")
        g = DiGraph()
        for node, label in self._node_labels.items():
            g.add_node(mapping.get(node, node), label)
        for u, v, label in self.edges():
            g.add_edge(mapping.get(u, u), mapping.get(v, v), label)
        return g

    def anonymized(self) -> "DiGraph":
        """A copy with all node labels erased.

        This is precisely the move the paper makes between its structures
        (6) and (7): keeping the shape of a definition while discarding the
        names — the diagram "of dots" whose isomorphism class is claimed to
        *be* the structural meaning.
        """
        g = self.copy()
        for node in g.nodes():
            g.set_node_label(node, None)
        return g

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def to_dot(self, name: str = "G") -> str:
        """Render as Graphviz DOT (for documentation and debugging)."""
        lines = [f"digraph {name} {{"]
        for node in self._succ:
            label = self._node_labels[node]
            text = str(node) if label is None else f"{node}\\n[{label}]"
            lines.append(f'  "{node}" [label="{text}"];')
        for u, v, label in self.edges():
            attr = "" if label is None else f' [label="{label}"]'
            lines.append(f'  "{u}" -> "{v}"{attr};')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(nodes={len(self)}, edges={self.edge_count()})"
