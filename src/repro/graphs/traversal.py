"""Graph traversals and structure analysis.

Depth/breadth-first search, reachability, topological sorting, cycle
detection and Tarjan's strongly-connected-components algorithm.  The SCC
machinery is what the critique engine uses to exhibit the circularity of
Guarino's intensional-relation construction (paper §2): the definitional
dependencies *intensional relation → possible world → extensional relation
→ intensional relation* form a strongly connected component of size > 1.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

from .digraph import DiGraph, GraphError


def bfs_order(graph: DiGraph, start: Hashable) -> list[Hashable]:
    """Nodes reachable from ``start`` in breadth-first order."""
    if start not in graph:
        raise GraphError(f"no node {start!r}")
    seen = {start}
    order = [start]
    frontier = [start]
    while frontier:
        nxt: list[Hashable] = []
        for node in frontier:
            for succ in graph.successors(node):
                if succ not in seen:
                    seen.add(succ)
                    order.append(succ)
                    nxt.append(succ)
        frontier = nxt
    return order


def dfs_order(graph: DiGraph, start: Hashable) -> list[Hashable]:
    """Nodes reachable from ``start`` in (preorder) depth-first order."""
    if start not in graph:
        raise GraphError(f"no node {start!r}")
    seen: set[Hashable] = set()
    order: list[Hashable] = []
    stack = [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # push in reverse so iteration order is stable w.r.t. successors()
        stack.extend(reversed(list(graph.successors(node))))
    return order


def reachable_from(graph: DiGraph, start: Hashable) -> frozenset:
    """The set of nodes reachable from ``start`` (including itself)."""
    return frozenset(bfs_order(graph, start))


def shortest_path(graph: DiGraph, start: Hashable, goal: Hashable) -> Optional[list[Hashable]]:
    """A shortest (fewest edges) path from ``start`` to ``goal``, or None."""
    if start not in graph or goal not in graph:
        raise GraphError("endpoints must be graph nodes")
    if start == goal:
        return [start]
    parent: dict[Hashable, Hashable] = {start: start}
    frontier = [start]
    while frontier:
        nxt: list[Hashable] = []
        for node in frontier:
            for succ in graph.successors(node):
                if succ in parent:
                    continue
                parent[succ] = node
                if succ == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                nxt.append(succ)
        frontier = nxt
    return None


def topological_sort(graph: DiGraph) -> list[Hashable]:
    """A topological order of ``graph``; raises :class:`GraphError` on cycles."""
    in_deg = {node: 0 for node in graph.nodes()}
    for _, v, _ in graph.edges():
        in_deg[v] += 1
    ready = [node for node, d in in_deg.items() if d == 0]
    order: list[Hashable] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in set(graph.successors(node)):
            # a labeled multi-edge counts once per label
            in_deg[succ] -= len(graph.edge_labels(node, succ))
            if in_deg[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph):
        raise GraphError("graph has a cycle; no topological order exists")
    return order


def is_acyclic(graph: DiGraph) -> bool:
    """True iff ``graph`` contains no directed cycle."""
    try:
        topological_sort(graph)
    except GraphError:
        return False
    return True


def find_cycle(graph: DiGraph) -> Optional[list[Hashable]]:
    """Some directed cycle as a node list ``[v0, v1, ..., v0]``, or None.

    Self-loops yield ``[v, v]``.  Used by the circularity analysis to
    produce a human-readable witness of a definitional cycle.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph.nodes()}

    for root in list(graph.nodes()):
        if color[root] != WHITE:
            continue
        # iterative DFS carrying the gray path explicitly
        path: list[Hashable] = []
        work: list[tuple[Hashable, Iterator]] = []
        color[root] = GRAY
        path.append(root)
        work.append((root, iter(list(graph.successors(root)))))
        while work:
            node, succs = work[-1]
            advanced = False
            for succ in succs:
                if color[succ] == GRAY:
                    i = path.index(succ)
                    return path[i:] + [succ]
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    path.append(succ)
                    work.append((succ, iter(list(graph.successors(succ)))))
                    advanced = True
                    break
            if not advanced:
                work.pop()
                path.pop()
                color[node] = BLACK
    return None


def strongly_connected_components(graph: DiGraph) -> list[frozenset]:
    """Tarjan's algorithm; components in reverse topological order.

    Iterative formulation (no recursion limit issues on deep graphs).
    """
    index_of: dict[Hashable, int] = {}
    lowlink: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    components: list[frozenset] = []
    counter = 0

    for root in list(graph.nodes()):
        if root in index_of:
            continue
        # each work item: (node, iterator over successors)
        work = [(root, iter(list(graph.successors(root))))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            for succ in succs:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(list(graph.successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return components


def condensation(graph: DiGraph) -> tuple[DiGraph, dict[Hashable, frozenset]]:
    """The DAG of strongly connected components.

    Returns ``(dag, membership)`` where ``dag`` has one node per SCC
    (the frozenset itself) and ``membership`` maps each original node to
    its component.
    """
    comps = strongly_connected_components(graph)
    member: dict[Hashable, frozenset] = {}
    for comp in comps:
        for node in comp:
            member[node] = comp
    dag = DiGraph()
    for comp in comps:
        dag.add_node(comp)
    for u, v, label in graph.edges():
        cu, cv = member[u], member[v]
        if cu != cv:
            dag.add_edge(cu, cv, label)
    return dag, member


def has_path(graph: DiGraph, start: Hashable, goal: Hashable) -> bool:
    """True iff ``goal`` is reachable from ``start``."""
    return shortest_path(graph, start, goal) is not None
