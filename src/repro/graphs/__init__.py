"""Graph substrate: labeled digraphs, traversals, invariants, isomorphism.

Built from scratch so that every structural claim the library makes —
"these two definition graphs are isomorphic", "this dependency graph has a
cycle" — is checkable against code that is itself part of the artifact.
"""

from .digraph import DiGraph, GraphError
from .invariants import (
    degree_profile,
    edge_label_profile,
    wl_certificate,
    wl_colors,
    wl_distinguishes,
)
from .isomorphism import (
    are_isomorphic,
    count_automorphisms,
    find_isomorphism,
    is_isomorphism,
)
from .traversal import (
    bfs_order,
    condensation,
    dfs_order,
    find_cycle,
    has_path,
    is_acyclic,
    reachable_from,
    shortest_path,
    strongly_connected_components,
    topological_sort,
)

__all__ = [
    "DiGraph",
    "GraphError",
    "bfs_order",
    "dfs_order",
    "reachable_from",
    "shortest_path",
    "topological_sort",
    "is_acyclic",
    "find_cycle",
    "strongly_connected_components",
    "condensation",
    "has_path",
    "degree_profile",
    "edge_label_profile",
    "wl_colors",
    "wl_certificate",
    "wl_distinguishes",
    "find_isomorphism",
    "are_isomorphic",
    "is_isomorphism",
    "count_automorphisms",
]
