"""Graph invariants and Weisfeiler–Leman color refinement.

Isomorphism-invariant signatures used both as fast *non*-isomorphism
certificates (a prefilter in front of the exact VF2 search) and as the
canonical "shape" of a definition graph — the paper's structure (7), the
diagram of anonymous dots whose isomorphism class is what a structural
theory of meaning would have to identify with the concept itself.
"""

from __future__ import annotations

from typing import Any, Hashable

from .digraph import DiGraph


def degree_profile(graph: DiGraph) -> tuple:
    """The sorted multiset of (in-degree, out-degree, node label) triples.

    Equal profiles are necessary (not sufficient) for isomorphism.
    """
    profile = sorted(
        (graph.in_degree(n), graph.out_degree(n), _label_key(graph.node_label(n)))
        for n in graph.nodes()
    )
    return tuple(profile)


def edge_label_profile(graph: DiGraph) -> tuple:
    """The sorted multiset of edge labels (isomorphism invariant)."""
    return tuple(sorted(_label_key(label) for _, _, label in graph.edges()))


def _label_key(label: Any) -> str:
    """A total-order key for arbitrary labels (None sorts first)."""
    return "" if label is None else f"{type(label).__name__}:{label!r}"


def wl_colors(graph: DiGraph, rounds: int | None = None) -> dict[Hashable, int]:
    """1-dimensional Weisfeiler–Leman (color refinement) for labeled digraphs.

    Starts from node labels and repeatedly refines each node's color with
    the multiset of (edge label, neighbor color) pairs over *both* outgoing
    and incoming edges, until stable or ``rounds`` iterations.

    Returns the final node → color-id mapping.  Color ids are consistent
    across graphs refined in the same call to :func:`wl_certificate`, and
    within a single call colors are assigned deterministically, so equal
    certificates really mean "WL cannot distinguish these graphs".
    """
    colors = {n: _label_key(graph.node_label(n)) for n in graph.nodes()}
    return _refine({id(graph): graph}, {id(graph): colors}, rounds)[id(graph)]


def _refine(
    graphs: dict[int, DiGraph],
    colorings: dict[int, dict[Hashable, str]],
    rounds: int | None,
) -> dict[int, dict[Hashable, int]]:
    """Refine several graphs under a *shared* color alphabet."""
    total_nodes = sum(len(g) for g in graphs.values())
    max_rounds = rounds if rounds is not None else max(total_nodes, 1)
    current = colorings
    for _ in range(max_rounds):
        signatures: dict[int, dict[Hashable, str]] = {}
        for key, graph in graphs.items():
            colors = current[key]
            sigs: dict[Hashable, str] = {}
            for node in graph.nodes():
                out_part = sorted(
                    f"O|{_label_key(label)}|{colors[v]}" for v, label in graph.out_edges(node)
                )
                in_part = sorted(
                    f"I|{_label_key(label)}|{colors[u]}" for u, label in graph.in_edges(node)
                )
                sigs[node] = colors[node] + "#" + ";".join(out_part) + "#" + ";".join(in_part)
            signatures[key] = sigs
        # compress signatures to short color names, shared across graphs
        alphabet = sorted({s for sigs in signatures.values() for s in sigs.values()})
        rename = {sig: f"c{i}" for i, sig in enumerate(alphabet)}
        refined = {
            key: {node: rename[sig] for node, sig in sigs.items()}
            for key, sigs in signatures.items()
        }
        if all(
            _partition(refined[key]) == _partition(current[key]) for key in graphs
        ):
            current = refined
            break
        current = refined
    # final pass: map the (string) colors onto integers
    final_alphabet = sorted({c for colors in current.values() for c in colors.values()})
    as_int = {c: i for i, c in enumerate(final_alphabet)}
    return {
        key: {node: as_int[c] for node, c in colors.items()} for key, colors in current.items()
    }


def _partition(colors: dict[Hashable, str]) -> frozenset:
    """The partition of nodes induced by a coloring (for stability checks)."""
    groups: dict[str, set] = {}
    for node, color in colors.items():
        groups.setdefault(color, set()).add(node)
    return frozenset(frozenset(g) for g in groups.values())


def wl_certificate(graph: DiGraph, rounds: int | None = None) -> tuple:
    """An isomorphism-invariant certificate: the sorted multiset of WL colors.

    Two isomorphic graphs always get equal certificates; unequal
    certificates therefore *prove* non-isomorphism.  Equal certificates do
    not prove isomorphism (WL-1 is blind to some regular structures), so
    exact checks must fall through to :func:`repro.graphs.isomorphism.find_isomorphism`.
    """
    colors = wl_colors(graph, rounds)
    return tuple(sorted(colors.values()))


def wl_distinguishes(g1: DiGraph, g2: DiGraph, rounds: int | None = None) -> bool:
    """True iff WL refinement proves ``g1`` and ``g2`` non-isomorphic.

    The two graphs are refined under a shared color alphabet so their
    certificates are directly comparable.
    """
    if len(g1) != len(g2) or g1.edge_count() != g2.edge_count():
        return True
    init = {
        1: {n: _label_key(g1.node_label(n)) for n in g1.nodes()},
        2: {n: _label_key(g2.node_label(n)) for n in g2.nodes()},
    }
    refined = _refine({1: g1, 2: g2}, init, rounds)
    hist1 = tuple(sorted(refined[1].values()))
    hist2 = tuple(sorted(refined[2].values()))
    return hist1 != hist2
