"""Exact labeled-digraph isomorphism (VF2-style backtracking search).

This is the engine behind the paper's central semantic argument (§3): if
the meaning of a concept is the *structure* of its definition — the
paper's diagram (7) — then meaning identity is graph isomorphism of
definition graphs, and the vehicle ontonomy (4) and the animal ontonomy
(8) denote the *same* meaning: CAR = DOG.  ``find_isomorphism`` is what
makes that reductio mechanical.

The matcher respects node labels and edge labels: a candidate pair
(n, m) is feasible only when labels agree and the partial mapping remains
edge-consistent in both directions.  A Weisfeiler–Leman prefilter
(:func:`repro.graphs.invariants.wl_distinguishes`) cheaply rejects most
non-isomorphic pairs before the exponential search runs; benchmark B2
ablates exactly this choice.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

from ..obs import recorder as _obs
from .digraph import DiGraph
from .invariants import wl_colors, wl_distinguishes


def find_isomorphism(
    g1: DiGraph,
    g2: DiGraph,
    *,
    respect_node_labels: bool = True,
    use_wl_prefilter: bool = True,
) -> Optional[dict[Hashable, Hashable]]:
    """A label-preserving isomorphism ``g1 -> g2``, or ``None``.

    With ``respect_node_labels=False`` node labels are ignored (only the
    shape and the edge labels must match) — this is the *anonymized*
    comparison of the paper's diagram (7), where "car" and "dog" become
    indistinguishable dots.  Edge labels are always respected; pre-erase
    them on copies if pure shape is wanted.
    """
    if len(g1) != len(g2) or g1.edge_count() != g2.edge_count():
        _obs.incr("graphs.size_rejects")
        return None
    if respect_node_labels and use_wl_prefilter and wl_distinguishes(g1, g2):
        _obs.incr("graphs.wl_prefilter_rejects")
        return None

    _obs.incr("graphs.vf2_searches")
    matcher = _VF2Matcher(g1, g2, respect_node_labels)
    return matcher.search()


def are_isomorphic(g1: DiGraph, g2: DiGraph, *, respect_node_labels: bool = True) -> bool:
    """True iff a label-preserving isomorphism exists (see :func:`find_isomorphism`)."""
    return find_isomorphism(g1, g2, respect_node_labels=respect_node_labels) is not None


def is_isomorphism(g1: DiGraph, g2: DiGraph, mapping: dict) -> bool:
    """Verify that ``mapping`` is a (node-label- and edge-label-preserving)
    isomorphism from ``g1`` onto ``g2``.

    Useful as an independent check of the matcher's output and in
    property-based tests.
    """
    nodes1 = set(g1.nodes())
    if set(mapping.keys()) != nodes1:
        return False
    image = set(mapping.values())
    if image != set(g2.nodes()) or len(image) != len(nodes1):
        return False
    for n in nodes1:
        if g1.node_label(n) != g2.node_label(mapping[n]):
            return False
    count = 0
    for u, v, label in g1.edges():
        if not g2.has_edge(mapping[u], mapping[v], label):
            return False
        count += 1
    return count == g2.edge_count()


class _VF2Matcher:
    """Backtracking state for the VF2-style search."""

    def __init__(self, g1: DiGraph, g2: DiGraph, respect_node_labels: bool) -> None:
        self.g1 = g1
        self.g2 = g2
        self.respect_node_labels = respect_node_labels
        self.core1: dict[Hashable, Hashable] = {}  # g1 node -> g2 node
        self.core2: dict[Hashable, Hashable] = {}  # g2 node -> g1 node
        # candidate ordering: rarest (WL color) first, then high degree —
        # fails fast on hard instances
        colors1 = wl_colors(g1)
        frequency: dict[int, int] = {}
        for color in colors1.values():
            frequency[color] = frequency.get(color, 0) + 1
        self.order1 = sorted(
            g1.nodes(),
            key=lambda n: (
                frequency[colors1[n]],
                -(g1.in_degree(n) + g1.out_degree(n)),
                repr(n),
            ),
        )
        self.nodes2 = list(g2.nodes())

    def search(self) -> Optional[dict[Hashable, Hashable]]:
        if self._match(0):
            return dict(self.core1)
        return None

    def _match(self, depth: int) -> bool:
        _obs.incr("graphs.vf2_match_calls")
        if depth == len(self.order1):
            return True
        n = self.order1[depth]
        for m in self.nodes2:
            if m in self.core2:
                continue
            if self._feasible(n, m):
                self.core1[n] = m
                self.core2[m] = n
                if self._match(depth + 1):
                    return True
                del self.core1[n]
                del self.core2[m]
        return False

    def _feasible(self, n: Hashable, m: Hashable) -> bool:
        g1, g2 = self.g1, self.g2
        if self.respect_node_labels and g1.node_label(n) != g2.node_label(m):
            return False
        if g1.in_degree(n) != g2.in_degree(m) or g1.out_degree(n) != g2.out_degree(m):
            return False
        # self-loops: n maps to m, so their loop labels must agree (n is not
        # in the core yet when it is its own neighbor, so check explicitly)
        if g1.edge_labels(n, n) != g2.edge_labels(m, m):
            return False
        # consistency with the partial mapping, outgoing edges
        for v in g1.successors(n):
            if v in self.core1 and g1.edge_labels(n, v) != g2.edge_labels(m, self.core1[v]):
                return False
        for v in g2.successors(m):
            if v in self.core2 and g2.edge_labels(m, v) != g1.edge_labels(n, self.core2[v]):
                return False
        # incoming edges
        for u in g1.predecessors(n):
            if u in self.core1 and g1.edge_labels(u, n) != g2.edge_labels(self.core1[u], m):
                return False
        for u in g2.predecessors(m):
            if u in self.core2 and g2.edge_labels(u, m) != g1.edge_labels(self.core2[u], n):
                return False
        return True


def count_automorphisms(graph: DiGraph, *, respect_node_labels: bool = True, limit: int = 10_000) -> int:
    """The number of label-preserving automorphisms (up to ``limit``).

    An anonymized definition graph with many automorphisms carries little
    differential structure — one quantitative face of the paper's regress
    argument: symmetric "meanings" cannot tell their own parts apart.
    """
    matcher = _VF2Matcher(graph, graph, respect_node_labels)
    count = 0

    def backtrack(depth: int) -> None:
        nonlocal count
        if count >= limit:
            return
        if depth == len(matcher.order1):
            count += 1
            return
        n = matcher.order1[depth]
        for m in matcher.nodes2:
            if m in matcher.core2:
                continue
            if matcher._feasible(n, m):
                matcher.core1[n] = m
                matcher.core2[m] = n
                backtrack(depth + 1)
                del matcher.core1[n]
                del matcher.core2[m]

    backtrack(0)
    return count
