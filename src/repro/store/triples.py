"""An indexed triple store.

The information-system substrate the paper's ontonomies are supposed to
serve (the venue is EDBT): facts as (subject, predicate, object) triples,
with the three classic permutation indexes — SPO, POS, OSP — so that any
pattern with at least one bound position is answered without a scan.
Benchmark B3 ablates the indexes (``use_indexes=False`` falls back to
full scans over one set).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Optional

from ..obs import recorder as _obs


class StoreError(Exception):
    """Raised on malformed triples or store misuse."""


@dataclass(frozen=True)
class Triple:
    """A fact ``(subject, predicate, object)``."""

    subject: Hashable
    predicate: Hashable
    object: Hashable

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"


class TripleStore:
    """A set of triples with SPO/POS/OSP permutation indexes.

    >>> store = TripleStore()
    >>> store.add("herbie", "type", "car")
    >>> store.add("herbie", "size", "small")
    >>> sorted(o for _, _, o in store.triples(subject="herbie"))
    ['car', 'small']
    """

    def __init__(self, *, use_indexes: bool = True) -> None:
        self.use_indexes = use_indexes
        self._all: set[Triple] = set()
        self._spo: dict[Hashable, dict[Hashable, set[Hashable]]] = {}
        self._pos: dict[Hashable, dict[Hashable, set[Hashable]]] = {}
        self._osp: dict[Hashable, dict[Hashable, set[Hashable]]] = {}
        self._provenance: dict[Triple, str] = {}
        self._txn_log: Optional[list] = None

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(
        self,
        subject: Hashable,
        predicate: Hashable,
        object: Hashable,
        *,
        provenance: Optional[str] = None,
    ) -> None:
        """Insert a triple (idempotent).

        ``provenance`` optionally tags the fact's origin ("told",
        "inferred", a source name, ...).  By default facts carry no tag —
        which is exactly the paper's §4 situation: once materialized, an
        inference is indistinguishable from data.  Re-adding an existing
        triple with a provenance updates the tag.
        """
        triple = Triple(subject, predicate, object)
        if triple in self._all:
            if provenance is not None:
                if self._txn_log is not None:
                    self._txn_log.append(
                        ("retag", triple, self._provenance.get(triple))
                    )
                self._provenance[triple] = provenance
            return
        if self._txn_log is not None:
            self._txn_log.append(("added", triple, None))
        if provenance is not None:
            self._provenance[triple] = provenance
        self._all.add(triple)
        self._spo.setdefault(subject, {}).setdefault(predicate, set()).add(object)
        self._pos.setdefault(predicate, {}).setdefault(object, set()).add(subject)
        self._osp.setdefault(object, {}).setdefault(subject, set()).add(predicate)

    def add_triple(self, triple: Triple) -> None:
        self.add(triple.subject, triple.predicate, triple.object)

    def remove(self, subject: Hashable, predicate: Hashable, object: Hashable) -> None:
        """Delete a triple; raise :class:`StoreError` if absent."""
        triple = Triple(subject, predicate, object)
        if triple not in self._all:
            raise StoreError(f"no triple {triple}")
        if self._txn_log is not None:
            self._txn_log.append(
                ("removed", triple, self._provenance.get(triple))
            )
        self._all.discard(triple)
        self._provenance.pop(triple, None)
        self._spo[subject][predicate].discard(object)
        if not self._spo[subject][predicate]:
            del self._spo[subject][predicate]
            if not self._spo[subject]:
                del self._spo[subject]
        self._pos[predicate][object].discard(subject)
        if not self._pos[predicate][object]:
            del self._pos[predicate][object]
            if not self._pos[predicate]:
                del self._pos[predicate]
        self._osp[object][subject].discard(predicate)
        if not self._osp[object][subject]:
            del self._osp[object][subject]
            if not self._osp[object]:
                del self._osp[object]

    def update(self, triples: Iterable[tuple]) -> None:
        """Bulk insert of (s, p, o) tuples."""
        for s, p, o in triples:
            self.add(s, p, o)

    def delete_matching(
        self,
        subject: Optional[Hashable] = None,
        predicate: Optional[Hashable] = None,
        object: Optional[Hashable] = None,
    ) -> int:
        """Remove every triple matching the pattern; returns the count.

        Transaction-aware: inside :meth:`transaction` the deletions roll
        back with everything else.
        """
        victims = list(self.triples(subject, predicate, object))
        for triple in victims:
            self.remove(triple.subject, triple.predicate, triple.object)
        return len(victims)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._all)

    def __contains__(self, triple: tuple) -> bool:
        s, p, o = triple
        return Triple(s, p, o) in self._all

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._all)

    def triples(
        self,
        subject: Optional[Hashable] = None,
        predicate: Optional[Hashable] = None,
        object: Optional[Hashable] = None,
    ) -> Iterator[Triple]:
        """All triples matching the pattern (``None`` = wildcard).

        Uses the index whose leading positions are bound; with
        ``use_indexes=False`` every pattern is a full scan (the ablation
        baseline of benchmark B3).
        """
        if not self.use_indexes:
            _obs.incr("store.scan_lookups")
            yield from self._scan(subject, predicate, object)
            return

        s, p, o = subject, predicate, object
        if s is None and p is None and o is None:
            _obs.incr("store.full_enumerations")
        else:
            _obs.incr("store.index_lookups")
        if s is not None:
            by_pred = self._spo.get(s, {})
            preds = [p] if p is not None else list(by_pred)
            for pred in preds:
                for obj in by_pred.get(pred, ()):
                    if o is None or obj == o:
                        yield Triple(s, pred, obj)
        elif p is not None:
            by_obj = self._pos.get(p, {})
            objs = [o] if o is not None else list(by_obj)
            for obj in objs:
                for subj in by_obj.get(obj, ()):
                    yield Triple(subj, p, obj)
        elif o is not None:
            by_subj = self._osp.get(o, {})
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield Triple(subj, pred, o)
        else:
            yield from self._all

    def _scan(self, s, p, o) -> Iterator[Triple]:
        for triple in self._all:
            if s is not None and triple.subject != s:
                continue
            if p is not None and triple.predicate != p:
                continue
            if o is not None and triple.object != o:
                continue
            yield triple

    def count(self, subject=None, predicate=None, object=None) -> int:
        return sum(1 for _ in self.triples(subject, predicate, object))

    def estimate(
        self,
        subject: Optional[Hashable] = None,
        predicate: Optional[Hashable] = None,
        object: Optional[Hashable] = None,
    ) -> int:
        """A cheap upper bound on the result size of a pattern.

        The classic min-of-bound-position-cardinalities estimate, read off
        the index tops in O(1)-ish time (no triples are enumerated).  The
        query engine orders join patterns by it; benchmark B3 ablates the
        choice against naive most-bound-first ordering.
        """
        _obs.incr("store.estimates")
        bounds = []
        if subject is not None:
            by_pred = self._spo.get(subject)
            if by_pred is None:
                return 0
            if predicate is not None:
                objs = by_pred.get(predicate)
                if objs is None:
                    return 0
                bounds.append(len(objs))
            else:
                bounds.append(sum(len(o) for o in by_pred.values()))
        if predicate is not None and subject is None:
            by_obj = self._pos.get(predicate)
            if by_obj is None:
                return 0
            if object is not None:
                subjects = by_obj.get(object)
                if subjects is None:
                    return 0
                bounds.append(len(subjects))
            else:
                bounds.append(sum(len(s) for s in by_obj.values()))
        if object is not None and predicate is None:
            by_subj = self._osp.get(object)
            if by_subj is None:
                return 0
            bounds.append(sum(len(p) for p in by_subj.values()))
        if not bounds:
            return len(self._all)
        return min(bounds)

    def subjects(self) -> frozenset:
        return frozenset(t.subject for t in self._all)

    def predicates(self) -> frozenset:
        return frozenset(t.predicate for t in self._all)

    def objects(self) -> frozenset:
        return frozenset(t.object for t in self._all)

    @contextmanager
    def transaction(self):
        """All-or-nothing mutation: roll back on any exception.

        >>> store = TripleStore()
        >>> try:
        ...     with store.transaction():
        ...         store.add("a", "p", "b")
        ...         raise RuntimeError("abort")
        ... except RuntimeError:
        ...     pass
        >>> len(store)
        0

        Nesting is rejected: a transaction is a top-level unit of work.
        """
        if self._txn_log is not None:
            raise StoreError("transactions do not nest")
        self._txn_log = []
        try:
            yield self
        except BaseException:
            log, self._txn_log = self._txn_log, None
            for action, triple, old_provenance in reversed(log):
                if action == "added":
                    self.remove(triple.subject, triple.predicate, triple.object)
                elif action == "removed":
                    self.add(
                        triple.subject,
                        triple.predicate,
                        triple.object,
                        provenance=old_provenance,
                    )
                elif action == "retag":
                    if old_provenance is None:
                        self._provenance.pop(triple, None)
                    else:
                        self._provenance[triple] = old_provenance
            raise
        else:
            self._txn_log = None

    def provenance(self, subject: Hashable, predicate: Hashable, object: Hashable) -> Optional[str]:
        """The provenance tag of a triple (None when untagged or absent)."""
        return self._provenance.get(Triple(subject, predicate, object))

    def copy(self) -> "TripleStore":
        out = TripleStore(use_indexes=self.use_indexes)
        for triple in self._all:
            out.add_triple(triple)
        out._provenance = dict(self._provenance)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TripleStore({len(self._all)} triples, indexes={'on' if self.use_indexes else 'off'})"
