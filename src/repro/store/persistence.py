"""JSON-lines persistence for triple stores.

One JSON array ``[s, p, o]`` per line; values restricted to JSON scalars
(str, int, float, bool, None).  Round-trip safe for everything the rest
of the library stores.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .triples import StoreError, TripleStore

_SCALARS = (str, int, float, bool, type(None))


def save_jsonl(store: TripleStore, path: Union[str, Path]) -> int:
    """Write ``store`` to ``path``; returns the number of triples written."""
    path = Path(path)
    count = 0
    lines = []
    for triple in sorted(store, key=repr):
        for value in triple:
            if not isinstance(value, _SCALARS):
                raise StoreError(
                    f"value {value!r} of type {type(value).__name__} is not JSON-scalar"
                )
        lines.append(json.dumps([triple.subject, triple.predicate, triple.object]))
        count += 1
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return count


def load_jsonl(path: Union[str, Path], *, use_indexes: bool = True) -> TripleStore:
    """Read a store previously written by :func:`save_jsonl`."""
    path = Path(path)
    store = TripleStore(use_indexes=use_indexes)
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
        if not isinstance(row, list) or len(row) != 3:
            raise StoreError(f"{path}:{lineno}: expected a 3-element array")
        store.add(*row)
    return store
