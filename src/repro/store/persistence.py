"""JSON-lines persistence for triple stores.

One JSON array ``[s, p, o]`` per line; values restricted to JSON scalars
(str, int, float, bool, None).  Round-trip safe for everything the rest
of the library stores.

Writes are *crash-safe*: :func:`save_jsonl` writes the full payload to a
temp file in the destination directory, verifies and fsyncs it, and
atomically :func:`os.replace`\\ s it into place — a crash mid-write can
never leave a truncated store where a good one used to be.  The
``torn-write`` fault kind of :mod:`repro.robust.faults` truncates the
temp payload mid-write to exercise the verify-and-rewrite recovery path
(counted in ``store.torn_writes_recovered``).

Reads are hardened: malformed lines raise a :class:`StoreError` naming
the file and line number, and ``strict=False`` degrades gracefully by
skipping them (counted in ``store.corrupt_lines_skipped``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from ..obs import recorder as _obs
from ..robust import faults as _faults
from .triples import StoreError, TripleStore

_SCALARS = (str, int, float, bool, type(None))


def save_jsonl(store: TripleStore, path: Union[str, Path]) -> int:
    """Write ``store`` to ``path`` atomically; returns the triple count.

    The destination either keeps its previous content or receives the
    complete new payload — never a truncated mixture.
    """
    path = Path(path)
    count = 0
    lines = []
    for triple in sorted(store, key=repr):
        for value in triple:
            if not isinstance(value, _SCALARS):
                raise StoreError(
                    f"value {value!r} of type {type(value).__name__} is not JSON-scalar"
                )
        lines.append(json.dumps([triple.subject, triple.predicate, triple.object]))
        count += 1
    payload = "\n".join(lines) + ("\n" if lines else "")
    _replace_atomic(path, payload)
    return count


def atomic_write_text(path: Union[str, Path], payload: str) -> None:
    """Crash-safely replace ``path``'s content with ``payload``.

    The same verified temp-file + fsync + ``os.replace`` discipline that
    :func:`save_jsonl` uses, exposed for other durable artifacts — the
    serving layer persists hot-swapped TBox text through it so a crash
    mid-swap can never leave a truncated TBox where a good one was.
    Consults the ``torn-write`` fault point exactly like triple saves.
    """
    _replace_atomic(Path(path), payload)


def _replace_atomic(path: Path, payload: str) -> None:
    """Write ``payload`` to a sibling temp file and swap it into place."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        _write_verified(tmp, payload)
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _write_verified(tmp: Path, payload: str) -> None:
    """Write ``payload``, reading it back to catch torn writes.

    The first attempt consults the ``torn-write`` fault point, which
    truncates the payload mid-write when it fires; the rewrite attempt
    bypasses injection so recovery converges deterministically.
    """
    if _faults.should_fire("torn-write"):
        tmp.write_text(payload[: len(payload) // 2], encoding="utf-8")
    else:
        tmp.write_text(payload, encoding="utf-8")
    if tmp.read_text(encoding="utf-8") != payload:
        _obs.incr("store.torn_writes_recovered")
        tmp.write_text(payload, encoding="utf-8")
        if tmp.read_text(encoding="utf-8") != payload:  # pragma: no cover
            raise StoreError(f"{tmp}: torn write could not be recovered")


def append_verified_bytes(path: Union[str, Path], data: bytes) -> bool:
    """Durably append ``data`` to ``path``; returns True if a torn first
    attempt had to be recovered.

    The append analogue of :func:`atomic_write_text` for logs that grow
    one record at a time (the serving layer's edit log): write, flush,
    fsync, then read the tail back and compare.  The first attempt
    consults the ``torn-write`` fault point of :mod:`repro.robust.faults`
    — a firing truncates the appended payload mid-write — and the
    rewrite truncates back to the pre-append offset and retries with
    injection bypassed, so a caller that returns from this function has
    its record durably and completely on disk.  Recovered attempts are
    counted in ``store.torn_appends_recovered``.
    """
    path = Path(path)
    with path.open("ab") as handle:
        offset = handle.tell()
        if _faults.should_fire("torn-write"):
            handle.write(data[: len(data) // 2])
        else:
            handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    recovered = False
    if _read_tail(path, offset) != data:
        _obs.incr("store.torn_appends_recovered")
        recovered = True
        with path.open("r+b") as handle:
            handle.truncate(offset)
            handle.seek(offset)
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if _read_tail(path, offset) != data:  # pragma: no cover
            raise StoreError(f"{path}: torn append could not be recovered")
    return recovered


def _read_tail(path: Path, offset: int) -> bytes:
    with path.open("rb") as handle:
        handle.seek(offset)
        return handle.read()


def load_jsonl(
    path: Union[str, Path], *, use_indexes: bool = True, strict: bool = True
) -> TripleStore:
    """Read a store previously written by :func:`save_jsonl`.

    Every malformed line — invalid JSON, not a 3-element array, or a
    non-scalar value — raises a :class:`StoreError` carrying the path and
    line number.  With ``strict=False`` such lines are skipped instead
    and counted in ``store.corrupt_lines_skipped``, so a partially
    corrupted store still yields every intact triple.
    """
    path = Path(path)
    store = TripleStore(use_indexes=use_indexes)
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            row = _parse_line(path, lineno, line)
        except StoreError:
            if strict:
                raise
            _obs.incr("store.corrupt_lines_skipped")
            continue
        store.add(*row)
    return store


def _parse_line(path: Path, lineno: int, line: str) -> list:
    try:
        row = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StoreError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
    if not isinstance(row, list) or len(row) != 3:
        raise StoreError(f"{path}:{lineno}: expected a 3-element array")
    for value in row:
        if not isinstance(value, _SCALARS):
            raise StoreError(
                f"{path}:{lineno}: value {value!r} is not JSON-scalar"
            )
    return row
